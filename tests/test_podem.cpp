// PODEM golden tests on C17 (every collapsed fault testable, sensitization
// conditions of a hand-analyzed fault, redundancy recognition, abort
// reporting) plus the property test: every cube PODEM emits is confirmed by
// the PPSFP fault simulator to detect its target fault — under both all-0
// and all-1 completion of the don't-care bits.

#include <string>
#include <vector>

#include "circuits/c17.hpp"
#include "circuits/iscas85_family.hpp"
#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "fault/podem.hpp"
#include "sim/kernel.hpp"
#include "test_util.hpp"
#include "tpg/lfsr.hpp"

using namespace bist;

namespace {

BitVec fill(const std::vector<Ternary>& cube, bool x_value) {
  BitVec p(cube.size());
  for (std::size_t i = 0; i < cube.size(); ++i)
    p.set(i, cube[i] == Ternary::VX ? x_value : cube[i] == Ternary::V1);
  return p;
}

// True iff `pattern` detects f, via the PPSFP propagate (single lane).
bool fault_sim_confirms(FaultSimulator& fsim, const SimKernel& k,
                        const Fault& f, const BitVec& pattern) {
  KernelSim sim(k);
  const PatternBlock blk = pack_patterns({&pattern, 1}, pattern.size());
  sim.simulate(blk);
  return (fsim.detect_lanes(f, sim.values(), blk.lane_mask()) & 1) != 0;
}

}  // namespace

int main() {
  // --- C17: every collapsed fault has a test, every cube is confirmed ----
  {
    const Netlist c17 = make_c17();
    const SimKernel k(c17);
    FaultSimulator fsim(k);
    Podem podem(k);
    for (const Fault& f : fsim.faults()) {
      const PodemResult r = podem.generate(f);
      CHECK_EQ(int(r.status), int(PodemStatus::Detected));
      if (r.status != PodemStatus::Detected) continue;
      CHECK_EQ(r.cube.size(), c17.input_count());
      CHECK(fault_sim_confirms(fsim, k, f, fill(r.cube, false)));
      CHECK(fault_sim_confirms(fsim, k, f, fill(r.cube, true)));
    }

    // Hand-analyzed fault: input "1" s-a-0.  Activation needs 1=1; the only
    // propagation path is 1 -> 10 -> 22, which requires 3=1 (sensitize gate
    // 10) and 16=1 at gate 22.  Every test cube must satisfy all three.
    const Fault f1sa0{c17.find("1"), -1, 0};
    const PodemResult r = podem.generate(f1sa0);
    CHECK_EQ(int(r.status), int(PodemStatus::Detected));
    const std::uint32_t pi1 = c17.input_index(c17.find("1"));
    const std::uint32_t pi3 = c17.input_index(c17.find("3"));
    CHECK_EQ(int(r.cube[pi1]), int(Ternary::V1));
    CHECK_EQ(int(r.cube[pi3]), int(Ternary::V1));
    // The cube leaves at least one of the five inputs unconstrained: PODEM
    // assigns only what the objective chain needed.
    std::size_t x_bits = 0;
    for (Ternary t : r.cube) x_bits += t == Ternary::VX;
    CHECK(x_bits >= 1);
  }

  // --- redundancy recognition -------------------------------------------
  // o = OR(a, NOT a) is constant 1: faults that only change o towards 1 are
  // untestable, while NOT-output s-a-0 makes o follow a and is testable.
  {
    Netlist n("const1");
    const GateId a = n.add_input("a");
    const GateId nb = n.add_gate(GateType::Not, {a}, "nb");
    const GateId o = n.add_gate(GateType::Or, {a, nb}, "o");
    n.add_output(o);
    n.freeze();
    const SimKernel k(n);
    Podem podem(k);

    CHECK_EQ(int(podem.generate({o, -1, 1}).status), int(PodemStatus::Redundant));
    CHECK_EQ(int(podem.generate({a, -1, 0}).status), int(PodemStatus::Redundant));
    CHECK_EQ(int(podem.generate({o, 0, 1}).status), int(PodemStatus::Redundant));

    const PodemResult det = podem.generate({nb, -1, 0});
    CHECK_EQ(int(det.status), int(PodemStatus::Detected));
    CHECK_EQ(int(det.cube[0]), int(Ternary::V0));  // needs a = 0

    // Proving redundancy takes at least one backtrack, so a zero backtrack
    // budget must abort instead of claiming redundancy.
    PodemOptions strict;
    strict.backtrack_limit = 0;
    const PodemResult ab = podem.generate({o, -1, 1}, strict);
    CHECK_EQ(int(ab.status), int(PodemStatus::Aborted));
    CHECK(ab.backtracks >= 1);
  }

  // --- property test across ISCAS85 surrogates ---------------------------
  // Take the LFSR-resistant tail of a short pseudo-random phase and PODEM a
  // sample of it; every emitted cube must be fault-sim confirmed under both
  // X completions.
  for (const std::string& name : {std::string("c432s"), std::string("c499s"),
                                  std::string("c880s"), std::string("c1908s")}) {
    const Netlist n = make_iscas85(name);
    const SimKernel k(n);
    FaultSimulator fsim(k);
    Lfsr lfsr = Lfsr::maximal(32, 0xACE1);
    const FaultSimResult lr = fsim.run(lfsr.blocks(n.input_count(), 256));

    Podem podem(k);
    PodemOptions opt;
    opt.backtrack_limit = 100;  // keeps redundancy proofs cheap in this test
    std::size_t tried = 0, detected = 0;
    for (std::size_t i = 0;
         i < lr.first_detected.size() && detected < 10; ++i) {
      if (lr.first_detected[i] >= 0) continue;
      ++tried;
      const Fault& f = fsim.faults()[i];
      const PodemResult r = podem.generate(f, opt);
      if (r.status != PodemStatus::Detected) continue;
      ++detected;
      CHECK(fault_sim_confirms(fsim, k, f, fill(r.cube, false)));
      CHECK(fault_sim_confirms(fsim, k, f, fill(r.cube, true)));
    }
    CHECK(tried > 0);      // the short LFSR phase leaves a tail
    CHECK(detected > 0);   // and PODEM cracks LFSR-resistant faults
  }

  return bist_test::summary();
}
