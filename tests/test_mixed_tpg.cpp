// Mixed-scheme pipeline: on every ISCAS85 surrogate the LFSR phase plus the
// PODEM top-off must cover 100% of the detectable (non-redundant,
// non-aborted) collapsed faults, every emitted pattern is fault-sim-verified
// against its target, and compaction never grows the set or loses coverage.

#include <string>

#include "circuits/iscas85_family.hpp"
#include "sim/kernel.hpp"
#include "test_util.hpp"
#include "tpg/mixed.hpp"

using namespace bist;

int main() {
  // --- C17: tiny LFSR budget forces a top-off phase; everything testable --
  {
    const Netlist n = make_iscas85("c17");
    const SimKernel k(n);
    MixedTpgOptions opt;
    opt.lfsr_patterns = 64;
    const MixedSchemeResult r = run_mixed_tpg(k, opt);
    CHECK_EQ(r.lfsr_patterns, 64u);
    CHECK_EQ(r.redundant, 0u);  // C17 has no redundant faults
    CHECK_EQ(r.aborted, 0u);
    CHECK(r.all_verified);
    CHECK_EQ(r.final_coverage, 1.0);
    CHECK_EQ(r.final_coverage_weighted, 1.0);
    CHECK(r.topoff_patterns <= r.topoff_before_compaction);
  }

  // --- full surrogate family ---------------------------------------------
  for (const std::string& name : iscas85_names()) {
    const Netlist n = make_iscas85(name);
    const SimKernel k(n);
    MixedTpgOptions opt;
    opt.lfsr_patterns = 512;  // short phase: leaves a real LFSR-resistant tail
    opt.podem.backtrack_limit = 50;  // detection saturates well below this
    const MixedSchemeResult r = run_mixed_tpg(k, opt);

    // All emitted patterns were confirmed by the fault simulator against
    // their target faults, and every tail fault got exactly one verdict.
    CHECK(r.all_verified);
    CHECK_EQ(r.tail_faults, r.podem_detected + r.redundant + r.aborted);

    // 100% of detectable (non-redundant, non-aborted) collapsed faults: the
    // floor below is only reached if the emitted top-off set, re-simulated
    // from scratch, actually detects every PODEM-detected tail fault —
    // random fill may catch extra faults, never fewer.
    const FaultSimResult& lr = r.lfsr_result;
    const double floor_cov =
        double(lr.sim_faults - r.redundant - r.aborted) / double(lr.sim_faults);
    CHECK(r.final_coverage >= floor_cov);
    CHECK(r.final_coverage <= 1.0);
    CHECK(r.final_coverage_weighted <= 1.0);
    CHECK(r.final_coverage >= r.lfsr_coverage);
    CHECK(r.final_coverage_weighted >= r.lfsr_coverage_weighted);

    // The surrogates embed random-pattern-resistant detectors, so a 512
    // pattern LFSR phase must leave a tail and the top-off must be busy.
    if (name != "c17") {
      CHECK(r.tail_faults > 0u);
      CHECK(r.topoff_patterns > 0u);
    }
    CHECK(r.topoff_patterns <= r.topoff_before_compaction);
    CHECK_EQ(r.topoff.size(), r.topoff_patterns);

    // Weighted accounting stays glued to the enumerated-fault convention.
    CHECK_EQ(lr.total_weight, lr.total_faults);
  }

  return bist_test::summary();
}
