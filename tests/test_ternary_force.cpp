// TernarySim force semantics: input assignments survive force/unforce cycles
// (the PODEM backtracking contract), gate-level forces override fanins, and
// pin-level forces hit exactly one fanin connection without disturbing the
// driver net or its other branches.

#include "circuits/c17.hpp"
#include "sim/kernel.hpp"
#include "sim/ternary_sim.hpp"
#include "test_util.hpp"

using namespace bist;

int main() {
  const Netlist c17 = make_c17();
  const SimKernel k(c17);
  const GateId i3 = c17.find("3");
  const GateId g10 = c17.find("10");
  const GateId g11 = c17.find("11");
  const GateId g16 = c17.find("16");
  const GateId g19 = c17.find("19");
  const GateId g22 = c17.find("22");
  const GateId g23 = c17.find("23");
  const std::uint32_t idx3 = c17.input_index(i3);

  TernarySim sim(k);

  // All-ones pattern: hand-computed reference values.
  for (std::size_t i = 0; i < c17.input_count(); ++i)
    sim.set_input(i, Ternary::V1);
  CHECK_EQ(int(sim.value(g10)), int(Ternary::V0));
  CHECK_EQ(int(sim.value(g11)), int(Ternary::V0));
  CHECK_EQ(int(sim.value(g16)), int(Ternary::V1));
  CHECK_EQ(int(sim.value(g19)), int(Ternary::V1));
  CHECK_EQ(int(sim.value(g22)), int(Ternary::V1));
  CHECK_EQ(int(sim.value(g23)), int(Ternary::V0));

  // --- regression: force -> set_input -> unforce restores the assignment ---
  sim.force(i3, Ternary::V0);
  CHECK_EQ(int(sim.value(i3)), int(Ternary::V0));
  CHECK_EQ(int(sim.value(g10)), int(Ternary::V1));  // NAND(1, 0)
  sim.set_input(idx3, Ternary::V1);                 // assign under the force
  CHECK_EQ(int(sim.value(i3)), int(Ternary::V0));   // force still wins
  sim.unforce(i3);
  CHECK_EQ(int(sim.value(i3)), int(Ternary::V1));   // assignment restored
  CHECK_EQ(int(sim.value(g10)), int(Ternary::V0));
  CHECK_EQ(int(sim.value(g22)), int(Ternary::V1));

  // Assignment made before the force also survives a force/unforce cycle.
  sim.set_input(idx3, Ternary::V0);
  CHECK_EQ(int(sim.value(g11)), int(Ternary::V1));  // NAND(0, 1)
  sim.force(i3, Ternary::V1);
  CHECK_EQ(int(sim.value(g11)), int(Ternary::V0));
  sim.unforce(i3);
  CHECK_EQ(int(sim.value(i3)), int(Ternary::V0));
  CHECK_EQ(int(sim.value(g11)), int(Ternary::V1));
  sim.set_input(idx3, Ternary::V1);  // back to all-ones

  // VX unassigns and X propagates back through the cone.
  sim.set_input(idx3, Ternary::VX);
  CHECK_EQ(int(sim.value(i3)), int(Ternary::VX));
  CHECK_EQ(int(sim.value(g10)), int(Ternary::VX));
  sim.set_input(idx3, Ternary::V1);

  // --- stem force on an internal gate --------------------------------------
  sim.force(g11, Ternary::V1);
  CHECK_EQ(int(sim.value(g16)), int(Ternary::V0));  // NAND(1, forced 1)
  CHECK_EQ(int(sim.value(g19)), int(Ternary::V0));  // both branches see it
  sim.unforce(g11);
  CHECK_EQ(int(sim.value(g11)), int(Ternary::V0));
  CHECK_EQ(int(sim.value(g16)), int(Ternary::V1));
  CHECK_EQ(int(sim.value(g19)), int(Ternary::V1));

  // --- pin force: only the forced branch sees the stuck value --------------
  // g16 = NAND(2, 11); force its pin 1 (the g11 branch) to 1.
  sim.force_pin(g16, 1, Ternary::V1);
  CHECK_EQ(int(sim.value(g16)), int(Ternary::V0));  // NAND(1, 1)
  CHECK_EQ(int(sim.value(g11)), int(Ternary::V0));  // driver net untouched
  CHECK_EQ(int(sim.value(g19)), int(Ternary::V1));  // other branch untouched
  CHECK_EQ(int(sim.value(g22)), int(Ternary::V1));  // NAND(0, 0)
  CHECK_EQ(int(sim.value(g23)), int(Ternary::V1));  // NAND(0, 1)
  sim.unforce_pin(g16, 1);
  CHECK_EQ(int(sim.value(g16)), int(Ternary::V1));
  CHECK_EQ(int(sim.value(g23)), int(Ternary::V0));

  // Pin force out of range throws.
  CHECK_THROWS(sim.force_pin(g16, 5, Ternary::V0));

  // reset clears values, forces and assignments.
  sim.force(g11, Ternary::V1);
  sim.force_pin(g16, 0, Ternary::V0);
  sim.reset();
  CHECK_EQ(int(sim.value(i3)), int(Ternary::VX));
  CHECK_EQ(int(sim.value(g11)), int(Ternary::VX));
  CHECK_EQ(int(sim.value(g16)), int(Ternary::VX));
  CHECK_EQ(int(sim.value(g22)), int(Ternary::VX));

  return bist_test::summary();
}
