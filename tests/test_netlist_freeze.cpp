#include <algorithm>
#include <stdexcept>

#include "circuits/c17.hpp"
#include "netlist/netlist.hpp"
#include "test_util.hpp"

using namespace bist;

namespace {

// Fanout CSR, levels, input_index, is_output must agree with the gate array.
void check_freeze_invariants(const Netlist& n) {
  CHECK(n.frozen());
  std::size_t fanout_edges = 0;
  for (GateId g = 0; g < n.gate_count(); ++g) {
    const Gate& gg = n.gate(g);
    // levels: inputs at 0, otherwise 1 + max fanin level
    unsigned expect = 0;
    for (GateId f : gg.fanins) expect = std::max(expect, n.level(f) + 1);
    CHECK_EQ(n.level(g), expect);
    CHECK(n.level(g) <= n.max_level());
    // every fanin edge appears exactly once in the driver's fanout list
    for (GateId f : gg.fanins) {
      const auto fo = n.fanouts(f);
      CHECK_EQ(std::count(fo.begin(), fo.end(), g), 1);
    }
    fanout_edges += gg.fanins.size();
    // input_index round trip
    if (gg.type == GateType::Input) {
      CHECK(n.input_index(g) != ~0u);
      CHECK_EQ(n.inputs()[n.input_index(g)], g);
    } else {
      CHECK_EQ(n.input_index(g), ~0u);
    }
    // name lookup round trip
    CHECK_EQ(n.find(gg.name), g);
  }
  std::size_t fanout_total = 0;
  for (GateId g = 0; g < n.gate_count(); ++g) fanout_total += n.fanouts(g).size();
  CHECK_EQ(fanout_total, fanout_edges);
  for (GateId o : n.outputs()) CHECK(n.is_output(o));
  std::size_t marked = 0;
  for (GateId g = 0; g < n.gate_count(); ++g)
    if (n.is_output(g)) ++marked;
  CHECK(marked <= n.output_count());  // duplicates in outputs() collapse
}

}  // namespace

int main() {
  check_freeze_invariants(make_c17());

  // hand-built netlist with a stem and reconvergence
  Netlist n("tiny");
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId g1 = n.add_gate(GateType::Nand, {a, b}, "g1");
  const GateId g2 = n.add_gate(GateType::Not, {g1}, "g2");
  const GateId g3 = n.add_gate(GateType::Or, {g1, g2}, "g3");
  n.add_output(g3);
  n.freeze();
  check_freeze_invariants(n);
  CHECK_EQ(n.level(a), 0u);
  CHECK_EQ(n.level(g1), 1u);
  CHECK_EQ(n.level(g2), 2u);
  CHECK_EQ(n.level(g3), 3u);
  CHECK_EQ(n.max_level(), 3u);
  CHECK_EQ(n.fanouts(g1).size(), 2u);
  CHECK_EQ(n.logic_gate_count(), 3u);

  // builder rejects malformed netlists
  {
    Netlist bad("dup");
    bad.add_input("x");
    CHECK_THROWS(bad.add_input("x"));  // duplicate name
  }
  {
    Netlist bad("arity");
    const GateId x = bad.add_input("x");
    CHECK_THROWS(bad.add_gate(GateType::And, {x}, "g"));  // too few fanins
  }
  {
    Netlist bad("noout");
    const GateId x = bad.add_input("x");
    bad.add_gate(GateType::Not, {x}, "g");
    CHECK_THROWS(bad.freeze());  // no outputs
  }
  {
    Netlist bad("noin");
    const GateId c = bad.add_gate(GateType::Const1, {}, "c");
    bad.add_output(c);
    CHECK_THROWS(bad.freeze());  // no inputs
  }
  {
    Netlist bad("badid");
    bad.add_input("x");
    CHECK_THROWS(bad.add_output(42));  // unknown gate id
  }

  return bist_test::summary();
}
