// Fault model + PPSFP simulator checks: collapsing fires and is exact on
// C17, coverage curves are monotone on every ISCAS surrogate, exhaustive
// patterns detect every C17 fault, and dropping does not change detection.

#include <string>
#include <vector>

#include "circuits/c17.hpp"
#include "circuits/iscas85_family.hpp"
#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "sim/kernel.hpp"
#include "test_util.hpp"
#include "tpg/lfsr.hpp"

using namespace bist;

int main() {
  // --- C17: exact fault accounting --------------------------------------
  {
    const Netlist c17 = make_c17();
    const auto all = enumerate_faults(c17);
    // 11 output nets * 2 + 6 fanout branches * 2 (stems G3, G11, G16 each
    // feed two gates)
    CHECK_EQ(all.size(), 34u);
    const auto collapsed = collapse_faults(c17, all);
    // 22 equivalence classes (the textbook C17 number), minus the two
    // dominance-dropped internal NAND output s-a-0 faults (G11, G16; G22 and
    // G23 are POs and stay).
    CHECK_EQ(collapsed.size(), 20u);
    CHECK(collapsed.size() < all.size());
    for (const Fault& f : collapsed) CHECK(!fault_name(c17, f).empty());

    // exhaustive 32 patterns detect every collapsed fault
    const SimKernel k(c17);
    std::vector<BitVec> pats;
    for (unsigned v = 0; v < 32; ++v) {
      BitVec p(5);
      for (unsigned i = 0; i < 5; ++i) p.set(i, (v >> i) & 1);
      pats.push_back(p);
    }
    const auto blocks = pack_all(pats, 5);
    FaultSimulator fsim(k);
    const FaultSimResult r = fsim.run(blocks);
    CHECK_EQ(r.total_faults, 34u);
    CHECK_EQ(r.sim_faults, 20u);
    CHECK_EQ(r.detected, 20u);
    CHECK_EQ(r.patterns, 32u);
    CHECK_EQ(r.final_coverage(), 1.0);
    CHECK_EQ(r.coverage.size(), 32u);
    for (std::int64_t fd : r.first_detected) CHECK(fd >= 0 && fd < 32);

    // Class sizes cover the whole enumerated list (dominance-dropped classes
    // are attributed to a dominating class), so the weighted curve reaches
    // 100% on a fully-detected run.
    const auto sized = collapse_faults_sized(c17, all);
    CHECK(sized.faults == collapsed);
    CHECK_EQ(sized.class_size.size(), sized.faults.size());
    std::size_t size_sum = 0;
    for (std::uint32_t s : sized.class_size) {
      CHECK(s >= 1u);
      size_sum += s;
    }
    CHECK_EQ(size_sum, all.size());
    CHECK_EQ(r.total_weight, 34u);
    CHECK_EQ(r.detected_weight, 34u);
    CHECK_EQ(r.coverage_weighted.size(), 32u);
    CHECK_EQ(r.final_coverage_weighted(), 1.0);

    // no-dropping run detects the same faults at the same first patterns —
    // and skips re-propagating already-detected faults, so it does exactly
    // the same faulty-machine work as the dropping run.
    FaultSimOptions keep;
    keep.drop_detected = false;
    const FaultSimResult r2 = fsim.run(blocks, keep);
    CHECK_EQ(r2.detected, r.detected);
    CHECK(r2.first_detected == r.first_detected);
    CHECK_EQ(r2.faulty_gate_evals, r.faulty_gate_evals);
    CHECK_EQ(r2.detected_weight, r.detected_weight);
  }

  // --- prefix-view edge cases: length 0 and beyond the run ---------------
  {
    const Netlist n = make_iscas85("c432s");
    const SimKernel k(n);
    FaultSimulator fsim(k);
    Lfsr lfsr = Lfsr::maximal(32, 0xACE1);
    const auto blocks = lfsr.blocks(n.input_count(), 256);
    const FaultSimResult full = fsim.run(blocks);

    // length 0: nothing detected, every simulated fault in the tail.
    CHECK_EQ(full.detected_at(0), 0u);
    CHECK_EQ(full.tail_at(0).size(), full.sim_faults);
    const FaultSimResult p0 = fsim.prefix_result(full, 0);
    CHECK_EQ(p0.patterns, 0u);
    CHECK_EQ(p0.detected, 0u);
    CHECK_EQ(p0.detected_weight, 0u);
    CHECK(p0.coverage.empty());
    CHECK(p0.coverage_weighted.empty());
    for (std::int64_t fd : p0.first_detected) CHECK_EQ(fd, -1);

    // lengths beyond the run clamp to the full result instead of throwing.
    for (const std::size_t beyond : {257u, 100000u}) {
      CHECK_EQ(full.detected_at(beyond), full.detected);
      CHECK(full.tail_at(beyond) == full.tail_at(full.patterns));
      const FaultSimResult pb = fsim.prefix_result(full, beyond);
      CHECK_EQ(pb.patterns, full.patterns);
      CHECK_EQ(pb.detected, full.detected);
      CHECK_EQ(pb.detected_weight, full.detected_weight);
      CHECK(pb.first_detected == full.first_detected);
      CHECK(pb.coverage == full.coverage);
      CHECK(pb.coverage_weighted == full.coverage_weighted);
    }

    // Mismatched fault list still throws: the clamp is about lengths only.
    FaultSimulator other(k, {fsim.faults().begin(), fsim.faults().end() - 1},
                         full.total_faults);
    CHECK_THROWS(other.prefix_result(full, 10));
  }

  // --- dominance weight attribution goes to the dominating class ---------
  // g = AND(a, b), o = XOR(g, c).  g out s-a-1 is dominance-dropped; its
  // weight belongs with the dominating input s-a-1 class (here a s-a-1 via
  // the fanout-free connection), NOT the equivalent-of-s-a-0 class: a test
  // for {a0, b0, g0} does not detect g s-a-1.
  {
    Netlist n("attr");
    const GateId a = n.add_input("a");
    const GateId b = n.add_input("b");
    const GateId c = n.add_input("c");
    const GateId g = n.add_gate(GateType::And, {a, b}, "g");
    const GateId o = n.add_gate(GateType::Xor, {g, c}, "o");
    n.add_output(o);
    n.freeze();
    const auto all = enumerate_faults(n);
    CHECK_EQ(all.size(), 10u);  // 5 nets x 2, no fanout branches
    const auto sized = collapse_faults_sized(n, all);
    CHECK_EQ(sized.faults.size(), 7u);
    std::size_t sum = 0;
    for (std::size_t i = 0; i < sized.faults.size(); ++i) {
      sum += sized.class_size[i];
      if (sized.faults[i] == Fault{a, -1, 0})
        CHECK_EQ(sized.class_size[i], 3u);  // {a0, b0, g0}; g1 NOT counted here
      if (sized.faults[i] == Fault{a, -1, 1})
        CHECK_EQ(sized.class_size[i], 2u);  // {a1} + dominated g1
    }
    CHECK_EQ(sum, 10u);

    // Pattern (1,1,0) detects {a0,b0,g0}, c1 and o0: 5 of the 10 enumerated
    // faults (it does NOT detect g s-a-1).
    const SimKernel k(n);
    FaultSimulator fsim(k);
    BitVec p(3);
    p.set(0, true);
    p.set(1, true);
    const auto blocks = pack_all({&p, 1}, 3);
    const FaultSimResult r = fsim.run(blocks);
    CHECK_EQ(r.detected_weight, 5u);
    CHECK_EQ(r.total_weight, 10u);
    CHECK_EQ(r.final_coverage_weighted(), 0.5);
  }

  // --- whole surrogate family: monotone coverage, collapsing fires ------
  for (const std::string& name : iscas85_names()) {
    const Netlist n = make_iscas85(name);
    const SimKernel k(n);
    FaultSimulator fsim(k);

    Lfsr lfsr = Lfsr::maximal(32, 0xACE1);
    const auto blocks = lfsr.blocks(n.input_count(), 512);
    const FaultSimResult r = fsim.run(blocks);

    CHECK(r.sim_faults < r.total_faults);  // collapsing actually fired
    CHECK(r.sim_faults > 0u);
    CHECK_EQ(r.patterns, 512u);
    CHECK_EQ(r.coverage.size(), 512u);
    bool monotone = true;
    for (std::size_t p = 1; p < r.coverage.size(); ++p)
      if (r.coverage[p] < r.coverage[p - 1]) monotone = false;
    CHECK(monotone);
    // weighted curve: same shape constraints, total-fault denominator
    CHECK_EQ(r.total_weight, r.total_faults);
    CHECK_EQ(r.coverage_weighted.size(), r.coverage.size());
    bool monotone_w = true;
    for (std::size_t p = 1; p < r.coverage_weighted.size(); ++p)
      if (r.coverage_weighted[p] < r.coverage_weighted[p - 1]) monotone_w = false;
    CHECK(monotone_w);
    CHECK(r.final_coverage_weighted() <= 1.0);
    CHECK(r.coverage.front() >= 0.0);
    CHECK(r.final_coverage() <= 1.0);
    // detected count consistent with the curve and first_detected
    std::size_t firsts = 0;
    for (std::int64_t fd : r.first_detected)
      if (fd >= 0) {
        ++firsts;
        CHECK(fd < std::int64_t(r.patterns));
      }
    CHECK_EQ(firsts, r.detected);
    const double expect_final =
        r.sim_faults ? double(r.detected) / double(r.sim_faults) : 0.0;
    CHECK_EQ(r.final_coverage(), expect_final);
    // random patterns find a healthy fraction of faults on every surrogate
    CHECK(r.final_coverage() > 0.5);
  }

  return bist_test::summary();
}
