// Fault model + PPSFP simulator checks: collapsing fires and is exact on
// C17, coverage curves are monotone on every ISCAS surrogate, exhaustive
// patterns detect every C17 fault, and dropping does not change detection.

#include <string>
#include <vector>

#include "circuits/c17.hpp"
#include "circuits/iscas85_family.hpp"
#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "sim/kernel.hpp"
#include "test_util.hpp"
#include "tpg/lfsr.hpp"

using namespace bist;

int main() {
  // --- C17: exact fault accounting --------------------------------------
  {
    const Netlist c17 = make_c17();
    const auto all = enumerate_faults(c17);
    // 11 output nets * 2 + 6 fanout branches * 2 (stems G3, G11, G16 each
    // feed two gates)
    CHECK_EQ(all.size(), 34u);
    const auto collapsed = collapse_faults(c17, all);
    // 22 equivalence classes (the textbook C17 number), minus the two
    // dominance-dropped internal NAND output s-a-0 faults (G11, G16; G22 and
    // G23 are POs and stay).
    CHECK_EQ(collapsed.size(), 20u);
    CHECK(collapsed.size() < all.size());
    for (const Fault& f : collapsed) CHECK(!fault_name(c17, f).empty());

    // exhaustive 32 patterns detect every collapsed fault
    const SimKernel k(c17);
    std::vector<BitVec> pats;
    for (unsigned v = 0; v < 32; ++v) {
      BitVec p(5);
      for (unsigned i = 0; i < 5; ++i) p.set(i, (v >> i) & 1);
      pats.push_back(p);
    }
    const auto blocks = pack_all(pats, 5);
    FaultSimulator fsim(k);
    const FaultSimResult r = fsim.run(blocks);
    CHECK_EQ(r.total_faults, 34u);
    CHECK_EQ(r.sim_faults, 20u);
    CHECK_EQ(r.detected, 20u);
    CHECK_EQ(r.patterns, 32u);
    CHECK_EQ(r.final_coverage(), 1.0);
    CHECK_EQ(r.coverage.size(), 32u);
    for (std::int64_t fd : r.first_detected) CHECK(fd >= 0 && fd < 32);

    // no-dropping run detects the same faults at the same first patterns
    FaultSimOptions keep;
    keep.drop_detected = false;
    const FaultSimResult r2 = fsim.run(blocks, keep);
    CHECK_EQ(r2.detected, r.detected);
    CHECK(r2.first_detected == r.first_detected);
  }

  // --- whole surrogate family: monotone coverage, collapsing fires ------
  for (const std::string& name : iscas85_names()) {
    const Netlist n = make_iscas85(name);
    const SimKernel k(n);
    FaultSimulator fsim(k);

    Lfsr lfsr = Lfsr::maximal(32, 0xACE1);
    const auto blocks = lfsr.blocks(n.input_count(), 512);
    const FaultSimResult r = fsim.run(blocks);

    CHECK(r.sim_faults < r.total_faults);  // collapsing actually fired
    CHECK(r.sim_faults > 0u);
    CHECK_EQ(r.patterns, 512u);
    CHECK_EQ(r.coverage.size(), 512u);
    bool monotone = true;
    for (std::size_t p = 1; p < r.coverage.size(); ++p)
      if (r.coverage[p] < r.coverage[p - 1]) monotone = false;
    CHECK(monotone);
    CHECK(r.coverage.front() >= 0.0);
    CHECK(r.final_coverage() <= 1.0);
    // detected count consistent with the curve and first_detected
    std::size_t firsts = 0;
    for (std::int64_t fd : r.first_detected)
      if (fd >= 0) {
        ++firsts;
        CHECK(fd < std::int64_t(r.patterns));
      }
    CHECK_EQ(firsts, r.detected);
    const double expect_final =
        r.sim_faults ? double(r.detected) / double(r.sim_faults) : 0.0;
    CHECK_EQ(r.final_coverage(), expect_final);
    // random patterns find a healthy fraction of faults on every surrogate
    CHECK(r.final_coverage() > 0.5);
  }

  return bist_test::summary();
}
