// GF(2) linear-algebra substrate of the reseeding compression layer:
// Gf2Solver verdicts (solvable / inconsistent / underdetermined systems),
// Gf2Matrix exponentiation against step-by-step reference products, and the
// load-bearing structural fact — lfsr_transition() powers reproduce the Lfsr
// class's stream bit for bit, so a seed's expansion really is the linear
// function of the seed the compressor solves against.

#include <cstdint>
#include <vector>

#include "test_util.hpp"
#include "tpg/lfsr.hpp"
#include "util/bitvec.hpp"
#include "util/gf2.hpp"
#include "util/rng.hpp"

using namespace bist;

namespace {

// --- Gf2Solver ------------------------------------------------------------

void test_solver_solvable() {
  // x0 ^ x1 = 1, x1 ^ x2 = 0, x0 = 1  ->  x = (1, 0, 0).
  Gf2Solver s(3);
  CHECK(s.add(0b011, true) == Gf2Add::Inserted);
  CHECK(s.add(0b110, false) == Gf2Add::Inserted);
  CHECK(s.add(0b001, true) == Gf2Add::Inserted);
  CHECK_EQ(s.rank(), 3u);
  const std::uint64_t x = s.solve();
  CHECK_EQ(x, std::uint64_t{0b001});
  // Every equation holds under the solution, whatever the free values.
  for (const std::uint64_t fv : {0ull, ~0ull, 0x5555ull}) {
    const std::uint64_t y = s.solve(fv);
    CHECK_EQ(y, std::uint64_t{0b001});  // full rank: free values are inert
  }
}

void test_solver_inconsistent() {
  // x0 ^ x1 = 1 and x0 ^ x1 = 0 cannot both hold.
  Gf2Solver s(2);
  CHECK(s.add(0b11, true) == Gf2Add::Inserted);
  CHECK(s.conflicts(0b11, false));
  CHECK(!s.conflicts(0b11, true));
  CHECK(s.add(0b11, false) == Gf2Add::Inconsistent);
  // The failed add left the system untouched.
  CHECK_EQ(s.rank(), 1u);
  CHECK(s.add(0b11, true) == Gf2Add::Redundant);
}

void test_solver_underdetermined() {
  // One equation over four variables: x0 ^ x3 = 1.  Three free variables;
  // the particular solution must satisfy the equation for every choice of
  // free values, and must take the free bits from the caller.
  Gf2Solver s(4);
  CHECK(s.add(0b1001, true) == Gf2Add::Inserted);
  CHECK_EQ(s.rank(), 1u);
  Rng rng(7);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t fv = rng.next_u64() & 0xF;
    const std::uint64_t x = s.solve(fv);
    CHECK_EQ((x ^ (x >> 3)) & 1, std::uint64_t{1});
  }
}

void test_solver_random_roundtrip() {
  // Plant a solution, feed random consistent equations, solve, and check
  // every planted equation under the recovered assignment.
  Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 32; ++trial) {
    const unsigned n = 4 + rng.next_below(28);  // 4..31 variables
    const std::uint64_t mask = (std::uint64_t{1} << n) - 1;
    const std::uint64_t planted = rng.next_u64() & mask;
    Gf2Solver s(n);
    std::vector<std::uint64_t> eqs;
    for (unsigned i = 0; i < 2 * n; ++i) {
      const std::uint64_t c = rng.next_u64() & mask;
      if (!c) continue;
      const bool rhs = __builtin_parityll(c & planted);
      CHECK(s.add(c, rhs) != Gf2Add::Inconsistent);
      eqs.push_back(c);
    }
    const std::uint64_t x = s.solve(rng.next_u64());
    for (const std::uint64_t c : eqs)
      CHECK_EQ(__builtin_parityll(c & x), __builtin_parityll(c & planted));
  }
}

// --- Gf2Matrix ------------------------------------------------------------

void test_matrix_pow_regression() {
  // M^e by square-and-multiply equals e explicit multiplications, for random
  // matrices and exponents (including 0 and 1).
  Rng rng(42);
  for (int trial = 0; trial < 16; ++trial) {
    const unsigned n = 2 + rng.next_below(31);  // 2..32
    const std::uint64_t mask =
        n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
    Gf2Matrix m(n);
    for (unsigned i = 0; i < n; ++i) m.set_row(i, rng.next_u64() & mask);
    const std::uint64_t e = trial < 2 ? std::uint64_t(trial)  // 0 and 1
                                      : 2 + rng.next_below(200);
    Gf2Matrix ref = Gf2Matrix::identity(n);
    for (std::uint64_t i = 0; i < e; ++i) ref = m * ref;
    CHECK(m.pow(e) == ref);
    // And the product applies like iterated application.
    const std::uint64_t v = rng.next_u64() & mask;
    std::uint64_t w = v;
    for (std::uint64_t i = 0; i < e; ++i) w = m.apply(w);
    CHECK_EQ(m.pow(e).apply(v), w);
  }
}

// --- lfsr_transition vs the Lfsr class ------------------------------------

void test_transition_matches_lfsr() {
  // For every supported degree, M^t * seed equals the register after t
  // Lfsr::step() calls, and the output stream (bit degree-1 before each
  // step) is the linear function of the seed the compressor assumes.
  for (unsigned degree = 4; degree <= 32; ++degree) {
    const std::uint64_t taps = Lfsr::primitive_taps(degree);
    const Gf2Matrix M = lfsr_transition(degree, taps);
    Rng rng(degree * 977);
    const std::uint64_t mask = degree >= 64
                                   ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << degree) - 1;
    std::uint64_t seed = (rng.next_u64() & mask) | 1;  // nonzero
    Lfsr lfsr(degree, taps, seed);

    const std::size_t width = 3 * degree + 5;
    BitVec stream(width);
    lfsr.fill(stream);

    std::uint64_t state = seed;
    Gf2Matrix Mt = Gf2Matrix::identity(degree);
    for (std::size_t t = 0; t < width; ++t) {
      CHECK_EQ(Mt.apply(seed), state);          // M^t * seed == state at t
      CHECK_EQ((state >> (degree - 1)) & 1,     // stream bit t
               std::uint64_t(stream.get(t)));
      // First `degree` stream bits are seed bits degree-1..0 — the identity
      // rows the segmented reseeding solver's termination proof rests on.
      if (t < degree)
        CHECK_EQ(std::uint64_t(stream.get(t)), (seed >> (degree - 1 - t)) & 1);
      state = M.apply(state);
      Mt = M * Mt;
    }
    CHECK(M.pow(width) == Mt);
  }
}

}  // namespace

int main() {
  test_solver_solvable();
  test_solver_inconsistent();
  test_solver_underdetermined();
  test_solver_random_roundtrip();
  test_matrix_pow_regression();
  test_transition_matches_lfsr();
  return bist_test::summary();
}
