// Durability of the pipeline end to end: cache hits through run_plan_job
// (bit-identical to the computed sweep), corruption quarantined inside a job
// that still completes Ok, bounded deterministic retry for transient stage
// failures vs. fail-fast for deterministic ones, and the batch manifest's
// kill-and-resume contract — a resumed batch's reports are byte-identical
// (volatile fields stripped) to a cold run's, and a torn manifest tail
// replays everything before the tear.

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "circuits/iscas85_family.hpp"
#include "netlist/bench_io.hpp"
#include "pipeline/job.hpp"
#include "store/manifest.hpp"
#include "store/result_store.hpp"
#include "store/serialize.hpp"
#include "test_util.hpp"
#include "util/fileio.hpp"
#include "util/hash.hpp"

using namespace bist;
namespace fs = std::filesystem;

namespace {

JobSpec make_spec(const std::string& name) {
  JobSpec s;
  s.name = name;
  s.bench_text = write_bench(make_iscas85(name));
  s.sweep_lengths = {32, 128};
  s.tpg.lfsr_patterns = 128;
  s.tpg.podem.backtrack_limit = 50;
  s.retry.backoff_s = 0.0005;  // keep retry tests fast
  return s;
}

const StageReport* find_stage(const JobReport& r, std::string_view name) {
  for (const StageReport& s : r.stages)
    if (s.name == name) return &s;
  return nullptr;
}

// Serialized job-report bytes with wall-clock/attempt/cache fields zeroed:
// the differential oracle for "same work, different run".
std::vector<std::uint8_t> stripped_bytes(JobReport r) {
  strip_volatile(r);
  return serialize_job_report(r);
}

// Sweep bytes with timings zeroed, for fresh-vs-recomputed comparisons.
std::vector<std::uint8_t> sweep_bytes(MixedSweepResult s) {
  s.stats.lfsr_seconds = s.stats.podem_seconds = 0;
  s.stats.compact_seconds = s.stats.solve_seconds = 0;
  for (MixedSchemeResult& p : s.points) {
    p.lfsr_seconds = p.podem_seconds = p.compact_seconds = p.solve_seconds = 0;
    p.comp.solve_seconds = 0;
  }
  return serialize_sweep(s);
}

// ---------------------------------------------------------------------------
void test_cache_hit_through_job(ResultStore& store) {
  JobSpec spec = make_spec("c432s");
  spec.store = &store;

  const JobReport cold = run_plan_job(spec);
  CHECK(cold.status.ok());
  CHECK(cold.wrapper_ok);
  CHECK(cold.cache.consulted);
  CHECK(!cold.cache.hit);
  CHECK(cold.cache.stored);

  const JobReport warm = run_plan_job(spec);
  CHECK(warm.status.ok());
  CHECK(warm.wrapper_ok);
  CHECK(warm.cache.hit);
  CHECK(!warm.cache.stored);  // nothing to publish on a hit
  // The served sweep is byte-identical to the computed one — timings
  // included, because the record IS the cold run's serialization.
  CHECK(serialize_sweep(warm.sweep) == serialize_sweep(cold.sweep));
  // Downstream stages run on identical data -> identical hardware.
  CHECK(warm.wrapper_bench == cold.wrapper_bench);
  const StageReport* sr = find_stage(warm, "sweep");
  CHECK(sr && sr->note.find("hit") != std::string::npos);
  // Overall differential: stripped reports are byte-equal.
  CHECK(stripped_bytes(warm) == stripped_bytes(cold));
}

// ---------------------------------------------------------------------------
void test_quarantine_through_job(ResultStore& store) {
  JobSpec spec = make_spec("c432s");
  spec.store = &store;

  const JobReport baseline = run_plan_job(spec);
  CHECK(baseline.status.ok());
  const Netlist n = read_bench(spec.bench_text);
  const Digest128 key = sweep_cache_key(n, spec.sweep_lengths, spec.tpg);
  const std::string path = store.sweep_path(key);
  std::vector<std::uint8_t> good;
  CHECK(FileOps::real().read_file(path, good));

  using Mangle = std::vector<std::uint8_t> (*)(std::vector<std::uint8_t>);
  const Mangle cases[] = {
      [](std::vector<std::uint8_t> b) {  // truncated mid-payload
        b.resize(b.size() / 2);
        return b;
      },
      [](std::vector<std::uint8_t> b) {  // bit rot in the payload
        b[b.size() - 1] ^= 0x80;
        return b;
      },
      [](std::vector<std::uint8_t> b) {  // future format version
        b[4] += 1;
        return b;
      },
      [](std::vector<std::uint8_t> b) {  // checksum-valid garbage payload
        (void)b;
        return std::vector<std::uint8_t>();  // replaced below with a frame
      },
  };
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    std::vector<std::uint8_t> bad = cases[i](good);
    if (bad.empty()) bad = frame_record(key, std::vector<std::uint8_t>(32, 0xFF));
    CHECK(FileOps::real().write_file(path, bad));

    // The job must complete Ok: quarantine + recompute, never an exception.
    const JobReport rep = run_plan_job(spec);
    CHECK(rep.status.ok());
    CHECK(rep.wrapper_ok);
    CHECK(rep.cache.quarantined);
    CHECK(!rep.cache.hit);
    CHECK(rep.cache.stored);  // recomputed result re-published
    const StageReport* sr = find_stage(rep, "sweep");
    CHECK(sr && !sr->note.empty());
    // The recomputation matches the baseline, work for work.
    CHECK(sweep_bytes(rep.sweep) == sweep_bytes(baseline.sweep));
    CHECK(fs::exists(path));  // healed for the next consumer
  }
}

// ---------------------------------------------------------------------------
void test_retry_and_fail_fast() {
  // Two transient faults, three attempts: the third try wins.
  {
    set_injected_failure("sweep", "c17", /*times=*/2, /*transient=*/true);
    JobSpec spec = make_spec("c17");
    spec.retry.attempts = 3;
    const JobReport rep = run_plan_job(spec);
    clear_injected_failure();
    CHECK(rep.status.ok());
    CHECK(rep.wrapper_ok);
    const StageReport* sr = find_stage(rep, "sweep");
    CHECK(sr && sr->attempts == 3);
    CHECK(sr && sr->note.find("transient") != std::string::npos);
  }
  // Transient faults outlasting the budget: Error after exactly `attempts`.
  {
    set_injected_failure("sweep", "c17", /*times=*/-1, /*transient=*/true);
    JobSpec spec = make_spec("c17");
    spec.retry.attempts = 2;
    const JobReport rep = run_plan_job(spec);
    clear_injected_failure();
    CHECK(rep.status.code == StageCode::Error);
    const StageReport* sr = find_stage(rep, "sweep");
    CHECK(sr && sr->attempts == 2);
  }
  // Deterministic failure: fail fast on the first attempt, retries unspent.
  {
    set_injected_failure("sweep", "c17", /*times=*/-1, /*transient=*/false);
    JobSpec spec = make_spec("c17");
    spec.retry.attempts = 3;
    const JobReport rep = run_plan_job(spec);
    clear_injected_failure();
    CHECK(rep.status.code == StageCode::Error);
    const StageReport* sr = find_stage(rep, "sweep");
    CHECK(sr && sr->attempts == 1);
  }
  // The classifier itself.
  CHECK(is_transient_error(TransientError("blip")));
  CHECK(is_transient_error(
      std::system_error(std::make_error_code(std::errc::io_error))));
  CHECK(!is_transient_error(std::runtime_error("logic bug")));
}

// ---------------------------------------------------------------------------
void test_manifest_resume(ResultStore& store) {
  const std::string mp = "jobstore_manifest.bin";
  fs::remove(mp);

  std::vector<JobSpec> specs = {make_spec("c17"), make_spec("c432s")};

  // Cold baseline: no store, no manifest.
  BatchOptions cold_bo;
  cold_bo.threads = 2;
  const BatchResult cold = run_job_batch(specs, cold_bo);
  CHECK_EQ(cold.reports.size(), 2u);
  CHECK(cold.reports[0].status.ok() && cold.reports[1].status.ok());

  // "Crashed" run: only the first job completed before the kill.
  BatchOptions bo;
  bo.threads = 2;
  bo.store = &store;
  bo.manifest_path = mp;
  const std::vector<JobSpec> partial = {specs[0]};
  const BatchResult before = run_job_batch(partial, bo);
  CHECK(before.reports[0].status.ok());
  CHECK_EQ(before.manifest_hits, 0u);

  // Resume: the finished job replays from the journal, the other computes.
  bo.resume = true;
  const BatchResult resumed = run_job_batch(specs, bo);
  CHECK_EQ(resumed.manifest_loaded, 1u);
  CHECK_EQ(resumed.manifest_hits, 1u);
  CHECK(resumed.reports[0].cache.manifest);
  CHECK(!resumed.reports[1].cache.manifest);
  CHECK(resumed.reports[0].status.ok() && resumed.reports[1].status.ok());
  // The kill-and-resume differential: byte-identical to the cold run once
  // timings/attempts/cache provenance are stripped.
  for (std::size_t i = 0; i < specs.size(); ++i)
    CHECK(stripped_bytes(resumed.reports[i]) ==
          stripped_bytes(cold.reports[i]));

  // Torn tail: garbage after the last intact frame (the SIGKILL shape).
  {
    const std::vector<std::uint8_t> junk = {'B', 'S', 'T', 0x00, 0x13, 0x37};
    CHECK(FileOps::real().append_file(mp, junk));
    BatchManifest m(mp);
    CHECK_EQ(m.load(), 2u);  // both completed jobs journaled before the tear
    const BatchResult again = run_job_batch(specs, bo);
    CHECK_EQ(again.manifest_hits, 2u);  // everything before the tear replays
    for (std::size_t i = 0; i < specs.size(); ++i)
      CHECK(stripped_bytes(again.reports[i]) ==
            stripped_bytes(cold.reports[i]));
  }

  // Fresh (non-resume) batch with a manifest path starts a fresh journal.
  {
    bo.resume = false;
    const BatchResult fresh = run_job_batch(partial, bo);
    CHECK_EQ(fresh.manifest_hits, 0u);
    BatchManifest m(mp);
    CHECK_EQ(m.load(), 1u);  // stale journal was removed, one new entry
  }

  fs::remove(mp);
}

}  // namespace

int main() {
  const std::string dir = "jobstore_dir";
  fs::remove_all(dir);
  {
    ResultStore store({dir, nullptr});
    test_cache_hit_through_job(store);
    test_quarantine_through_job(store);
    test_retry_and_fail_fast();
    test_manifest_resume(store);
  }
  fs::remove_all(dir);
  return bist_test::summary();
}
