// Cross-simulator consistency: on every ISCAS85 surrogate, random patterns
// must produce identical values from the seed-path BitParSim (per-gate heap
// traversal), the kernel-path KernelSim (structure-of-arrays), and a
// fully-specified TernarySim (event-driven, no X anywhere).

#include <iostream>
#include <vector>

#include "circuits/iscas85_family.hpp"
#include "sim/bitpar_sim.hpp"
#include "sim/kernel.hpp"
#include "sim/ternary_sim.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

using namespace bist;

int main() {
  for (const std::string& name : iscas85_names()) {
    const Netlist n = make_iscas85(name);
    const SimKernel kernel(n);
    Rng rng(0x5eed + n.gate_count());

    std::vector<BitVec> pats;
    for (int p = 0; p < 128; ++p) {
      BitVec v(n.input_count());
      for (std::size_t i = 0; i < v.size(); ++i) v.set(i, rng.next_bool());
      pats.push_back(std::move(v));
    }
    const auto blocks = pack_all(pats, n.input_count());

    BitParSim seed_sim(n);
    KernelSim kern_sim(kernel);
    std::size_t word_mismatches = 0;
    for (const auto& blk : blocks) {
      seed_sim.simulate(blk);
      kern_sim.simulate(blk);
      const std::uint64_t lanes = blk.lane_mask();
      for (GateId g = 0; g < n.gate_count(); ++g)
        if ((seed_sim.value(g) ^ kern_sim.value(g)) & lanes) ++word_mismatches;
    }
    CHECK_EQ(word_mismatches, 0u);
    if (word_mismatches)
      std::cout << name << ": seed vs kernel mismatch\n";

    // Fully-specified TernarySim on the first 4 patterns: no X may survive a
    // complete PI assignment, and every gate must match the bit-parallel
    // value in the corresponding lane of block 0.
    seed_sim.simulate(blocks[0]);
    TernarySim tsim(kernel);
    std::size_t cross = 0;
    for (std::size_t p = 0; p < 4; ++p) {
      for (std::size_t i = 0; i < n.input_count(); ++i)
        tsim.set_input(i, pats[p].get(i) ? Ternary::V1 : Ternary::V0);
      for (GateId g = 0; g < n.gate_count(); ++g) {
        const bool expect = (seed_sim.value(g) >> p) & 1;
        const Ternary got = tsim.value(g);
        if (got != (expect ? Ternary::V1 : Ternary::V0)) ++cross;
      }
    }
    CHECK_EQ(cross, 0u);
    if (cross) std::cout << name << ": ternary vs bit-parallel mismatch\n";

    // simulate_single convenience path agrees with the kernel path on POs.
    const BitVec po = simulate_single(n, pats[0]);
    kern_sim.simulate(blocks[0]);
    for (std::size_t o = 0; o < n.output_count(); ++o)
      CHECK_EQ(po.get(o), bool(kern_sim.value(n.outputs()[o]) & 1));
  }
  return bist_test::summary();
}
