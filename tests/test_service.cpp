// Chaos campaign for the resilient job service: deterministic fairness,
// bounded intake with fast Overloaded shedding, the per-stage fault-injection
// matrix (deterministic / transient-healing / transient-exhausting across all
// five pipeline stages), file-fault containment (failed manifest appends and
// health publishes degrade, never crash), watchdog kills + quarantine
// escalation, drain-always-terminates (clean and deadline-forced), and the
// kill-and-restart manifest replay differential.  The cross-cutting
// invariants, checked after every scenario:
//
//   - every submission produces exactly ONE report through the sink;
//   - submitted == accepted + replayed + rejected_*  and
//     accepted  == completed_* + drain_dropped (once drained);
//   - an accepted job is never silently lost (dropped jobs still report);
//   - drain terminates, even with a wedged job, within its deadline plus the
//     cooperative cancellation latency.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "circuits/iscas85_family.hpp"
#include "netlist/bench_io.hpp"
#include "pipeline/job.hpp"
#include "service/service.hpp"
#include "store/manifest.hpp"
#include "store/serialize.hpp"
#include "test_util.hpp"
#include "util/fileio.hpp"
#include "util/hash.hpp"
#include "util/wallclock.hpp"

using namespace bist;
namespace fs = std::filesystem;

namespace {

JobSpec make_spec(const std::string& circuit, const std::string& name = {}) {
  JobSpec s;
  s.name = name.empty() ? circuit : name;
  s.bench_text = write_bench(make_iscas85(circuit));
  s.sweep_lengths = {32, 128};
  s.tpg.lfsr_patterns = 128;
  s.tpg.podem.backtrack_limit = 50;
  s.retry.backoff_s = 0.0005;
  return s;
}

std::vector<std::uint8_t> stripped_bytes(JobReport r) {
  strip_volatile(r);
  return serialize_job_report(r);
}

// Thread-safe sink that records every streamed report in emission order.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<JobReport> reports;

  void add(const JobReport& r) {
    {
      std::lock_guard<std::mutex> lk(mu);
      reports.push_back(r);
    }
    cv.notify_all();
  }
  JobService::Sink sink() {
    return [this](const JobReport& r) { add(r); };
  }
  bool wait_count(std::size_t n, double timeout_s = 30.0) {
    std::unique_lock<std::mutex> lk(mu);
    return cv.wait_for(lk, std::chrono::duration<double>(timeout_s),
                       [&] { return reports.size() >= n; });
  }
  std::size_t count() {
    std::lock_guard<std::mutex> lk(mu);
    return reports.size();
  }
  // Copy of the report for `name`; CHECK-fails (and returns empty) if absent.
  JobReport find(std::string_view name) {
    std::lock_guard<std::mutex> lk(mu);
    for (const JobReport& r : reports)
      if (r.name == name) return r;
    CHECK(!"report not found");
    return {};
  }
  std::vector<std::string> names() {
    std::lock_guard<std::mutex> lk(mu);
    std::vector<std::string> out;
    for (const JobReport& r : reports) out.push_back(r.name);
    return out;
  }
};

template <class Pred>
bool wait_until(Pred pred, double timeout_s = 10.0) {
  const auto t0 = WallClock::now();
  while (!pred()) {
    if (seconds_since(t0) > timeout_s) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

// The accounting identities every scenario must maintain.
void check_accounting(const ServiceHealth& h) {
  CHECK_EQ(h.submitted, h.accepted + h.replayed + h.rejected_overload +
                            h.rejected_quarantine + h.rejected_stopping);
  CHECK_EQ(h.accepted, h.completed_ok + h.completed_error +
                           h.completed_stopped + h.drain_dropped +
                           h.in_flight + h.queue_depth);
}

// FileOps shim: injectable append/rename/write failures under the exact
// code paths the service's manifest and health publishing use.
struct FlakyOps : FileOps {
  bool fail_appends = false;
  bool fail_renames = false;
  bool fail_writes = false;

  bool append_file(const std::string& path,
                   std::span<const std::uint8_t> data) override {
    if (fail_appends) return false;
    return FileOps::append_file(path, data);
  }
  bool rename_file(const std::string& from, const std::string& to) override {
    if (fail_renames) return false;
    return FileOps::rename_file(from, to);
  }
  bool write_file(const std::string& path,
                  std::span<const std::uint8_t> data) override {
    if (fail_writes) return false;
    return FileOps::write_file(path, data);
  }
};

// ---------------------------------------------------------------------------
// FairQueue determinism: pure function of the push sequence.
void test_fair_queue() {
  // Round-robin across clients in one tier, FIFO within a client.
  {
    FairQueue q;
    auto push = [&](const char* client, const char* name, int prio = 0) {
      QueuedJob j;
      j.spec.name = name;
      j.client = client;
      j.priority = prio;
      q.push(std::move(j));
    };
    push("A", "a1");
    push("A", "a2");
    push("A", "a3");
    push("B", "b1");
    push("B", "b2");
    push("C", "c1");
    const char* want[] = {"a1", "b1", "c1", "a2", "b2", "a3"};
    for (const char* w : want) {
      QueuedJob j;
      CHECK(q.pop(j));
      CHECK_EQ(j.spec.name, std::string(w));
    }
    QueuedJob j;
    CHECK(!q.pop(j));
    CHECK_EQ(q.size(), 0u);
  }
  // Strict priority tiers: higher priority drains first regardless of push
  // order; fairness applies within each tier independently.
  {
    FairQueue q;
    auto push = [&](const char* client, const char* name, int prio) {
      QueuedJob j;
      j.spec.name = name;
      j.client = client;
      j.priority = prio;
      q.push(std::move(j));
    };
    push("A", "low_a1", 0);
    push("B", "hi_b1", 5);
    push("A", "hi_a1", 5);
    push("A", "low_a2", 0);
    push("B", "hi_b2", 5);
    const char* want[] = {"hi_b1", "hi_a1", "hi_b2", "low_a1", "low_a2"};
    for (const char* w : want) {
      QueuedJob j;
      CHECK(q.pop(j));
      CHECK_EQ(j.spec.name, std::string(w));
    }
    // drain_all yields exactly the pop order.
    push("A", "x1", 0);
    push("B", "y1", 1);
    push("A", "x2", 0);
    const auto rest = q.drain_all();
    CHECK_EQ(rest.size(), 3u);
    CHECK_EQ(rest[0].spec.name, std::string("y1"));
    CHECK_EQ(rest[1].spec.name, std::string("x1"));
    CHECK_EQ(rest[2].spec.name, std::string("x2"));
    CHECK_EQ(q.size(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Happy path: submit, complete, clean drain; exactly one report each.
void test_submit_and_complete() {
  Collector col;
  ServiceOptions o;
  o.threads = 2;
  JobService svc(o, col.sink());
  CHECK(svc.accepting());

  CHECK(svc.submit(make_spec("c17")).code == SubmitCode::Accepted);
  CHECK(svc.submit(make_spec("c432s")).code == SubmitCode::Accepted);
  CHECK(col.wait_count(2));
  svc.drain(-1);

  CHECK(!svc.accepting());
  CHECK(col.find("c17").status.ok());
  CHECK(col.find("c432s").status.ok());
  CHECK(col.find("c17").wrapper_ok);

  const ServiceHealth h = svc.health();
  CHECK_EQ(h.state, std::string("stopped"));
  CHECK_EQ(h.submitted, 2u);
  CHECK_EQ(h.accepted, 2u);
  CHECK_EQ(h.completed_ok, 2u);
  CHECK_EQ(h.in_flight, 0u);
  CHECK_EQ(h.queue_depth, 0u);
  check_accounting(h);

  // Post-drain submissions shed with NotAccepting and still report.
  CHECK(svc.submit(make_spec("c17", "late")).code == SubmitCode::NotAccepting);
  CHECK_EQ(col.count(), 3u);
  const JobReport late = col.find("late");
  CHECK(late.status.code == StageCode::Rejected);
  check_accounting(svc.health());
}

// ---------------------------------------------------------------------------
// Backpressure: queue at high-water mark -> fast Overloaded reject; drain
// deadline -> in-flight cancelled, queue dropped, nothing silently lost.
void test_overload_and_forced_drain() {
  Collector col;
  ServiceOptions o;
  o.threads = 1;
  o.queue_limit = 2;
  JobService svc(o, col.sink());

  // Occupy the single worker: every sweep attempt throws transient and the
  // retry loop sleeps 50ms between attempts — a deterministic busy window
  // (seconds long) that drain's cancel cuts short via the interruptible
  // backoff.
  set_injected_failure("sweep", "blocker", /*times=*/-1, /*transient=*/true);
  JobSpec blocker = make_spec("c17", "blocker");
  blocker.retry.attempts = 200;
  blocker.retry.backoff_s = 0.05;
  blocker.retry.multiplier = 1.0;
  CHECK(svc.submit(blocker).code == SubmitCode::Accepted);
  CHECK(wait_until([&] { return svc.health().in_flight == 1; }));

  // Fill the queue to the high-water mark, then overflow it.
  CHECK(svc.submit(make_spec("c17", "q1")).code == SubmitCode::Accepted);
  CHECK(svc.submit(make_spec("c17", "q2")).code == SubmitCode::Accepted);
  const auto t0 = WallClock::now();
  const SubmitResult over = svc.submit(make_spec("c17", "shed"));
  CHECK(over.code == SubmitCode::Overloaded);
  CHECK(seconds_since(t0) < 1.0);  // fast reject, no blocking
  const JobReport shed = col.find("shed");
  CHECK(shed.status.code == StageCode::Rejected);
  CHECK(shed.status.message.find("high-water") != std::string::npos);

  // Forced drain: the deadline passes while the blocker spins, so it is
  // cancelled and the queued jobs are dropped — with reports.
  const auto d0 = WallClock::now();
  svc.drain(0.1);
  CHECK(seconds_since(d0) < 10.0);  // terminates: bounded by cancel latency
  clear_injected_failure();

  CHECK_EQ(col.count(), 4u);  // blocker + q1 + q2 + shed: one report each
  const JobReport q1 = col.find("q1");
  CHECK(q1.status.code == StageCode::Cancelled);
  CHECK(q1.status.message.find("drain") != std::string::npos);
  CHECK(col.find("q2").status.code == StageCode::Cancelled);

  const ServiceHealth h = svc.health();
  CHECK_EQ(h.submitted, 4u);
  CHECK_EQ(h.rejected_overload, 1u);
  CHECK_EQ(h.drain_dropped, 2u);
  CHECK_EQ(h.completed_error + h.completed_stopped, 1u);  // the blocker
  check_accounting(h);
}

// ---------------------------------------------------------------------------
// Deterministic fairness end to end: with one worker pinned, queued work
// runs in exactly the FairQueue order (priority, then client round-robin).
void test_fairness_integration() {
  Collector col;
  ServiceOptions o;
  o.threads = 1;
  JobService svc(o, col.sink());

  // Pin the worker for ~0.4s (8 transient attempts x 50ms backoff).
  set_injected_failure("sweep", "blocker", /*times=*/-1, /*transient=*/true);
  JobSpec blocker = make_spec("c17", "blocker");
  blocker.retry.attempts = 8;
  blocker.retry.backoff_s = 0.05;
  blocker.retry.multiplier = 1.0;
  CHECK(svc.submit(blocker).code == SubmitCode::Accepted);
  CHECK(wait_until([&] { return svc.health().in_flight == 1; }));

  CHECK(svc.submit(make_spec("c17", "a1"), "A", 0).code ==
        SubmitCode::Accepted);
  CHECK(svc.submit(make_spec("c17", "a2"), "A", 0).code ==
        SubmitCode::Accepted);
  CHECK(svc.submit(make_spec("c17", "b1"), "B", 0).code ==
        SubmitCode::Accepted);
  CHECK(svc.submit(make_spec("c17", "d1"), "D", 1).code ==
        SubmitCode::Accepted);

  svc.drain(-1);
  clear_injected_failure();

  // Single worker => completion order == scheduling order.
  const std::vector<std::string> got = col.names();
  const std::vector<std::string> want = {"blocker", "d1", "a1", "b1", "a2"};
  CHECK(got == want);
  CHECK(col.find("blocker").status.code == StageCode::Error);
  for (const char* n : {"a1", "a2", "b1", "d1"})
    CHECK(col.find(n).status.ok());
  check_accounting(svc.health());
}

// ---------------------------------------------------------------------------
// The injection matrix: all five stages x {deterministic, transient-healing,
// transient-exhausting}.  The service must contain every case — correct
// per-job status, no crash, no hang, counters consistent throughout.
void test_injection_matrix() {
  Collector col;
  ServiceOptions o;
  o.threads = 2;
  JobService svc(o, col.sink());

  const char* stages[] = {"parse", "sweep", "schedule", "synth", "verify"};
  std::size_t done = 0;
  for (const char* stage : stages) {
    // Deterministic fault: fails fast (one attempt), job reports Error.
    {
      const std::string name = std::string("det_") + stage;
      set_injected_failure(stage, name, /*times=*/-1, /*transient=*/false);
      JobSpec s = make_spec("c17", name);
      s.retry.attempts = 3;
      CHECK(svc.submit(s).code == SubmitCode::Accepted);
      CHECK(col.wait_count(++done));
      clear_injected_failure();
      const JobReport r = col.find(name);
      CHECK(r.status.code == StageCode::Error);
      for (const StageReport& sr : r.stages)
        if (sr.name == stage) CHECK_EQ(sr.attempts, 1u);
    }
    // Transient fault that heals: retry wins, job reports Ok.
    {
      const std::string name = std::string("heal_") + stage;
      set_injected_failure(stage, name, /*times=*/2, /*transient=*/true);
      JobSpec s = make_spec("c17", name);
      s.retry.attempts = 3;
      CHECK(svc.submit(s).code == SubmitCode::Accepted);
      CHECK(col.wait_count(++done));
      clear_injected_failure();
      const JobReport r = col.find(name);
      CHECK(r.status.ok());
      for (const StageReport& sr : r.stages)
        if (sr.name == stage) CHECK_EQ(sr.attempts, 3u);
    }
    // Transient fault outlasting the budget: Error after `attempts` tries.
    {
      const std::string name = std::string("exh_") + stage;
      set_injected_failure(stage, name, /*times=*/-1, /*transient=*/true);
      JobSpec s = make_spec("c17", name);
      s.retry.attempts = 2;
      CHECK(svc.submit(s).code == SubmitCode::Accepted);
      CHECK(col.wait_count(++done));
      clear_injected_failure();
      const JobReport r = col.find(name);
      CHECK(r.status.code == StageCode::Error);
      for (const StageReport& sr : r.stages)
        if (sr.name == stage) CHECK_EQ(sr.attempts, 2u);
    }
    CHECK(svc.accepting());  // the service shrugged all of it off
    check_accounting(svc.health());
  }
  // Malformed input (unparseable netlist) is a contained parse Error too.
  JobSpec bad;
  bad.name = "malformed";
  bad.bench_text = "this is not a bench file @@@@";
  bad.sweep_lengths = {32};
  CHECK(svc.submit(bad).code == SubmitCode::Accepted);
  CHECK(col.wait_count(++done));
  CHECK(col.find("malformed").status.code == StageCode::Error);

  svc.drain(-1);
  const ServiceHealth h = svc.health();
  CHECK_EQ(h.completed_ok, 5u);                      // the heal_* jobs
  CHECK_EQ(h.completed_error, 11u);                  // det/exh per stage + bad
  CHECK(h.retried_jobs >= 10u);                      // heal_* and exh_* retried
  check_accounting(h);
}

// ---------------------------------------------------------------------------
// File faults: failed manifest appends and failed health publishes degrade
// (journal cold, snapshot stale) but never break job execution.
void test_file_fault_containment() {
  const std::string mp = "service_flaky_manifest.bin";
  const std::string hp = "service_flaky_health.json";
  fs::remove(mp);
  fs::remove(hp);
  FlakyOps ops;
  ops.fail_appends = true;  // every journal append fails
  ops.fail_writes = true;   // every health temp-file write fails
  {
    Collector col;
    ServiceOptions o;
    o.threads = 1;
    o.manifest_path = mp;
    o.health_path = hp;
    o.health_period_s = 0.01;
    o.ops = &ops;
    JobService svc(o, col.sink());
    CHECK(svc.submit(make_spec("c17")).code == SubmitCode::Accepted);
    CHECK(col.wait_count(1));
    svc.drain(-1);
    CHECK(col.find("c17").status.ok());  // the job itself is untouched
    check_accounting(svc.health());
  }
  // The journal stayed cold, so a resume run re-executes instead of
  // replaying — degraded performance, full correctness.
  {
    Collector col;
    ServiceOptions o;
    o.threads = 1;
    o.manifest_path = mp;
    o.resume = true;
    JobService svc(o, col.sink());
    CHECK(svc.submit(make_spec("c17")).code == SubmitCode::Accepted);
    CHECK(col.wait_count(1));
    svc.drain(-1);
    CHECK(col.find("c17").status.ok());
    CHECK(!col.find("c17").cache.manifest);
  }
  fs::remove(mp);
  fs::remove(hp);
}

// ---------------------------------------------------------------------------
// Watchdog: a job past its timeout that will not stop on its own is
// cancelled; repeated offenses quarantine the job name at admission.
void test_watchdog_and_quarantine() {
  Collector col;
  ServiceOptions o;
  o.threads = 1;
  o.watchdog_timeout_s = 0.15;
  o.stuck_grace_s = 0.1;
  o.watchdog_poll_s = 0.01;
  o.quarantine_after = 2;
  JobService svc(o, col.sink());

  // "wedge" spins in the transient-retry loop for ~50s unless killed; it has
  // no job_timeout_s, so only the service watchdog can stop it.
  set_injected_failure("sweep", "wedge", /*times=*/-1, /*transient=*/true);
  JobSpec wedge = make_spec("c17", "wedge");
  wedge.retry.attempts = 1000;
  wedge.retry.backoff_s = 0.05;
  wedge.retry.multiplier = 1.0;

  for (int run = 1; run <= 2; ++run) {
    const auto t0 = WallClock::now();
    CHECK(svc.submit(wedge).code == SubmitCode::Accepted);
    CHECK(col.wait_count(static_cast<std::size_t>(run), 10.0));
    CHECK(seconds_since(t0) < 5.0);  // killed near timeout+grace, not 50s
    CHECK_EQ(svc.health().watchdog_kills, static_cast<std::uint64_t>(run));
  }
  clear_injected_failure();

  // Two offenses spent the budget: the name is now refused at admission.
  CHECK(svc.submit(wedge).code == SubmitCode::Quarantined);
  CHECK_EQ(col.count(), 3u);
  const ServiceHealth h = svc.health();
  CHECK_EQ(h.rejected_quarantine, 1u);
  CHECK_EQ(h.quarantined_names, 1u);
  const auto q = svc.quarantined();
  CHECK_EQ(q.size(), 1u);
  CHECK_EQ(q[0], std::string("wedge"));

  // Other names are unaffected.
  CHECK(svc.submit(make_spec("c17")).code == SubmitCode::Accepted);
  CHECK(col.wait_count(4));
  CHECK(col.find("c17").status.ok());
  svc.drain(-1);
  check_accounting(svc.health());
}

// ---------------------------------------------------------------------------
// Restart recovery: journaled jobs replay at admission after a restart, and
// the replayed stream is byte-identical (volatile fields stripped) to a cold
// run — including after a hard mid-flight drain ("kill").
void test_restart_replay_differential() {
  const std::string mp = "service_manifest.bin";
  fs::remove(mp);
  const JobSpec j1 = make_spec("c17");
  const JobSpec j2 = make_spec("c432s");
  const JobReport cold1 = run_plan_job(j1);
  const JobReport cold2 = run_plan_job(j2);

  // Run A: j1 completes and is journaled; then a hard drain mid-j2 ("kill"
  // shape: accepted work cancelled before it could finish).
  {
    Collector col;
    ServiceOptions o;
    o.threads = 1;
    o.manifest_path = mp;
    JobService svc(o, col.sink());
    CHECK(svc.submit(j1).code == SubmitCode::Accepted);
    CHECK(col.wait_count(1));
    set_injected_failure("sweep", "c432s", /*times=*/-1, /*transient=*/true);
    JobSpec slow2 = j2;
    slow2.retry.attempts = 200;
    slow2.retry.backoff_s = 0.05;
    slow2.retry.multiplier = 1.0;
    CHECK(svc.submit(slow2).code == SubmitCode::Accepted);
    CHECK(wait_until([&] { return svc.health().in_flight == 1; }));
    svc.drain(0);  // immediate: cancel in flight, like a SIGTERM deadline
    clear_injected_failure();
    CHECK_EQ(col.count(), 2u);
    CHECK(col.find("c17").status.ok());
    CHECK(!col.find("c432s").status.ok());  // cancelled or abandoned, not Ok
    check_accounting(svc.health());
  }

  // Run B (restart, resume): j1 replays instantly from the journal, j2 runs
  // fresh.  The union of streamed reports == the cold batch, stripped.
  {
    Collector col;
    ServiceOptions o;
    o.threads = 2;
    o.manifest_path = mp;
    o.resume = true;
    JobService svc(o, col.sink());
    const SubmitResult r1 = svc.submit(j1);
    CHECK(r1.code == SubmitCode::Replayed);
    CHECK_EQ(col.count(), 1u);  // replay emits before submit returns
    const SubmitResult r2 = svc.submit(j2);
    CHECK(r2.code == SubmitCode::Accepted);
    svc.drain(-1);

    const JobReport rep1 = col.find("c17");
    const JobReport rep2 = col.find("c432s");
    CHECK(rep1.cache.manifest);
    CHECK(rep1.cache.note.find("replayed") != std::string::npos);
    CHECK(!rep2.cache.manifest);
    CHECK(stripped_bytes(rep1) == stripped_bytes(cold1));
    CHECK(stripped_bytes(rep2) == stripped_bytes(cold2));

    const ServiceHealth h = svc.health();
    CHECK_EQ(h.replayed, 1u);
    CHECK_EQ(h.completed_ok, 1u);
    check_accounting(h);
  }

  // Run C: both journaled now — a second restart replays everything.
  {
    Collector col;
    ServiceOptions o;
    o.manifest_path = mp;
    o.resume = true;
    JobService svc(o, col.sink());
    CHECK(svc.submit(j1).code == SubmitCode::Replayed);
    CHECK(svc.submit(j2).code == SubmitCode::Replayed);
    svc.drain(-1);
    CHECK(stripped_bytes(col.find("c17")) == stripped_bytes(cold1));
    CHECK(stripped_bytes(col.find("c432s")) == stripped_bytes(cold2));
  }
  fs::remove(mp);
}

// ---------------------------------------------------------------------------
// Satellite: the manifest journal under concurrent writers — every frame
// lands intact (append serializes under the manifest mutex), none interleave.
void test_concurrent_manifest_writers() {
  const std::string mp = "service_concurrent_manifest.bin";
  fs::remove(mp);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  {
    BatchManifest m(mp);
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          JobReport r;
          r.name = "w" + std::to_string(t) + "_" + std::to_string(i);
          const Digest128 key = Hasher().str(r.name).digest();
          if (!m.append(key, r)) failures.fetch_add(1);
        }
      });
    }
    for (std::thread& th : threads) th.join();
    CHECK_EQ(failures.load(), 0);
  }
  // A single torn or interleaved frame would truncate the replay below the
  // full count (load stops at the first bad frame).
  BatchManifest check(mp);
  CHECK_EQ(check.load(), static_cast<std::size_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const std::string name = "w" + std::to_string(t) + "_" +
                               std::to_string(i);
      const JobReport* r = check.find(Hasher().str(name).digest());
      CHECK(r && r->name == name);
    }
  }
  fs::remove(mp);
}

// ---------------------------------------------------------------------------
// Satellite: retry backoff observes the job deadline/cancel — a stop during
// a long backoff returns within one poll slice, not after the full sleep.
void test_interruptible_backoff() {
  set_injected_failure("sweep", "c17", /*times=*/-1, /*transient=*/true);
  JobSpec spec = make_spec("c17");
  spec.retry.attempts = 2;
  spec.retry.backoff_s = 30.0;  // would sleep 30s if the wait were blind
  spec.job_timeout_s = 0.05;
  const auto t0 = WallClock::now();
  const JobReport rep = run_plan_job(spec);
  clear_injected_failure();
  CHECK(seconds_since(t0) < 5.0);  // one poll slice past the 50ms deadline
  CHECK(!rep.status.ok());
  bool noted = false;
  for (const StageReport& sr : rep.stages)
    if (sr.note.find("retry abandoned") != std::string::npos) noted = true;
  CHECK(noted);

  // Same for an explicit cancel arriving mid-backoff.
  set_injected_failure("sweep", "c17", /*times=*/-1, /*transient=*/true);
  CancelToken token;
  JobSpec spec2 = make_spec("c17");
  spec2.retry.attempts = 2;
  spec2.retry.backoff_s = 30.0;
  spec2.cancel = &token;
  const auto t1 = WallClock::now();
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.cancel();
  });
  const JobReport rep2 = run_plan_job(spec2);
  canceller.join();
  clear_injected_failure();
  CHECK(seconds_since(t1) < 5.0);
  CHECK(!rep2.status.ok());
}

// ---------------------------------------------------------------------------
// Satellite: the Rejected terminal status survives the serialization layer
// (format v2) and renders distinctly.
void test_rejected_status_roundtrip() {
  CHECK_EQ(stage_code_name(StageCode::Rejected), std::string_view("rejected"));
  JobReport r;
  r.name = "shed";
  r.status = StageStatus::rejected("admission: queue at high-water mark");
  const JobReport d = serialize_job_report(r).empty()
                          ? JobReport{}
                          : deserialize_job_report(serialize_job_report(r));
  CHECK(d.status.code == StageCode::Rejected);
  CHECK_EQ(d.status.message, r.status.message);
  CHECK_EQ(d.name, r.name);
}

// ---------------------------------------------------------------------------
// Health snapshots: periodic + final file publishes, schema sanity.
void test_health_snapshots() {
  const std::string hp = "service_health.json";
  fs::remove(hp);
  {
    Collector col;
    ServiceOptions o;
    o.threads = 1;
    o.health_path = hp;
    o.health_period_s = 0.01;
    JobService svc(o, col.sink());
    CHECK(svc.submit(make_spec("c17")).code == SubmitCode::Accepted);
    CHECK(col.wait_count(1));
    svc.drain(-1);
  }
  std::vector<std::uint8_t> bytes;
  CHECK(FileOps::real().read_file(hp, bytes));
  const std::string body(bytes.begin(), bytes.end());
  CHECK(body.find("\"state\":\"stopped\"") != std::string::npos);
  CHECK(body.find("\"completed_ok\":1") != std::string::npos);
  CHECK(body.find("\"queue_depth\":0") != std::string::npos);
  CHECK(body.front() == '{');

  // The JSON renderer itself, including the store block.
  ServiceHealth h;
  h.state = "running";
  h.has_store = true;
  h.store.hits = 3;
  h.store.misses = 1;
  const std::string js = health_json(h);
  CHECK(js.find("\"hit_rate\":0.75") != std::string::npos);
  CHECK(js.find("\"store\":{") != std::string::npos);
  fs::remove(hp);
}

}  // namespace

int main() {
  test_fair_queue();
  test_submit_and_complete();
  test_overload_and_forced_drain();
  test_fairness_integration();
  test_injection_matrix();
  test_file_fault_containment();
  test_watchdog_and_quarantine();
  test_restart_replay_differential();
  test_concurrent_manifest_writers();
  test_interruptible_backoff();
  test_rejected_status_roundtrip();
  test_health_snapshots();
  return bist_test::summary();
}
