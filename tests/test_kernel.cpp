#include <algorithm>
#include <vector>

#include "circuits/c17.hpp"
#include "circuits/iscas85_family.hpp"
#include "sim/kernel.hpp"
#include "test_util.hpp"

using namespace bist;

namespace {

void check_kernel_matches(const Netlist& n) {
  const SimKernel k(n);
  CHECK_EQ(k.gate_count(), n.gate_count());
  CHECK_EQ(k.max_level(), n.max_level());

  // index_of/gate_of are inverse permutations
  std::vector<char> seen(n.gate_count(), 0);
  for (KIndex ki = 0; ki < n.gate_count(); ++ki) {
    const GateId g = k.gate_of(ki);
    CHECK(g < n.gate_count());
    CHECK(!seen[g]);
    seen[g] = 1;
    CHECK_EQ(k.index_of(g), ki);
  }

  // kernel arrays mirror the netlist through the permutation
  for (KIndex ki = 0; ki < n.gate_count(); ++ki) {
    const GateId g = k.gate_of(ki);
    const Gate& gg = n.gate(g);
    CHECK(k.type(ki) == gg.type);
    CHECK_EQ(k.level(ki), n.level(g));
    CHECK_EQ(k.is_output(ki), n.is_output(g));
    const auto kf = k.fanins(ki);
    CHECK_EQ(kf.size(), gg.fanins.size());
    for (std::size_t j = 0; j < kf.size(); ++j)
      CHECK_EQ(k.gate_of(kf[j]), gg.fanins[j]);  // fanin order preserved
    // every fanout edge round-trips
    const auto ko = k.fanouts(ki);
    const auto no = n.fanouts(g);
    CHECK_EQ(ko.size(), no.size());
    for (KIndex fo : ko) {
      const GateId fg = k.gate_of(fo);
      CHECK_EQ(std::count(no.begin(), no.end(), fg), 1);
    }
    // kernel index order is level order: fanins always come earlier
    for (KIndex f : kf) CHECK(f < ki);
  }

  // levels are non-decreasing in kernel order (the renumbering invariant)
  for (KIndex ki = 1; ki < n.gate_count(); ++ki)
    CHECK(k.level(ki) >= k.level(ki - 1));

  // PI/PO lists translate back to the netlist's
  CHECK_EQ(k.inputs().size(), n.inputs().size());
  for (std::size_t i = 0; i < n.inputs().size(); ++i)
    CHECK_EQ(k.gate_of(k.inputs()[i]), n.inputs()[i]);
  CHECK_EQ(k.outputs().size(), n.outputs().size());
  for (std::size_t i = 0; i < n.outputs().size(); ++i)
    CHECK_EQ(k.gate_of(k.outputs()[i]), n.outputs()[i]);

  // schedule: exactly the gates with fanins, ascending kernel index;
  // constants() holds the fanin-less non-inputs
  const auto sched = k.schedule();
  CHECK_EQ(sched.size() + k.constants().size(), n.logic_gate_count());
  KIndex prev = 0;
  for (std::size_t i = 0; i < sched.size(); ++i) {
    CHECK(k.type(sched[i]) != GateType::Input);
    CHECK(!k.fanins(sched[i]).empty());
    if (i > 0) CHECK(sched[i] > prev);
    prev = sched[i];
  }
  for (KIndex c : k.constants())
    CHECK(k.type(c) == GateType::Const0 || k.type(c) == GateType::Const1);

  // micro-op lowering agrees with the gate types
  for (KIndex ki = 0; ki < n.gate_count(); ++ki) {
    const bool inverted = k.invert_mask(ki) == ~std::uint64_t{0};
    CHECK(k.invert_mask(ki) == 0 || inverted);
    switch (k.type(ki)) {
      case GateType::And: CHECK(k.op(ki) == MicroOp::And && !inverted); break;
      case GateType::Nand: CHECK(k.op(ki) == MicroOp::And && inverted); break;
      case GateType::Or: CHECK(k.op(ki) == MicroOp::Or && !inverted); break;
      case GateType::Nor: CHECK(k.op(ki) == MicroOp::Or && inverted); break;
      case GateType::Xor: CHECK(k.op(ki) == MicroOp::Xor && !inverted); break;
      case GateType::Xnor: CHECK(k.op(ki) == MicroOp::Xor && inverted); break;
      case GateType::Not: CHECK(k.op(ki) == MicroOp::Copy && inverted); break;
      case GateType::Buf: CHECK(k.op(ki) == MicroOp::Copy && !inverted); break;
      default: break;
    }
  }
}

// The wide simulator over a group of blocks must reproduce the narrow
// simulator run block-by-block, sub-word j carrying block j.
template <unsigned W>
void check_wide_sim_matches(const Netlist& n) {
  const SimKernel k(n);
  std::vector<PatternBlock> blocks;
  for (unsigned b = 0; b < W; ++b) {
    PatternBlock blk;
    blk.width = n.input_count();
    blk.count = b + 1 == W ? 37 : 64;  // short final block
    for (std::size_t i = 0; i < blk.width; ++i)
      blk.input_words.push_back(0x9E3779B97F4A7C15ull * (i + 1) + b * 0x7F4A7C15ull);
    blocks.push_back(std::move(blk));
  }

  KernelSim narrow(k);
  WideSimT<W> wide(k);
  wide.simulate(blocks);
  for (unsigned b = 0; b < W; ++b) {
    narrow.simulate(blocks[b]);
    for (KIndex g = 0; g < k.gate_count(); ++g) {
      const auto wv = wide.value_at(g);
      if constexpr (W == 1) {
        CHECK_EQ(narrow.value_at(g), wv);
      } else {
        CHECK_EQ(narrow.value_at(g), wv.w[b]);
      }
    }
  }
}

}  // namespace

int main() {
  check_kernel_matches(make_c17());
  check_kernel_matches(make_iscas85("c432s"));
  check_kernel_matches(make_iscas85("c880s"));

  check_wide_sim_matches<kMaxWordWidth>(make_c17());
  check_wide_sim_matches<kMaxWordWidth>(make_iscas85("c432s"));

  // unfrozen netlist is rejected
  Netlist n("raw");
  const GateId a = n.add_input("a");
  n.add_output(n.add_gate(GateType::Not, {a}, "g"));
  CHECK_THROWS(SimKernel{n});

  return bist_test::summary();
}
