// Parallel FFR-aware fault-sim engine checks.
//
// 1. FFR decomposition: every gate reaches exactly one stem by following
//    unique fanouts; stems are exactly the gates with fanout != 1 or PO
//    status; the per-stem member lists partition the netlist.
// 2. Differential: FaultSimResult detection results (first_detected,
//    coverage curves, detected_weight) are bit-identical across threads in
//    {1, 2, 8} and word widths in {1, 4} vs. the legacy per-fault seed-path
//    engine, on the full ISCAS85 surrogate family; faulty_gate_evals is
//    thread-count-invariant at fixed width.

#include <string>
#include <vector>

#include "circuits/iscas85_family.hpp"
#include "fault/fault_sim.hpp"
#include "sim/kernel.hpp"
#include "test_util.hpp"
#include "tpg/lfsr.hpp"

using namespace bist;

namespace {

void check_ffr_decomposition(const SimKernel& k) {
  const std::size_t cnt = k.gate_count();
  const std::uint32_t* fo_off = k.fanout_offset_data();

  std::vector<std::uint32_t> seen(cnt, 0);
  std::size_t member_total = 0;
  for (std::uint32_t s = 0; s < k.stem_count(); ++s) {
    const KIndex stem = k.stems()[s];
    CHECK(k.is_stem(stem));
    CHECK_EQ(k.stem_of(stem), stem);
    CHECK_EQ(k.stem_ordinal(stem), s);
    for (KIndex m : k.ffr_members(s)) {
      CHECK_EQ(k.stem_of(m), stem);
      ++seen[m];
      ++member_total;
    }
  }
  // Membership partitions the gate set: every gate in exactly one region.
  for (std::uint32_t c : seen) CHECK_EQ(c, 1u);
  CHECK_EQ(member_total, cnt);

  for (KIndex g = 0; g < cnt; ++g) {
    const std::uint32_t nfo = fo_off[g + 1] - fo_off[g];
    const bool stem_gate = nfo != 1 || k.is_output(g);
    CHECK_EQ(k.is_stem(g), stem_gate);
    // Walk unique fanouts until a stem; must land on the recorded root.
    KIndex cur = g;
    unsigned steps = 0;
    while (!k.is_stem(cur) && steps <= k.max_level() + 1) {
      cur = k.fanout_data()[fo_off[cur]];
      ++steps;
    }
    CHECK(k.is_stem(cur));
    CHECK_EQ(k.stem_of(g), cur);
  }
}

bool same_detection(const FaultSimResult& a, const FaultSimResult& b) {
  bool ok = true;
  ok = ok && a.total_faults == b.total_faults;
  ok = ok && a.sim_faults == b.sim_faults;
  ok = ok && a.detected == b.detected;
  ok = ok && a.detected_weight == b.detected_weight;
  ok = ok && a.total_weight == b.total_weight;
  ok = ok && a.patterns == b.patterns;
  ok = ok && a.first_detected == b.first_detected;
  ok = ok && a.coverage == b.coverage;
  ok = ok && a.coverage_weighted == b.coverage_weighted;
  return ok;
}

}  // namespace

int main() {
  for (const std::string& name : iscas85_names()) {
    const Netlist n = make_iscas85(name);
    const SimKernel k(n);

    check_ffr_decomposition(k);

    FaultSimulator fsim(k);
    Lfsr lfsr = Lfsr::maximal(32, 0xACE1);
    const auto blocks = lfsr.blocks(n.input_count(), 512);

    FaultSimOptions ref_opt;
    ref_opt.ffr = false;  // legacy per-fault seed path
    const FaultSimResult ref = fsim.run(blocks, ref_opt);
    CHECK_EQ(ref.threads, 1u);
    CHECK_EQ(ref.word_width, 1u);
    CHECK(ref.detected > 0u);

    std::uint64_t evals_by_width[2] = {0, 0};
    for (const unsigned width : {1u, 4u}) {
      for (const unsigned threads : {1u, 2u, 8u}) {
        FaultSimOptions opt;
        opt.threads = threads;
        opt.word_width = width;
        const FaultSimResult r = fsim.run(blocks, opt);
        CHECK(same_detection(ref, r));
        CHECK_EQ(r.threads, threads);
        CHECK_EQ(r.word_width, BIST_WIDE_WORDS ? width : 1u);
        // Work measure is a deterministic function of (engine, width):
        // partitioning across workers must not change it.
        const unsigned wslot = width == 1 ? 0 : 1;
        if (evals_by_width[wslot] == 0)
          evals_by_width[wslot] = r.faulty_gate_evals;
        CHECK_EQ(r.faulty_gate_evals, evals_by_width[wslot]);
      }
    }

    // drop_detected=false must agree with the dropping run too.
    FaultSimOptions keep;
    keep.drop_detected = false;
    keep.threads = 2;
    const FaultSimResult rk = fsim.run(blocks, keep);
    CHECK(same_detection(ref, rk));
  }

  // The FFR engine must also agree with legacy on an explicit sub-list with
  // weights (the tail-fault path run_mixed_tpg exercises).
  {
    const Netlist n = make_iscas85("c432s");
    const SimKernel k(n);
    FaultSimulator full(k);
    std::vector<Fault> sub(full.faults().begin(),
                           full.faults().begin() + full.faults().size() / 3);
    std::vector<std::uint32_t> w(full.weights().begin(),
                                 full.weights().begin() + sub.size());
    FaultSimulator part(k, sub, 2 * sub.size(), w);
    Lfsr lfsr = Lfsr::maximal(32, 0xBEEF);
    const auto blocks = lfsr.blocks(n.input_count(), 256);
    FaultSimOptions ref_opt;
    ref_opt.ffr = false;
    const FaultSimResult ref = part.run(blocks, ref_opt);
    FaultSimOptions opt;
    opt.threads = 8;
    opt.word_width = 4;
    CHECK(same_detection(ref, part.run(blocks, opt)));
  }

  return bist_test::summary();
}
