// Differential check of the incremental mixed-scheme sweep engine: every
// sweep point must be bit-identical to an independent run_mixed_tpg at that
// length — tail size, PODEM verdicts and counters, the emitted top-off
// pattern sets before and after compaction, both coverage conventions, and
// the derived LFSR-phase prefix (first_detected + coverage-curve doubles) —
// at every PODEM thread count in {1, 2, 8}, on the full ISCAS85 surrogate
// family.  Also checks the prefix/tail helpers directly and the parallel
// PODEM path of run_mixed_tpg itself against its serial reduction.

#include <algorithm>
#include <string>
#include <vector>

#include "circuits/iscas85_family.hpp"
#include "fault/fault_sim.hpp"
#include "sim/kernel.hpp"
#include "test_util.hpp"
#include "tpg/lfsr.hpp"
#include "tpg/mixed.hpp"
#include "tpg/sweep.hpp"

using namespace bist;

namespace {

// Everything except faulty_gate_evals (the sweep's derived prefixes carry
// the shared pass's work measure, documented in prefix_result).
bool same_lfsr_result(const FaultSimResult& a, const FaultSimResult& b) {
  bool ok = true;
  ok = ok && a.total_faults == b.total_faults;
  ok = ok && a.sim_faults == b.sim_faults;
  ok = ok && a.detected == b.detected;
  ok = ok && a.detected_weight == b.detected_weight;
  ok = ok && a.total_weight == b.total_weight;
  ok = ok && a.patterns == b.patterns;
  ok = ok && a.threads == b.threads;
  ok = ok && a.word_width == b.word_width;
  ok = ok && a.first_detected == b.first_detected;
  ok = ok && a.coverage == b.coverage;
  ok = ok && a.coverage_weighted == b.coverage_weighted;
  return ok;
}

bool same_point(const MixedSchemeResult& a, const MixedSchemeResult& b) {
  bool ok = true;
  ok = ok && a.lfsr_patterns == b.lfsr_patterns;
  ok = ok && a.tail_faults == b.tail_faults;
  ok = ok && a.podem_detected == b.podem_detected;
  ok = ok && a.redundant == b.redundant;
  ok = ok && a.aborted == b.aborted;
  ok = ok && a.podem_backtracks == b.podem_backtracks;
  ok = ok && a.podem_decisions == b.podem_decisions;
  ok = ok && a.topoff_before_compaction == b.topoff_before_compaction;
  ok = ok && a.topoff_patterns == b.topoff_patterns;
  ok = ok && a.topoff == b.topoff;  // exact emitted pattern bits
  ok = ok && a.redundant_faults == b.redundant_faults;
  ok = ok && a.aborted_faults == b.aborted_faults;
  ok = ok && a.lfsr_coverage == b.lfsr_coverage;
  ok = ok && a.lfsr_coverage_weighted == b.lfsr_coverage_weighted;
  ok = ok && a.final_coverage == b.final_coverage;
  ok = ok && a.final_coverage_weighted == b.final_coverage_weighted;
  ok = ok && a.all_verified == b.all_verified;
  ok = ok && same_lfsr_result(a.lfsr_result, b.lfsr_result);
  return ok;
}

}  // namespace

int main() {
  for (const std::string& name : iscas85_names()) {
    const Netlist n = make_iscas85(name);
    const SimKernel k(n);
    FaultSimulator fsim(k);

    // Unsorted with a duplicate: the engine must hand results back in caller
    // order regardless of its internal descending evaluation.  The deep
    // 7-point sweep down to a 64-pattern phase (large tails, so the naive
    // reference loop is expensive) runs on two representative circuits; the
    // rest of the family gets 3 moderate lengths to keep the runtime sane.
    const bool deep = name == "c17" || name == "c432s" || name == "c880s";
    const std::vector<std::size_t> lengths =
        deep ? std::vector<std::size_t>{256, 64, 512, 128, 320, 448, 64}
             : std::vector<std::size_t>{384, 256, 512};
    const std::size_t min_pos = 1;  // the min length sits at index 1 in both

    MixedTpgOptions opt;
    // Small abort budget: the surrogate tails are mostly hard reconvergent
    // faults that burn the whole limit, so the naive reference loop's cost
    // scales with it; 20 keeps detected/redundant/aborted all represented.
    opt.podem.backtrack_limit = 20;
    opt.fsim.threads = 4;  // fsim engine knobs never change detection results

    // Prefix/tail helpers against an independent shorter run.
    {
      Lfsr lfsr = Lfsr::maximal(opt.lfsr_degree, opt.lfsr_seed);
      const auto blocks = lfsr.blocks(n.input_count(), 512);
      const FaultSimResult full = fsim.run(blocks, opt.fsim);
      const FaultSimResult sub =
          fsim.run(std::span<const PatternBlock>(blocks).first(256 / 64),
                   opt.fsim);
      const FaultSimResult pre = fsim.prefix_result(full, 256);
      CHECK(same_lfsr_result(pre, sub));
      CHECK_EQ(pre.detected, full.detected_at(256));
      const auto tail = full.tail_at(256);
      CHECK_EQ(tail.size(), full.sim_faults - pre.detected);
      for (const std::uint32_t idx : tail) {
        const std::int64_t fd = full.first_detected[idx];
        CHECK(fd < 0 || fd >= 256);
      }
      CHECK_EQ(full.tail_at(full.patterns).size(),
               full.sim_faults - full.detected);
    }

    // Independent per-length references (serial PODEM reduction); duplicate
    // lengths reuse the first computation — run_mixed_tpg is deterministic.
    std::vector<MixedSchemeResult> ref;
    for (std::size_t p = 0; p < lengths.size(); ++p) {
      const auto prev = std::find(lengths.begin(), lengths.begin() + p, lengths[p]);
      if (prev != lengths.begin() + p) {
        ref.push_back(ref[prev - lengths.begin()]);
        continue;
      }
      MixedTpgOptions o = opt;
      o.lfsr_patterns = lengths[p];
      o.podem_threads = 1;
      ref.push_back(run_mixed_tpg(k, fsim, o));
    }

    for (const unsigned threads : {1u, 2u, 8u}) {
      MixedTpgOptions o = opt;
      o.podem_threads = threads;
      const MixedSweepResult sw = run_mixed_sweep(k, fsim, lengths, o);
      CHECK_EQ(sw.points.size(), lengths.size());
      CHECK_EQ(sw.lengths.size(), lengths.size());
      for (std::size_t p = 0; p < lengths.size(); ++p) {
        CHECK_EQ(sw.lengths[p], lengths[p]);
        CHECK(same_point(sw.points[p], ref[p]));
      }
      // Each distinct fault is generated at most once across the sweep: the
      // calls are exactly the largest tail (the one at the min length), and
      // calls + hits account for every distinct point's tail walk.
      CHECK_EQ(sw.stats.podem_calls, sw.points[min_pos].tail_faults);
      std::size_t distinct_tails = 0;
      for (std::size_t p = 0; p < lengths.size(); ++p)
        if (p == 0 ||
            std::find(lengths.begin(), lengths.begin() + p, lengths[p]) ==
                lengths.begin() + p)
          distinct_tails += sw.points[p].tail_faults;
      CHECK_EQ(sw.stats.podem_calls + sw.stats.podem_cache_hits,
               distinct_tails);
      CHECK_EQ(sw.stats.podem_threads, threads);
    }
  }

  // run_mixed_tpg's own parallel PODEM path must match its serial reduction
  // (one representative circuit keeps the runtime sane; the sweep loop above
  // already covers the batch engine at every thread count).
  {
    const Netlist n = make_iscas85("c432s");
    const SimKernel k(n);
    FaultSimulator fsim(k);
    MixedTpgOptions o;
    o.lfsr_patterns = 256;
    o.podem.backtrack_limit = 50;
    o.podem_threads = 1;
    const MixedSchemeResult ref = run_mixed_tpg(k, fsim, o);
    for (const unsigned threads : {2u, 8u}) {
      o.podem_threads = threads;
      CHECK(same_point(run_mixed_tpg(k, fsim, o), ref));
    }
  }

  return bist_test::summary();
}
