// Unit tests of the test-data compression layer (bist/compress): the
// reseeding solver's round-trip guarantee (every care bit of a cube is
// reproduced by the seed expansion), its fallback-by-cost rule, the
// MISR fold/step/signature helpers, and the empirical aliasing audit on a
// real circuit.

#include <cstdint>
#include <span>
#include <vector>

#include "bist/compress.hpp"
#include "circuits/iscas85_family.hpp"
#include "fault/fault_sim.hpp"
#include "sim/kernel.hpp"
#include "test_util.hpp"
#include "tpg/lfsr.hpp"
#include "util/rng.hpp"

using namespace bist;

namespace {

// Deterministic free-bit source that counts its draws.
struct CountedBits {
  Rng rng;
  std::size_t drawn = 0;
  explicit CountedBits(std::uint64_t seed) : rng(seed) {}
  bool next() {
    ++drawn;
    return rng.next_bool();
  }
};

Ternary care(bool v) { return v ? Ternary::V1 : Ternary::V0; }

// --- compress_cube --------------------------------------------------------

void test_roundtrip_random_cubes() {
  // Random cubes over several degrees and widths: whatever route the solver
  // takes (seeds or fallback), the emitted pattern must honor every care
  // bit, seeded rows must re-expand to exactly the stored pattern, and seed
  // offsets must be degree-aligned and strictly ascending.
  Rng rng(0xBEEF);
  for (const unsigned D : {8u, 16u, 24u, 32u}) {
    const std::uint64_t taps = Lfsr::primitive_taps(D);
    for (int trial = 0; trial < 40; ++trial) {
      const std::size_t w = 1 + rng.next_below(4 * D);
      const double density = 0.1 + 0.8 * rng.next_double();
      std::vector<Ternary> cube(w, Ternary::VX);
      for (std::size_t i = 0; i < w; ++i)
        if (rng.next_bool(density)) cube[i] = care(rng.next_bool());

      CountedBits bits(trial);
      const RowCompression rc =
          compress_cube(cube, D, taps, [&bits] { return bits.next(); });

      CHECK_EQ(rc.pattern.size(), w);
      for (std::size_t i = 0; i < w; ++i)
        if (cube[i] != Ternary::VX)
          CHECK_EQ(rc.pattern.get(i), cube[i] == Ternary::V1);

      if (w <= D) CHECK(rc.fallback);  // a seed can never beat the row
      if (rc.fallback) {
        CHECK(rc.seeds.empty());
        // One draw per X bit, cube order.
        std::size_t xs = 0;
        for (const Ternary t : cube) xs += t == Ternary::VX;
        CHECK_EQ(bits.drawn, xs);
      } else {
        CHECK(!rc.seeds.empty());
        CHECK(rc.seeds.size() * D < w);  // strictly beats the decoded row
        std::uint32_t prev_off = 0;
        for (std::size_t si = 0; si < rc.seeds.size(); ++si) {
          CHECK_EQ(rc.seeds[si].offset % D, 0u);
          if (si) CHECK(rc.seeds[si].offset > prev_off);
          prev_off = rc.seeds[si].offset;
        }
        CHECK(expand_row(rc.seeds, D, taps, w) == rc.pattern);
        CHECK_EQ(bits.drawn, rc.seeds.size() * D);  // D free vars per seed
      }
    }
  }
}

void test_single_seed_sparse_cube() {
  // A sparse cube much wider than the degree compresses into one seed.
  const unsigned D = 16;
  const std::uint64_t taps = Lfsr::primitive_taps(D);
  std::vector<Ternary> cube(6 * D, Ternary::VX);
  cube[3] = Ternary::V1;
  cube[40] = Ternary::V0;
  cube[77] = Ternary::V1;
  CountedBits bits(1);
  const RowCompression rc =
      compress_cube(cube, D, taps, [&bits] { return bits.next(); });
  CHECK(!rc.fallback);
  CHECK_EQ(rc.seeds.size(), std::size_t{1});
  CHECK_EQ(rc.seeds[0].offset, 0u);
  CHECK(rc.pattern.get(3));
  CHECK(!rc.pattern.get(40));
  CHECK(rc.pattern.get(77));
}

void test_fully_specified_falls_back() {
  // A fully specified random cube of width 2D forces a reseed roughly every
  // D bits, so the seed schedule can never undercut the decoded row and the
  // solver must fall back (this is the c6288s regime: w = 2D, cubes dense).
  const unsigned D = 16;
  const std::uint64_t taps = Lfsr::primitive_taps(D);
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Ternary> cube(2 * D);
    for (auto& t : cube) t = care(rng.next_bool());
    CountedBits bits(trial);
    const RowCompression rc =
        compress_cube(cube, D, taps, [&bits] { return bits.next(); });
    CHECK(rc.fallback);
    for (std::size_t i = 0; i < cube.size(); ++i)
      CHECK_EQ(rc.pattern.get(i), cube[i] == Ternary::V1);
  }
}

// --- MISR helpers ---------------------------------------------------------

void test_misr_spec_and_fold() {
  CHECK_EQ(misr_degree_for(2), 16u);    // floor
  CHECK_EQ(misr_degree_for(20), 20u);   // pass-through
  CHECK_EQ(misr_degree_for(140), 24u);  // cap
  const MisrSpec m = misr_spec_for(40);
  CHECK_EQ(m.degree, 24u);
  CHECK(m.enabled());
  CHECK(m.fold.empty());
  CHECK_EQ(m.cls(0), 0u);
  CHECK_EQ(m.cls(25), 1u);  // natural o mod K
  const std::vector<std::uint16_t> map = fold_map(m, 40);
  CHECK_EQ(map.size(), std::size_t{40});
  for (std::size_t o = 0; o < map.size(); ++o) CHECK_EQ(map[o], o % 24);

  // An explicit fold overrides the modulo rule.
  MisrSpec f = m;
  f.fold.assign(40, 0);
  f.fold[7] = 13;
  CHECK_EQ(f.cls(7), 13u);
  CHECK_EQ(f.cls(8), 0u);

  BitVec outs(40);
  outs.set(7, true);
  outs.set(8, true);
  CHECK_EQ(misr_fold(f, outs), (std::uint64_t{1} << 13) | 1u);
  // Natural fold: outputs 0 and 24 collide in stage 0 — the structural
  // cancellation choose_misr_fold exists to break.
  BitVec pair(40);
  pair.set(0, true);
  pair.set(24, true);
  CHECK_EQ(misr_fold(m, pair), std::uint64_t{0});
}

void test_misr_step_linearity() {
  // misr_step(s, i) = raw_step(s) ^ i implies signatures are linear in the
  // injection stream: step(a^b, i^j) == step(a,i) ^ step(b,j) ^ step(0,0).
  const MisrSpec m = misr_spec_for(16);
  Rng rng(5);
  for (int t = 0; t < 100; ++t) {
    const std::uint64_t mask = (std::uint64_t{1} << m.degree) - 1;
    const std::uint64_t a = rng.next_u64() & mask, b = rng.next_u64() & mask;
    const std::uint64_t i = rng.next_u64() & mask, j = rng.next_u64() & mask;
    CHECK_EQ(misr_step(m, a ^ b, i ^ j),
             misr_step(m, a, i) ^ misr_step(m, b, j) ^ misr_step(m, 0, 0));
  }
}

void test_signature_chaining_and_audit() {
  // Golden-signature chaining (two halves == one run) plus the empirical
  // aliasing audit on a real CUT: every fault the stream detects must
  // perturb the signature (zero escapes on c880s' audited fold).
  const Netlist cut = make_iscas85("c880s");
  const SimKernel k(cut);
  const MisrSpec m = misr_spec_for(cut.output_count());

  Lfsr lfsr = Lfsr::maximal(24, 1);
  const std::size_t n = 192;
  const std::vector<PatternBlock> blocks = lfsr.blocks(cut.input_count(), n);
  const std::uint64_t whole = misr_signature(k, blocks, m, 0);
  const std::uint64_t half1 =
      misr_signature(k, std::span(blocks).first(2), m, 0);
  const std::uint64_t half2 =
      misr_signature(k, std::span(blocks).subspan(2), m, half1);
  CHECK_EQ(half2, whole);

  FaultSimulator fsim(k);
  const FaultSimResult fr = fsim.run(blocks);
  CHECK(fr.detected > 0);
  const MisrSpec chosen =
      choose_misr_fold(fsim, k, blocks, n, fr.first_detected, m);
  const AliasingReport rep =
      misr_aliasing_check(fsim, k, blocks, n, chosen, fr.first_detected);
  CHECK_EQ(rep.detected_checked, fr.detected);
  CHECK_EQ(rep.escapes, std::size_t{0});
  CHECK(rep.bound <= 1.0 / 65536.0);
}

void test_expand_row_reseed_overwrite() {
  // A mid-stream reseed overwrites the register: bits after the event come
  // from the new seed's expansion, and the first `degree` of them spell the
  // seed out MSB-first (the identity window).
  const unsigned D = 8;
  const std::uint64_t taps = Lfsr::primitive_taps(D);
  std::vector<SeedEvent> ev(2);
  ev[0].offset = 0;
  ev[0].seed = 0xA5;
  ev[1].offset = 16;
  ev[1].seed = 0x3C;
  const BitVec p = expand_row(ev, D, taps, 32);
  for (unsigned t = 0; t < D; ++t) {
    CHECK_EQ(p.get(t), bool((0xA5 >> (D - 1 - t)) & 1));
    CHECK_EQ(p.get(16 + t), bool((0x3C >> (D - 1 - t)) & 1));
  }
}

}  // namespace

int main() {
  test_roundtrip_random_cubes();
  test_single_seed_sparse_cube();
  test_fully_specified_falls_back();
  test_misr_spec_and_fold();
  test_misr_step_linearity();
  test_signature_chaining_and_audit();
  test_expand_row_reseed_overwrite();
  return bist_test::summary();
}
