#include <set>
#include <stdexcept>

#include "test_util.hpp"
#include "tpg/lfsr.hpp"

using namespace bist;

namespace {

// Count steps until the state first repeats the seed (sequence period).
std::size_t state_period(Lfsr l, std::size_t limit) {
  const std::uint64_t start = l.state();
  for (std::size_t i = 1; i <= limit; ++i) {
    l.step();
    if (l.state() == start) return i;
  }
  return 0;
}

}  // namespace

int main() {
  // Tap correctness: degree-4 x^4+x^3+1 from seed 1 walks the known
  // maximal-length state sequence (hand-computed: left shift, MSB out,
  // feedback = parity(state & 0b1100)).
  {
    Lfsr l(4, 0xC, 1);
    const std::uint64_t expect[] = {2, 4, 9, 3, 6, 13, 10, 5, 11, 7, 15, 14, 12, 8, 1};
    for (std::uint64_t e : expect) {
      l.step();
      CHECK_EQ(l.state(), e);
    }
  }

  // Output bit is the pre-shift MSB.
  {
    Lfsr l(4, 0xC, 0b1000);
    CHECK(l.step());
    Lfsr l2(4, 0xC, 0b0100);
    CHECK(!l2.step());
  }

  // Maximal-length polynomials hit period 2^n - 1 and visit every nonzero
  // state exactly once.
  for (unsigned degree : {4u, 8u, 16u}) {
    Lfsr l = Lfsr::maximal(degree);
    const std::size_t expect = (std::size_t{1} << degree) - 1;
    CHECK_EQ(state_period(l, expect + 8), expect);
    std::set<std::uint64_t> seen;
    Lfsr l2 = Lfsr::maximal(degree, 1);
    for (std::size_t i = 0; i < expect; ++i) {
      seen.insert(l2.state());
      l2.step();
    }
    CHECK_EQ(seen.size(), expect);
  }

  // A non-primitive polynomial must NOT reach full period (x^4+x^2+1 splits
  // the state space into short cycles).
  {
    Lfsr l(4, 0b1010, 1);
    CHECK(state_period(l, 64) < 15u);
  }

  // next_block packs the same stream bits as repeated step().
  {
    Lfsr a = Lfsr::maximal(16, 0xACE1);
    Lfsr b = Lfsr::maximal(16, 0xACE1);
    const std::size_t width = 9;
    PatternBlock blk = a.next_block(width, 64);
    CHECK_EQ(blk.width, width);
    CHECK_EQ(blk.count, 64u);
    for (std::size_t lane = 0; lane < 64; ++lane)
      for (std::size_t i = 0; i < width; ++i)
        CHECK_EQ(bool((blk.input_words[i] >> lane) & 1), b.step());
    // and next_pattern continues the same stream
    BitVec p = a.next_pattern(width);
    for (std::size_t i = 0; i < width; ++i) CHECK_EQ(p.get(i), b.step());
  }

  // blocks() covers `total` patterns with a ragged tail
  {
    Lfsr l = Lfsr::maximal(24);
    auto blocks = l.blocks(5, 130);
    CHECK_EQ(blocks.size(), 3u);
    CHECK_EQ(blocks[2].count, 2u);
  }

  // invalid configurations
  CHECK_THROWS(Lfsr(1, 1, 1));
  CHECK_THROWS(Lfsr(4, 0, 1));       // no taps
  CHECK_THROWS(Lfsr(4, 0xC, 0));     // all-zero seed
  CHECK_THROWS(Lfsr(4, 0xC, 0x10));  // seed outside the register (masks to 0)
  CHECK_THROWS(Lfsr::primitive_taps(33));

  return bist_test::summary();
}
