// Robustness suite: exception-safe WorkerPool regions, hardened .bench
// parsing, Deadline/CancelToken semantics, anytime degradation of the sweep
// (deadline-cut runs stay bit-identical for the work they completed and
// always yield a schedulable, verifiable plan), and per-stage fault
// containment in the pipeline job layer.

#include <cstring>
#include <string>
#include <vector>

#include "bist/schedule.hpp"
#include "bist/synth.hpp"
#include "bist/verify.hpp"
#include "circuits/iscas85_family.hpp"
#include "fault/fault_sim.hpp"
#include "fault/podem.hpp"
#include "netlist/bench_io.hpp"
#include "pipeline/job.hpp"
#include "sim/kernel.hpp"
#include "test_util.hpp"
#include "tpg/lfsr.hpp"
#include "tpg/sweep.hpp"
#include "util/deadline.hpp"
#include "util/parallel.hpp"

using namespace bist;

// ---------------------------------------------------------------------------
// Deadline / CancelToken units
// ---------------------------------------------------------------------------

static void test_deadline_units() {
  Deadline none;
  CHECK(!none.should_stop());
  CHECK(none.stop_code() == StageCode::Ok);

  CHECK(Deadline::immediate().should_stop());
  CHECK(Deadline::immediate().stop_code() == StageCode::DeadlineExceeded);
  CHECK(!Deadline::after(1e9).should_stop());

  // after_checks(n): the first n polls pass, the (n+1)-th and every later
  // one fire — and copies share the budget.
  Deadline d = Deadline::after_checks(3);
  Deadline copy = d;
  CHECK(!d.expired());
  CHECK(!copy.expired());
  CHECK(!d.expired());
  CHECK(copy.expired());  // 4th poll overall
  CHECK(d.expired());     // sticky
  CHECK(d.stop_code() == StageCode::DeadlineExceeded);

  // Cancellation is observed and wins over an expired deadline.
  CancelToken tok;
  Deadline both = Deadline::immediate();
  both.observe(&tok);
  CHECK(both.stop_code() == StageCode::DeadlineExceeded);
  tok.cancel();
  CHECK(both.should_stop());
  CHECK(both.stop_code() == StageCode::Cancelled);
  CHECK(both.stop_status("here").code == StageCode::Cancelled);
  tok.reset();
  CHECK(Deadline().observe(&tok).stop_code() == StageCode::Ok);
}

// ---------------------------------------------------------------------------
// WorkerPool exception safety
// ---------------------------------------------------------------------------

static void test_worker_pool_exceptions() {
  WorkerPool pool(4);
  CHECK_EQ(pool.workers(), 4u);

  // A throwing worker must not wedge or kill the region: the exception is
  // rethrown on the caller and the other workers complete.
  std::atomic<int> completed{0};
  bool threw = false;
  try {
    pool.run([&](unsigned wid) {
      if (wid == 2) throw std::runtime_error("boom from worker 2");
      completed.fetch_add(1);
    });
  } catch (const std::runtime_error& e) {
    threw = true;
    CHECK(std::strcmp(e.what(), "boom from worker 2") == 0);
  }
  CHECK(threw);
  CHECK_EQ(completed.load(), 3);

  // The pool is reusable after a throwing region — this is the regression
  // test for the old "fn must not throw" contract.
  std::atomic<int> sum{0};
  pool.run([&](unsigned wid) { sum.fetch_add(int(wid) + 1); });
  CHECK_EQ(sum.load(), 1 + 2 + 3 + 4);

  // parallel_for: a throwing chunk surfaces on the caller, the remaining
  // range is drained by the other workers, and the pool stays usable.
  std::vector<char> seen(64, 0);
  threw = false;
  try {
    parallel_for(pool, seen.size(), 1,
                 [&](unsigned, std::size_t b, std::size_t e) {
                   for (std::size_t i = b; i < e; ++i) {
                     if (i == 17) throw std::runtime_error("chunk 17");
                     seen[i] = 1;
                   }
                 });
  } catch (const std::exception&) {
    threw = true;
  }
  CHECK(threw);
  std::size_t done = 0;
  for (const char c : seen) done += c;
  CHECK(done >= seen.size() - 2);  // only the throwing index (17) may be lost

  std::atomic<std::size_t> count{0};
  parallel_for(pool, 1000, 7,
               [&](unsigned, std::size_t b, std::size_t e) {
                 count.fetch_add(e - b);
               });
  CHECK_EQ(count.load(), 1000u);

  // Single-worker pool: run() is a plain call; exceptions propagate too.
  WorkerPool solo(1);
  bool solo_threw = false;
  try {
    solo.run([](unsigned) { throw std::logic_error("solo"); });
  } catch (const std::logic_error&) {
    solo_threw = true;
  }
  CHECK(solo_threw);
  int calls = 0;
  solo.run([&](unsigned) { ++calls; });
  CHECK_EQ(calls, 1);
}

// ---------------------------------------------------------------------------
// read_bench hardening
// ---------------------------------------------------------------------------

static bool throws_with_line(const std::string& text, const BenchLimits& lim,
                             const char* needle) {
  try {
    (void)read_bench(text, "t", lim);
  } catch (const std::exception& e) {
    const std::string msg = e.what();
    return msg.rfind(".bench line", 0) == 0 &&
           msg.find(needle) != std::string::npos;
  }
  return false;
}

static void test_bench_hardening() {
  // Well-formed input round-trips untouched under the default limits.
  const Netlist c17 = make_iscas85("c17");
  const std::string good = write_bench(c17);
  const Netlist again = read_bench(good, "c17");
  CHECK_EQ(again.input_count(), c17.input_count());
  CHECK_EQ(again.gate_count(), c17.gate_count());

  BenchLimits small;
  small.max_name_len = 8;
  small.max_fanins = 4;
  small.max_gates = 6;

  const std::string pre = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n";

  // Malformed structure (line-tagged).
  CHECK(throws_with_line(pre + "y = AND(a, b", {}, "expected GATE"));
  CHECK(throws_with_line(pre + "y = AND(a, )\n", {}, "empty fanin"));
  CHECK(throws_with_line("INPUT()\n", {}, "empty signal name"));
  CHECK(throws_with_line("FOO(a)\n", {}, "unknown directive"));
  CHECK(throws_with_line(pre + "y = FROB(a, b)\n", {}, "gate type"));
  // Redefinition and cycles surface with the line tag too.
  CHECK(throws_with_line(pre + "y = AND(a, b)\ny = OR(a, b)\n", {}, "y"));
  CHECK_THROWS(read_bench(pre + "x = AND(a, z)\nz = OR(b, x)\ny = OR(x, z)\n"));

  // Oversized identifiers, fanin lists, gate counts.
  CHECK(throws_with_line(pre + "gate_name_far_too_long = AND(a, b)\n", small,
                         "-byte limit"));
  CHECK(throws_with_line(pre + "y = AND(a, b, a, b, a)\n", small,
                         "fanin list exceeds"));
  {
    std::string big = "INPUT(a)\nOUTPUT(y)\n";
    for (int i = 0; i < 8; ++i)
      big += "g" + std::to_string(i) + " = NOT(a)\n";
    big += "y = OR(g0, g1)\n";
    CHECK(throws_with_line(big, small, "gate count exceeds"));
  }
  {
    // A pathological 10k-fanin gate is rejected by the default limits.
    std::string wide = "OUTPUT(y)\ny = AND(";
    for (int i = 0; i < 10000; ++i) {
      wide += (i ? ", x" : "x") + std::to_string(i);
    }
    wide += ")\n";
    std::string decls;
    for (int i = 0; i < 10000; ++i)
      decls += "INPUT(x" + std::to_string(i) + ")\n";
    CHECK(throws_with_line(decls + wide, {}, "fanin list exceeds"));
  }

  // Non-printable bytes are rejected before they can mangle a name.
  CHECK(throws_with_line(pre + std::string("y = AND(a, b\x01)\n"), {},
                         "non-printable"));
  CHECK(throws_with_line(std::string("INPUT(a\x80)\n"), {}, "non-printable"));
  CHECK(throws_with_line(std::string("INPUT(a)\nOUTPUT(\x00y)\n", 20), {},
                         "non-printable"));
  // Tab and CRLF remain legal (historical distributions use both).
  (void)read_bench("INPUT(a)\r\nOUTPUT(y)\r\ny\t=\tNOT(a)\r\n");
}

// ---------------------------------------------------------------------------
// Cooperative cancellation in the engines: completed work is bit-identical
// ---------------------------------------------------------------------------

static void test_fault_sim_deadline_prefix() {
  const Netlist n = make_iscas85("c432s");
  const SimKernel k(n);
  const std::size_t width = k.inputs().size();
  const std::size_t total = 2048;
  // One materialized stream reused by every run (Lfsr::blocks advances the
  // generator, so each run gets its own identical copy this way).
  const std::vector<PatternBlock> stream =
      Lfsr::maximal(16, 99).blocks(width, total);

  FaultSimulator fsim(k);
  const FaultSimResult full = fsim.run(stream, {});
  CHECK(full.status.ok());
  CHECK_EQ(full.patterns, total);

  // An immediate deadline stops before any block: zero patterns, status set.
  {
    FaultSimOptions o;
    Deadline d = Deadline::immediate();
    o.deadline = &d;
    FaultSimulator f2(k);
    const FaultSimResult r = f2.run(stream, o);
    CHECK(r.status.code == StageCode::DeadlineExceeded);
    CHECK_EQ(r.patterns, 0u);
    CHECK_EQ(r.detected, 0u);
  }

  // A mid-flight stop (poll-count trigger) returns an exact prefix of the
  // uninterrupted run: same detection indices, same curve, for the patterns
  // that actually ran.
  {
    FaultSimOptions o;
    Deadline d = Deadline::after_checks(2);
    o.deadline = &d;
    FaultSimulator f2(k);
    const FaultSimResult r = f2.run(stream, o);
    CHECK(r.status.code == StageCode::DeadlineExceeded);
    CHECK(r.patterns > 0);
    CHECK(r.patterns < total);
    const FaultSimResult want = fsim.prefix_result(full, r.patterns);
    CHECK_EQ(r.detected, want.detected);
    CHECK_EQ(r.detected_weight, want.detected_weight);
    CHECK(r.first_detected == want.first_detected);
    CHECK(r.coverage == want.coverage);
    CHECK(r.coverage_weighted == want.coverage_weighted);
  }

  // Cancellation reports Cancelled, not DeadlineExceeded.
  {
    FaultSimOptions o;
    CancelToken tok;
    tok.cancel();
    Deadline d;
    d.observe(&tok);
    o.deadline = &d;
    FaultSimulator f2(k);
    const FaultSimResult r = f2.run(stream, o);
    CHECK(r.status.code == StageCode::Cancelled);
    CHECK_EQ(r.patterns, 0u);
  }
}

static void test_podem_cancellation() {
  const Netlist n = make_iscas85("c432s");
  const SimKernel k(n);
  FaultSimulator fsim(k);
  std::vector<Fault> faults(fsim.faults().begin(),
                            fsim.faults().begin() +
                                std::min<std::size_t>(24, fsim.faults().size()));

  PodemBatch batch(k, 2);
  const std::vector<PodemResult> base = batch.generate(faults, {});

  // Expired deadline: every slot is Cancelled — no fabricated verdicts.
  {
    PodemOptions o;
    Deadline d = Deadline::immediate();
    o.deadline = &d;
    const std::vector<PodemResult> r = batch.generate(faults, o);
    CHECK_EQ(r.size(), faults.size());
    for (const PodemResult& v : r) CHECK(v.status == PodemStatus::Cancelled);
  }

  // Mid-flight stop: verdicts that finished before the trigger are
  // bit-identical to the undeadlined run; the rest are Cancelled.  Budgets
  // span "fires almost immediately" to "never fires" (the last one exceeds
  // every search's poll count by construction), so across the rounds both
  // outcomes are guaranteed to occur wherever the cut actually lands.
  std::uint64_t ample = 10 * faults.size();
  for (const PodemResult& v : base) ample += 4 * v.decisions;
  std::size_t done = 0, cancelled = 0;
  for (const std::uint64_t polls : {std::uint64_t(1), std::uint64_t(64), ample}) {
    PodemOptions o;
    Deadline d = Deadline::after_checks(polls);
    o.deadline = &d;
    Podem solo(k);  // single engine: deterministic completion order
    for (std::size_t i = 0; i < faults.size(); ++i) {
      const PodemResult v = solo.generate(faults[i], o);
      if (v.status == PodemStatus::Cancelled) {
        ++cancelled;
        continue;
      }
      ++done;
      CHECK(v.status == base[i].status);
      CHECK(v.cube == base[i].cube);
      CHECK_EQ(v.backtracks, base[i].backtracks);
      CHECK_EQ(v.decisions, base[i].decisions);
    }
  }
  CHECK(done > 0);
  CHECK(cancelled > 0);
}

// ---------------------------------------------------------------------------
// Anytime sweep: degraded plans schedule, synthesize, and verify
// ---------------------------------------------------------------------------

static bool points_identical(const MixedSchemeResult& a,
                             const MixedSchemeResult& b) {
  return a.lfsr_patterns == b.lfsr_patterns && a.tail_faults == b.tail_faults &&
         a.podem_detected == b.podem_detected && a.redundant == b.redundant &&
         a.aborted == b.aborted && a.topoff_patterns == b.topoff_patterns &&
         a.topoff == b.topoff && a.lfsr_coverage == b.lfsr_coverage &&
         a.final_coverage == b.final_coverage &&
         a.final_coverage_weighted == b.final_coverage_weighted &&
         a.all_verified == b.all_verified;
}

static void test_sweep_generous_deadline_identity() {
  const Netlist n = make_iscas85("c432s");
  const SimKernel k(n);
  const std::vector<std::size_t> lengths{512, 2048};

  MixedTpgOptions opt;
  opt.podem_threads = 2;
  const MixedSweepResult base = run_mixed_sweep(k, lengths, opt);
  CHECK(base.status.ok());

  Deadline d = Deadline::after(1e9);
  opt.deadline = &d;
  const MixedSweepResult dl = run_mixed_sweep(k, lengths, opt);
  CHECK(dl.status.ok());
  CHECK_EQ(dl.points.size(), base.points.size());
  for (std::size_t i = 0; i < base.points.size(); ++i) {
    CHECK(dl.points[i].state == PointState::Complete);
    CHECK(points_identical(dl.points[i], base.points[i]));
  }
}

static void test_sweep_midflight_degradation() {
  const Netlist n = make_iscas85("c432s");
  const SimKernel k(n);
  const std::vector<std::size_t> lengths{512, 1024, 2048};

  MixedTpgOptions opt;
  const MixedSweepResult base = run_mixed_sweep(k, lengths, opt);

  // Fire the deadline at a spread of cooperative checks.  Wherever it lands,
  // the invariants hold: Complete points are bit-identical to the baseline,
  // LfsrOnly points carry the exact LFSR prefix data, something schedulable
  // always survives, and the sweep-level status reflects the cut.
  for (const std::uint64_t polls : {0ull, 1ull, 8ull, 512ull, 100000ull}) {
    MixedTpgOptions o;
    Deadline d = Deadline::after_checks(polls);
    o.deadline = &d;
    const MixedSweepResult sw = run_mixed_sweep(k, lengths, o);
    CHECK_EQ(sw.points.size(), lengths.size());
    bool usable = false;
    bool cut = false;
    for (std::size_t i = 0; i < sw.points.size(); ++i) {
      const MixedSchemeResult& p = sw.points[i];
      if (p.state == PointState::Complete) {
        CHECK(p.status.ok());
        CHECK(points_identical(p, base.points[i]));
        usable = true;
      } else if (p.state == PointState::LfsrOnly) {
        cut = true;
        usable = true;
        CHECK(!p.status.ok());
        CHECK(p.topoff.empty());
        CHECK(p.final_coverage == p.lfsr_coverage);
        // The LFSR data is an exact prefix of the baseline's shared pass.
        if (p.lfsr_patterns == base.points[i].lfsr_patterns)
          CHECK(p.lfsr_result.patterns <= p.lfsr_patterns);
      } else {
        cut = true;
        CHECK(!p.status.ok());
      }
    }
    CHECK(usable);
    CHECK_EQ(cut, !sw.status.ok());

    // Whatever survived must schedule; a plan from a gutted sweep is marked
    // degraded and still synthesizes + verifies.
    ScheduleOptions so;
    const BistPlan plan = schedule_bist(sw, n.input_count(), so);
    if (polls == 0) {
      CHECK(plan.degraded);
      CHECK_EQ(plan.topoff_patterns, 0u);
      const BistSynthResult syn = synthesize_bist_wrapper(n, plan);
      const WrapperVerification wv = verify_wrapper(
          syn.wrapper, n, plan, sw.points[plan.point_index], {});
      CHECK(wv.ok());
    }
  }
}

static void test_zero_deadline_full_family_degraded() {
  // Satellite (c): a near-zero deadline across the WHOLE surrogate family
  // still produces, for every circuit, a degraded LFSR-only plan whose
  // synthesized wrapper passes closed-loop verification.
  std::vector<JobSpec> specs;
  for (const std::string& name : iscas85_names()) {
    JobSpec s;
    s.name = name;
    s.bench_text = write_bench(make_iscas85(name));
    s.sweep_lengths = {64, 256};
    s.sweep_deadline_s = 1e-9;
    specs.push_back(std::move(s));
  }
  const std::vector<JobReport> reps = run_job_batch(specs, 4);
  CHECK_EQ(reps.size(), specs.size());
  for (const JobReport& r : reps) {
    CHECK(r.status.code == StageCode::DeadlineExceeded);
    CHECK(r.degraded);
    CHECK(r.wrapper_ok);
    CHECK_EQ(r.plan.topoff_patterns, 0u);
    CHECK(r.plan.final_coverage == r.plan.lfsr_coverage);
    CHECK(!r.wrapper_bench.empty());
    CHECK_EQ(r.stages.size(), 5u);
    for (const StageReport& sr : r.stages)
      CHECK(sr.status.code != StageCode::Error);
  }
}

// ---------------------------------------------------------------------------
// Pipeline job layer: per-stage containment
// ---------------------------------------------------------------------------

static std::vector<JobSpec> containment_specs() {
  std::vector<JobSpec> specs;
  for (const char* name : {"c17", "c432s", "c880s"}) {
    JobSpec s;
    s.name = name;
    s.bench_text = write_bench(make_iscas85(name));
    s.sweep_lengths = {2048, 4096};
    specs.push_back(std::move(s));
  }
  return specs;
}

static bool reports_payload_equal(const JobReport& a, const JobReport& b) {
  return a.name == b.name && a.status.code == b.status.code &&
         a.degraded == b.degraded && a.wrapper_ok == b.wrapper_ok &&
         a.plan.lfsr_patterns == b.plan.lfsr_patterns &&
         a.plan.topoff_patterns == b.plan.topoff_patterns &&
         a.plan.final_coverage == b.plan.final_coverage &&
         a.wrapper_bench == b.wrapper_bench;
}

static void test_job_stage_containment() {
  const std::vector<JobSpec> specs = containment_specs();
  const std::vector<JobReport> base = run_job_batch(specs, 4);
  CHECK_EQ(base.size(), specs.size());
  for (const JobReport& r : base) {
    CHECK(r.status.ok());
    CHECK(r.wrapper_ok);
    CHECK(!r.degraded);
    CHECK_EQ(r.stages.size(), 5u);
    for (const StageReport& sr : r.stages) CHECK(sr.status.ok());
  }

  // Differential fault injection: fail exactly one stage of exactly one job
  // per round; the injected job reports Error at that stage (later stages
  // not run), and the sibling jobs are identical to the failure-free run.
  const char* stages[] = {"parse", "sweep", "schedule", "synth", "verify"};
  for (std::size_t si = 0; si < 5; ++si) {
    set_injected_failure(stages[si], "c432s");
    const std::vector<JobReport> reps = run_job_batch(specs, 4);
    clear_injected_failure();
    CHECK_EQ(reps.size(), specs.size());
    for (std::size_t j = 0; j < reps.size(); ++j) {
      if (specs[j].name != "c432s") {
        CHECK(reports_payload_equal(reps[j], base[j]));
        continue;
      }
      const JobReport& r = reps[j];
      CHECK(r.status.code == StageCode::Error);
      CHECK(!r.wrapper_ok);
      CHECK_EQ(r.stages.size(), 5u);
      for (std::size_t t = 0; t < 5; ++t) {
        if (t < si) {
          CHECK(r.stages[t].status.ok());
        } else if (t == si) {
          CHECK(r.stages[t].status.code == StageCode::Error);
          CHECK(r.stages[t].status.message.find("injected") !=
                std::string::npos);
        } else {
          CHECK(r.stages[t].status.code == StageCode::Error);
          CHECK(r.stages[t].status.message.find("not run") !=
                std::string::npos);
        }
      }
    }
  }

  // The batch machinery is reusable after every injected round and yields
  // the failure-free result again.
  const std::vector<JobReport> again = run_job_batch(specs, 4);
  for (std::size_t j = 0; j < again.size(); ++j)
    CHECK(reports_payload_equal(again[j], base[j]));
}

static void test_job_timeout_and_cancel() {
  JobSpec s;
  s.name = "c17";
  s.bench_text = write_bench(make_iscas85("c17"));
  s.sweep_lengths = {64, 128};

  // Whole-job timeout already expired: no stage runs, the report says so.
  {
    JobSpec t = s;
    t.job_timeout_s = 1e-9;
    const JobReport r = run_plan_job(t);
    CHECK(r.status.code == StageCode::DeadlineExceeded);
    CHECK(!r.wrapper_ok);
    CHECK_EQ(r.stages.size(), 5u);
    CHECK(r.stages[0].status.code == StageCode::DeadlineExceeded);
  }

  // Pre-cancelled token: reported as Cancelled, not DeadlineExceeded.
  {
    JobSpec t = s;
    CancelToken tok;
    tok.cancel();
    t.cancel = &tok;
    const JobReport r = run_plan_job(t);
    CHECK(r.status.code == StageCode::Cancelled);
  }

  // A malformed netlist is an Error in the parse stage, never a throw.
  {
    JobSpec t = s;
    t.bench_text = "INPUT(a)\nOUTPUT(y)\ny = AND(a\n";
    const JobReport r = run_plan_job(t);
    CHECK(r.status.code == StageCode::Error);
    CHECK(!r.stages.empty());
    CHECK(r.stages[0].status.code == StageCode::Error);
    CHECK(r.stages[0].status.message.find(".bench line") != std::string::npos);
  }
}

int main() {
  test_deadline_units();
  test_worker_pool_exceptions();
  test_bench_hardening();
  test_fault_sim_deadline_prefix();
  test_podem_cancellation();
  test_sweep_generous_deadline_identity();
  test_sweep_midflight_degradation();
  test_zero_deadline_full_family_degraded();
  test_job_stage_containment();
  test_job_timeout_and_cancel();
  return bist_test::summary();
}
