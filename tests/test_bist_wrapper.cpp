// End-to-end differential check of the BIST hardware generator, for every
// circuit in the ISCAS85 surrogate family:
//
//   run_mixed_sweep -> schedule_bist -> synthesize_bist_wrapper ->
//   write_bench -> read_bench -> cycle-by-cycle self-simulation
//
// must reproduce the scheduled point exactly: the applied pseudo-random
// phase is bit-identical to the Lfsr stream, the applied ROM phase equals
// the stored top-off set (checked both in sequence and as a multiset), and
// fault-simulating the CUT over the applied patterns lands on the scheduled
// point's final coverage down to the double, under both accounting
// conventions.  Also checks the synthesizer's exact area accounting against
// netlist_area and the T=0 (no ROM) degenerate wrapper.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bist/area.hpp"
#include "bist/schedule.hpp"
#include "bist/synth.hpp"
#include "bist/verify.hpp"
#include "circuits/iscas85_family.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"
#include "sim/kernel.hpp"
#include "test_util.hpp"
#include "tpg/lfsr.hpp"
#include "tpg/sweep.hpp"

using namespace bist;

namespace {

// Multiset equality of two pattern lists (the set-identity form of the
// acceptance criterion; verify_wrapper already checks the stronger
// sequence identity).
bool set_identical(std::vector<BitVec> a, std::vector<BitVec> b) {
  auto key = [](const BitVec& v) { return v.to_string(); };
  std::vector<std::string> ka, kb;
  for (const BitVec& v : a) ka.push_back(key(v));
  for (const BitVec& v : b) kb.push_back(key(v));
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  return ka == kb;
}

void check_wrapper(const Netlist& cut, const BistPlan& plan,
                   const MixedSchemeResult& point) {
  const BistSynthResult syn = synthesize_bist_wrapper(cut, plan);
  const unsigned K = plan.comp.enabled && plan.comp.misr.enabled()
                         ? plan.comp.misr.degree
                         : 0;
  CHECK(syn.wrapper.frozen());
  CHECK(syn.bist_gates > 0);
  CHECK_EQ(syn.actual.rom_bits, plan.rom_bits);
  CHECK_EQ(syn.counter_bits, counter_width(plan.test_time));
  CHECK_EQ(syn.wrapper.input_count(),
           plan.lfsr_degree + syn.counter_bits + K);
  CHECK_EQ(syn.wrapper.output_count(), cut.output_count() + plan.lfsr_degree +
                                           syn.counter_bits + K +
                                           (K > 0 ? 1 : 0));

  // The synthesizer's per-block accounting is exact: wrapper area minus the
  // CUT copy equals the emitted BIST logic (state bits are priced as
  // flip-flops on top of the combinational gates).
  const AreaModel& m = plan.area_model;
  const double bist_logic = syn.actual.total() -
                            double(syn.actual.state_bits) * m.flipflop;
  const double by_netlist =
      netlist_area(m, syn.wrapper) - netlist_area(m, cut);
  CHECK(std::abs(bist_logic - by_netlist) < 1e-6);

  // And the scheduler's closed-form estimate prices exactly that structure,
  // block by block.
  CHECK(std::abs(plan.area.lfsr - syn.actual.lfsr) < 1e-6);
  CHECK(std::abs(plan.area.rom - syn.actual.rom) < 1e-6);
  CHECK(std::abs(plan.area.seed_rom - syn.actual.seed_rom) < 1e-6);
  CHECK(std::abs(plan.area.controller - syn.actual.controller) < 1e-6);
  CHECK(std::abs(plan.area.mux - syn.actual.mux) < 1e-6);
  CHECK(std::abs(plan.area.misr - syn.actual.misr) < 1e-6);
  CHECK_EQ(plan.area.state_bits, syn.actual.state_bits);
  CHECK_EQ(plan.area.rom_bits, syn.actual.rom_bits);
  CHECK_EQ(plan.area.seed_rom_bits, syn.actual.seed_rom_bits);
  CHECK_EQ(plan.area.misr_bits, syn.actual.misr_bits);

  // The generated hardware survives its own serialization: write, re-parse,
  // and run the verification loop on the re-parsed netlist.
  const Netlist back = read_bench(write_bench(syn.wrapper), syn.wrapper.name());
  CHECK_EQ(compute_stats(back).gates, compute_stats(syn.wrapper).gates);

  const WrapperVerification v = verify_wrapper(back, cut, plan, point);
  CHECK(v.lfsr_phase_identical);
  CHECK(v.topoff_identical);
  CHECK(v.coverage_identical);
  CHECK(v.seeds_identical);
  CHECK(v.signature_identical);
  CHECK(v.ok());
  CHECK_EQ(v.cycles, plan.test_time);
  CHECK_EQ(v.achieved_coverage, point.final_coverage);
  CHECK_EQ(v.achieved_coverage_weighted, point.final_coverage_weighted);
  if (K > 0) {
    CHECK_EQ(v.misr_signature, plan.comp.golden);
    // Empirical aliasing audit: on the surrogate family no detected fault's
    // signature collides with the golden one.
    CHECK_EQ(v.aliasing.escapes, std::size_t{0});
    CHECK(v.aliasing.detected_checked > 0 || plan.final_coverage == 0.0);
    CHECK(v.aliasing.bound <= 1.0 / 65536.0);  // K >= 16
  }

  // Independent extraction: the raw simulation result splits into the two
  // phases, set-identical ROM phase included.
  const WrapperSimResult ws = simulate_wrapper(back, cut, plan);
  CHECK_EQ(ws.applied.size(), plan.test_time);
  std::vector<BitVec> rom_phase(ws.applied.begin() + plan.lfsr_patterns,
                                ws.applied.end());
  CHECK(set_identical(rom_phase, plan.topoff));

  // Without seed loads the LFSR free-runs through both phases: its final
  // state must match the software LFSR advanced test_time patterns.  With
  // reseeding the top-off phase overwrites the register (by design); the
  // applied-pattern identities above pin down everything observable.
  if (!plan.comp.enabled || plan.comp.seeds.empty()) {
    Lfsr ref(plan.lfsr_degree, plan.lfsr_taps, plan.lfsr_seed);
    for (std::size_t t = 0; t < plan.test_time; ++t)
      ref.next_pattern(cut.input_count());
    CHECK_EQ(ws.final_lfsr_state, ref.state());
  }
}

}  // namespace

int main() {
  for (const std::string& name : iscas85_names()) {
    const Netlist cut = make_iscas85(name);
    const SimKernel k(cut);

    MixedTpgOptions opt;
    opt.podem.backtrack_limit = 20;
    opt.fsim.threads = 4;  // engine knobs never change detection results
    const std::vector<std::size_t> lengths{128, 256, 512};
    const MixedSweepResult sw = run_mixed_sweep(k, lengths, opt);

    ScheduleOptions so;
    so.lfsr_degree = opt.lfsr_degree;
    so.lfsr_seed = opt.lfsr_seed;
    const BistPlan knee = schedule_bist(sw, cut.input_count(), so);
    check_wrapper(cut, knee, sw.points[knee.point_index]);

    // A second operating point with a different length exercises another
    // counter width / ROM shape (skip when the knee already chose it).
    ScheduleOptions wc = so;
    wc.objective = ScheduleObjective::WeightedCost;
    wc.time_weight = 1.0;
    wc.area_weight = 0.0;  // fastest test: the shortest total time point
    const BistPlan fast = schedule_bist(sw, cut.input_count(), wc);
    if (fast.lfsr_patterns != knee.lfsr_patterns)
      check_wrapper(cut, fast, sw.points[fast.point_index]);
  }

  // Legacy decoded-ROM wrapper (compress=false): the pre-refactor
  // architecture stays synthesizable and verified through the same loop.
  for (const std::string& name : {std::string("c432s"), std::string("c880s")}) {
    const Netlist cut = make_iscas85(name);
    const SimKernel k(cut);
    MixedTpgOptions opt;
    opt.compress = false;
    opt.podem.backtrack_limit = 20;
    const std::vector<std::size_t> lengths{128, 256};
    const MixedSweepResult sw = run_mixed_sweep(k, lengths, opt);
    ScheduleOptions so;
    so.lfsr_degree = opt.lfsr_degree;
    so.lfsr_seed = opt.lfsr_seed;
    const BistPlan plan = schedule_bist(sw, cut.input_count(), so);
    CHECK(!plan.comp.enabled);
    check_wrapper(cut, plan, sw.points[plan.point_index]);
  }

  // T=0 degenerate wrapper in both modes: c17's tail is empty at moderate
  // lengths, so the plan stores no ROM.  Compressed, that still carries a
  // MISR (golden over the pseudo-random phase alone); legacy it is LFSR +
  // counter + buffers only — and in both modes the closed-form estimate
  // matches the synthesized breakdown gate for gate (checked inside
  // check_wrapper).
  for (const bool compress : {true, false}) {
    const Netlist cut = make_iscas85("c17");
    const SimKernel k(cut);
    MixedTpgOptions opt;
    opt.compress = compress;
    const std::vector<std::size_t> lengths{256};
    const MixedSweepResult sw = run_mixed_sweep(k, lengths, opt);
    CHECK_EQ(sw.points[0].topoff_patterns, std::size_t{0});
    const BistPlan plan = schedule_bist(sw, cut.input_count());
    CHECK_EQ(plan.topoff_patterns, std::size_t{0});
    CHECK_EQ(plan.rom_bits, std::size_t{0});
    CHECK_EQ(plan.comp.enabled, compress);
    if (compress) CHECK(plan.comp.seeds.empty());
    check_wrapper(cut, plan, sw.points[plan.point_index]);
  }

  return bist_test::summary();
}
