// Differential guard for the legacy fully decoded ROM architecture: with
// compression disabled the refactored pipeline must reproduce the
// pre-refactor output BIT FOR BIT.  The goldens below were captured from the
// tree immediately before the compression layer landed (same sweep lengths,
// PODEM budget, and scheduler weights): wrapper netlist hash, applied-stream
// hash, every area term, and the scheduled operating point.  Any drift here
// means the compress=false path stopped being the old path.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bist/schedule.hpp"
#include "bist/synth.hpp"
#include "bist/verify.hpp"
#include "circuits/iscas85_family.hpp"
#include "netlist/bench_io.hpp"
#include "sim/kernel.hpp"
#include "test_util.hpp"
#include "tpg/sweep.hpp"

using namespace bist;

namespace {

bool close(double a, double b, double tol) { return std::fabs(a - b) <= tol; }

std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t h = 1469598103934665603ull) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct Golden {
  const char* name;
  std::size_t lfsr_patterns, topoff, rom_bits, state_bits;
  double total, lfsr, rom, ctrl, mux;
  std::size_t bist_gates, wrapper_gates;
  std::uint64_t bench_hash, applied_hash;
  double coverage;
};

// Captured pre-refactor (sweep lengths {1280,2560,3840,5120,7680,10240},
// podem.backtrack_limit = 100, default scheduler weights).
const Golden kGoldens[] = {
    {"c432s", 5120, 5, 180, 45, 652.0, 360.0, 62.0, 159.5, 70.5, 212, 421,
     5681608153596609670ull, 8371076470544477252ull, 0.76138828633405642},
    {"c1355s", 3840, 20, 820, 44, 1083.0, 390.0, 281.0, 310.5, 101.5, 259,
     848, 13881867714176297235ull, 17467130251638338107ull,
     0.83927560837577819},
};

void check_circuit(const Golden& g) {
  std::printf("[legacy] %s\n", g.name);
  const Netlist cut = make_iscas85(g.name);
  const SimKernel k(cut);
  const std::vector<std::size_t> lengths = {1280, 2560, 3840,
                                            5120, 7680, 10240};
  MixedTpgOptions opt;
  opt.podem.backtrack_limit = 100;
  opt.compress = false;  // the whole point: legacy path, pre-refactor output
  const MixedSweepResult sw = run_mixed_sweep(k, lengths, opt);
  ScheduleOptions so;
  so.lfsr_degree = opt.lfsr_degree;
  so.lfsr_seed = opt.lfsr_seed;
  const BistPlan plan = schedule_bist(sw, sw.width, so);

  // Scheduled point and coverage.
  CHECK_EQ(plan.lfsr_patterns, g.lfsr_patterns);
  CHECK_EQ(plan.topoff.size(), g.topoff);
  CHECK(close(plan.final_coverage, g.coverage, 1e-15));

  // Legacy mode leaves every compressed-architecture field inert.
  CHECK(!plan.comp.enabled);
  CHECK(plan.comp.seeds.empty());
  CHECK(!plan.comp.misr.enabled());
  CHECK_EQ(plan.area.seed_rom_bits, std::size_t{0});
  CHECK_EQ(plan.area.misr_bits, std::size_t{0});
  CHECK_EQ(plan.area.seed_rom, 0.0);
  CHECK_EQ(plan.area.misr, 0.0);

  // Area model, term by term.
  CHECK_EQ(plan.area.rom_bits, g.rom_bits);
  CHECK_EQ(plan.area.state_bits, g.state_bits);
  CHECK(close(plan.area.total(), g.total, 1e-9));
  CHECK(close(plan.area.lfsr, g.lfsr, 1e-9));
  CHECK(close(plan.area.rom, g.rom, 1e-9));
  CHECK(close(plan.area.controller, g.ctrl, 1e-9));
  CHECK(close(plan.area.mux, g.mux, 1e-9));

  // Synthesized wrapper: identical netlist text, identical applied stream.
  const BistSynthResult syn = synthesize_bist_wrapper(cut, plan);
  CHECK_EQ(syn.bist_gates, g.bist_gates);
  CHECK_EQ(std::size_t(syn.wrapper.gate_count()), g.wrapper_gates);
  const std::string bench = write_bench(syn.wrapper);
  CHECK_EQ(fnv1a(bench.data(), bench.size()), g.bench_hash);

  const WrapperSimResult ws = simulate_wrapper(syn.wrapper, cut, plan);
  std::uint64_t ph = 1469598103934665603ull;
  for (const BitVec& p : ws.applied)
    for (std::size_t i = 0; i < plan.width; ++i) {
      const unsigned char b = p.get(i);
      ph = fnv1a(&b, 1, ph);
    }
  CHECK_EQ(ph, g.applied_hash);

  const WrapperVerification v =
      verify_wrapper(syn.wrapper, cut, plan, sw.points[plan.point_index]);
  CHECK(v.ok());
}

}  // namespace

int main() {
  for (const Golden& g : kGoldens) check_circuit(g);
  return bist_test::summary();
}
