// NetlistBuilder: name-based construction with forward references, fresh
// names, and error detection — plus the full round trip the generator layer
// relies on: NetlistBuilder -> freeze/levelize -> write_bench -> read_bench
// -> SimKernel equivalence, on hand-built and generated circuits.

#include <string>
#include <vector>

#include "circuits/c17.hpp"
#include "circuits/generators.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/builder.hpp"
#include "netlist/stats.hpp"
#include "sim/kernel.hpp"
#include "test_util.hpp"
#include "tpg/lfsr.hpp"

using namespace bist;

namespace {

// Exhaustive (inputs <= 16) or LFSR-driven SimKernel equivalence by PI/PO
// name between two frozen netlists.
void check_sim_equivalent(const Netlist& a, const Netlist& b) {
  CHECK_EQ(a.input_count(), b.input_count());
  CHECK_EQ(a.output_count(), b.output_count());
  const SimKernel ka(a), kb(b);
  KernelSim sa(ka), sb(kb);

  Lfsr lfsr = Lfsr::maximal(24, 0xA5);
  for (int round = 0; round < 4; ++round) {
    PatternBlock blk_a = lfsr.next_block(a.input_count());
    // Map lanes onto b's input order by name.
    PatternBlock blk_b;
    blk_b.width = b.input_count();
    blk_b.count = blk_a.count;
    blk_b.input_words.assign(blk_b.width, 0);
    for (std::size_t i = 0; i < a.input_count(); ++i) {
      const GateId g = b.find(a.gate(a.inputs()[i]).name);
      CHECK(g != kNoGate);
      blk_b.input_words[b.input_index(g)] = blk_a.input_words[i];
    }
    sa.simulate(blk_a);
    sb.simulate(blk_b);
    for (std::size_t o = 0; o < a.output_count(); ++o) {
      const GateId g = b.find(a.gate(a.outputs()[o]).name);
      CHECK(g != kNoGate);
      CHECK_EQ(sa.value(a.outputs()[o]) & blk_a.lane_mask(),
               sb.value(g) & blk_a.lane_mask());
    }
  }
}

void check_roundtrip(const Netlist& n) {
  const Netlist back = read_bench(write_bench(n), n.name());
  CHECK(back.frozen());
  CHECK_EQ(compute_stats(n).gates, compute_stats(back).gates);
  check_sim_equivalent(n, back);
}

}  // namespace

int main() {
  // --- construction basics -------------------------------------------------
  {
    NetlistBuilder b("fwd");
    // Definitions in *reverse* topological order: every fanin is a forward
    // reference when define() is called.
    b.output("y");
    b.define("y", GateType::Nand, {"m1", "m2"});
    b.define("m1", GateType::Xor, {"a", "b"});
    b.define("m2", GateType::Nor, {"b", "c", "k"});
    b.constant("k", false);
    b.input("a");
    b.input("b");
    b.input("c");
    const Netlist n = b.build();
    CHECK(n.frozen());
    CHECK_EQ(n.input_count(), std::size_t{3});
    CHECK_EQ(n.output_count(), std::size_t{1});
    CHECK_EQ(n.logic_gate_count(), std::size_t{4});
    CHECK(n.find("m2") != kNoGate);
    CHECK_EQ(static_cast<int>(n.gate(n.find("k")).type),
             static_cast<int>(GateType::Const0));
    // Builder is reusable after build().
    CHECK_EQ(b.definition_count(), std::size_t{0});
    b.input("p");
    b.define("q", GateType::Not, {"p"});
    b.output("q");
    CHECK_EQ(b.build().logic_gate_count(), std::size_t{1});
  }

  // Sibling forward references are NOT cycles: when a gate's two fanins are
  // both still undefined and one feeds the other (a diamond), the DFS must
  // order them, not misreport "combinational cycle" (regression: the old
  // parser marked nodes on push instead of on expansion).
  {
    NetlistBuilder b("diamond");
    b.input("a");
    b.output("top");
    b.define("top", GateType::And, {"o1", "o2"});
    b.define("o2", GateType::Not, {"o1"});
    b.define("o1", GateType::Not, {"a"});
    const Netlist n = b.build();
    CHECK_EQ(n.logic_gate_count(), std::size_t{3});
    CHECK_EQ(n.level(n.find("top")), 3u);
  }
  {
    // Same shape through the .bench reader, plus a wider diamond where both
    // shared-node parents are unresolved when their common parent expands.
    const Netlist n = read_bench(
        "INPUT(a)\nOUTPUT(top)\n"
        "top = AND(o1, o2)\n"
        "o2 = NOT(o1)\n"
        "o1 = NOT(a)\n",
        "diamond_bench");
    CHECK_EQ(n.logic_gate_count(), std::size_t{3});
    const Netlist w = read_bench(
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
        "y = OR(p, q, r)\n"
        "p = AND(s, a)\n"
        "q = AND(s, b)\n"
        "r = XOR(p, q)\n"
        "s = NAND(a, b)\n",
        "wide_diamond");
    CHECK_EQ(w.logic_gate_count(), std::size_t{5});
    // ...while a genuine cycle through the same shapes still throws.
    CHECK_THROWS(read_bench(
        "INPUT(a)\nOUTPUT(top)\n"
        "top = AND(o1, o2)\n"
        "o2 = NOT(o1)\n"
        "o1 = NOT(o2)\n",
        "real_cycle"));
    CHECK_THROWS(read_bench("INPUT(a)\nOUTPUT(x)\nx = AND(x, a)\n", "self"));
  }

  // fresh() never collides with used or previously handed-out names.
  {
    NetlistBuilder b("fresh");
    b.input("n0");
    const std::string f1 = b.fresh("n");
    b.input(f1);
    const std::string f2 = b.fresh("n");
    CHECK(f1 != "n0");
    CHECK(f2 != f1 && f2 != "n0");
    CHECK(b.defined("n0"));
    CHECK(!b.defined(f2));
  }

  // --- error detection -----------------------------------------------------
  {
    NetlistBuilder b("dup");
    b.input("a");
    CHECK_THROWS(b.input("a"));
    CHECK_THROWS(b.define("a", GateType::Not, {"a"}));
    b.define("g", GateType::Not, {"a"});
    CHECK_THROWS(b.define("g", GateType::Not, {"a"}));
    CHECK_THROWS(b.define("narrow", GateType::And, {"a"}));       // too few
    CHECK_THROWS(b.define("wide", GateType::Buf, {"a", "g"}));    // too many
    CHECK_THROWS(b.define("c", GateType::Const1, {"a"}));
  }
  {
    NetlistBuilder b("undef");
    b.input("a");
    b.define("g", GateType::And, {"a", "nowhere"});
    b.output("g");
    CHECK_THROWS(b.build());
  }
  {
    NetlistBuilder b("cycle");
    b.input("a");
    b.define("u", GateType::And, {"a", "v"});
    b.define("v", GateType::Not, {"u"});
    b.output("v");
    CHECK_THROWS(b.build());
  }
  {
    NetlistBuilder b("noout");
    b.input("a");
    b.define("g", GateType::Not, {"a"});
    CHECK_THROWS(b.build());  // freeze() rejects netlists without outputs
  }
  {
    NetlistBuilder b("badout");
    b.input("a");
    b.output("missing");
    CHECK_THROWS(b.build());
  }

  // --- builder-built C17 equals the hand-built and the parsed one ----------
  {
    NetlistBuilder b("c17");
    for (const char* in : {"1", "2", "3", "6", "7"}) b.input(in);
    b.define("10", GateType::Nand, {"1", "3"});
    b.define("11", GateType::Nand, {"3", "6"});
    b.define("16", GateType::Nand, {"2", "11"});
    b.define("19", GateType::Nand, {"11", "7"});
    b.define("22", GateType::Nand, {"10", "16"});
    b.define("23", GateType::Nand, {"16", "19"});
    b.output("22");
    b.output("23");
    const Netlist built = b.build();
    check_sim_equivalent(built, make_c17());
    check_sim_equivalent(built, read_bench(c17_bench_text(), "c17"));
    check_roundtrip(built);
  }

  // --- round trip on generated circuits ------------------------------------
  check_roundtrip(make_ecc_circuit(16, 5));
  check_roundtrip(make_array_multiplier(4));

  // A builder-generated structure exercising every gate type and a long
  // forward-reference chain (definitions emitted leaves-last).
  {
    NetlistBuilder b("mixedtypes");
    b.output("top");
    b.define("top", GateType::Xnor, {"o1", "o2"});
    b.define("o1", GateType::Or, {"x0", "x1", "x2"});
    b.define("o2", GateType::Nor, {"x2", "neg"});
    b.define("neg", GateType::Not, {"x0"});
    b.define("x0", GateType::And, {"i0", "i1"});
    b.define("x1", GateType::Nand, {"i1", "i2", "i3"});
    b.define("x2", GateType::Xor, {"i2", "buf"});
    b.define("buf", GateType::Buf, {"i3"});
    for (int i = 0; i < 4; ++i) b.input("i" + std::to_string(i));
    const Netlist n = b.build();
    CHECK_EQ(n.max_level(), 4u);
    check_roundtrip(n);
  }

  return bist_test::summary();
}
