#pragma once
// Minimal single-binary test support: CHECK macros accumulate failures, each
// test executable's main() ends with `return bist_test::summary();` which
// ctest interprets via the exit code.

#include <cstdio>
#include <sstream>
#include <string>

namespace bist_test {

inline int failures = 0;
inline int checks = 0;

inline int summary() {
  std::printf("%d checks, %d failures\n", checks, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace bist_test

#define CHECK(cond)                                                      \
  do {                                                                   \
    ++bist_test::checks;                                                 \
    if (!(cond)) {                                                       \
      ++bist_test::failures;                                             \
      std::printf("FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond);        \
    }                                                                    \
  } while (0)

#define CHECK_EQ(a, b)                                                   \
  do {                                                                   \
    ++bist_test::checks;                                                 \
    const auto va_ = (a);                                                \
    const auto vb_ = (b);                                                \
    if (!(va_ == vb_)) {                                                 \
      ++bist_test::failures;                                             \
      std::ostringstream os_;                                            \
      os_ << "FAIL " << __FILE__ << ":" << __LINE__ << ": " << #a        \
          << " == " << #b << " (" << va_ << " vs " << vb_ << ")";        \
      std::puts(os_.str().c_str());                                      \
    }                                                                    \
  } while (0)

#define CHECK_THROWS(expr)                                               \
  do {                                                                   \
    ++bist_test::checks;                                                 \
    bool threw_ = false;                                                 \
    try {                                                                \
      (void)(expr);                                                      \
    } catch (const std::exception&) {                                    \
      threw_ = true;                                                     \
    }                                                                    \
    if (!threw_) {                                                       \
      ++bist_test::failures;                                             \
      std::printf("FAIL %s:%d: expected throw: %s\n", __FILE__,          \
                  __LINE__, #expr);                                      \
    }                                                                    \
  } while (0)
