// Area model + scheduler: closed-form pricing sanity, knee selection on a
// synthetic trade-off curve, budget handling, weighted-cost limits, and the
// acceptance-critical stability guarantee — the chosen plan is identical for
// duplicated and unsorted sweep-length lists, both on synthetic families and
// on a real run_mixed_sweep.

#include <algorithm>
#include <vector>

#include "bist/area.hpp"
#include "bist/schedule.hpp"
#include "circuits/c17.hpp"
#include "circuits/iscas85_family.hpp"
#include "sim/kernel.hpp"
#include "test_util.hpp"
#include "tpg/lfsr.hpp"
#include "tpg/sweep.hpp"

using namespace bist;

namespace {

// Synthetic sweep point: only the fields the scheduler consumes.
MixedSchemeResult fake_point(std::size_t length, std::size_t topoff,
                             std::size_t width) {
  MixedSchemeResult r;
  r.lfsr_patterns = length;
  r.topoff_patterns = topoff;
  for (std::size_t j = 0; j < topoff; ++j) {
    BitVec p(width);
    for (std::size_t i = j % 2; i < width; i += 2) p.set(i, true);
    r.topoff.push_back(p);
  }
  r.final_coverage = 0.9 + 0.0001 * double(length);
  r.final_coverage_weighted = r.final_coverage;
  return r;
}

MixedSweepResult fake_sweep(const std::vector<std::size_t>& lengths,
                            const std::vector<std::size_t>& topoffs,
                            std::size_t width) {
  MixedSweepResult sw;
  sw.width = width;
  for (std::size_t p = 0; p < lengths.size(); ++p) {
    sw.lengths.push_back(lengths[p]);
    sw.points.push_back(fake_point(lengths[p], topoffs[p], width));
  }
  return sw;
}

bool same_plan(const BistPlan& a, const BistPlan& b) {
  return a.lfsr_patterns == b.lfsr_patterns &&
         a.topoff_patterns == b.topoff_patterns &&
         a.test_time == b.test_time && a.rom_bits == b.rom_bits &&
         a.cost == b.cost && a.topoff == b.topoff &&
         a.area.area_bits() == b.area.area_bits() &&
         a.area.total() == b.area.total();
}

}  // namespace

int main() {
  // --- area model ----------------------------------------------------------
  {
    const AreaModel m;
    CHECK_EQ(gate_area(m, GateType::Input, 0), 0.0);
    CHECK_EQ(gate_area(m, GateType::Nand, 2), m.and2);
    CHECK_EQ(gate_area(m, GateType::Nand, 5), 4 * m.and2);
    CHECK_EQ(gate_area(m, GateType::Xor, 3), 2 * m.xor2);
    CHECK_EQ(gate_area(m, GateType::Not, 1), m.not1);
    // C17 = six 2-input NANDs.
    CHECK_EQ(netlist_area(m, make_c17()), 6 * m.and2);

    CHECK_EQ(counter_width(1), std::size_t{1});
    CHECK_EQ(counter_width(2), std::size_t{1});
    CHECK_EQ(counter_width(3), std::size_t{2});
    CHECK_EQ(counter_width(4), std::size_t{2});
    CHECK_EQ(counter_width(5), std::size_t{3});
    CHECK_EQ(counter_width(1024), std::size_t{10});
    CHECK_EQ(counter_width(1025), std::size_t{11});

    const std::uint64_t taps = Lfsr::primitive_taps(32);
    const auto mk = [&](std::size_t t) {
      std::vector<BitVec> topoff(t, BitVec(16, true));
      return estimate_bist_area(m, 32, taps, 16, topoff, 1024);
    };
    const BistArea a0 = mk(0), a4 = mk(4), a8 = mk(8);
    CHECK_EQ(a0.rom_bits, std::size_t{0});
    CHECK_EQ(a4.rom_bits, std::size_t{64});
    CHECK_EQ(a8.rom_bits, std::size_t{128});
    CHECK(a4.total() > a0.total());
    CHECK(a8.total() > a4.total());
    CHECK(a8.area_bits() > a4.area_bits());
    CHECK_EQ(a4.state_bits, std::size_t{32 + counter_width(1028)});
    // Pluggability: re-pricing flip-flops moves only the state-bit terms.
    AreaModel heavy_ff = m;
    heavy_ff.flipflop = 10.0;
    std::vector<BitVec> t4(4, BitVec(16, true));
    const BistArea h = estimate_bist_area(heavy_ff, 32, taps, 16, t4, 1024);
    CHECK(h.lfsr > a4.lfsr);
    CHECK_EQ(h.rom, a4.rom);
    CHECK_EQ(h.rom_bits, a4.rom_bits);
  }

  // --- knee selection on a synthetic convex curve --------------------------
  const std::vector<std::size_t> L{100, 200, 300, 400, 500};
  const std::vector<std::size_t> T{80, 30, 12, 8, 6};
  const std::size_t W = 10;
  {
    const MixedSweepResult sw = fake_sweep(L, T, W);
    const BistPlan plan = schedule_bist(sw, W);
    CHECK_EQ(plan.lfsr_patterns, std::size_t{200});  // chord-distance knee
    CHECK_EQ(plan.topoff_patterns, std::size_t{30});
    CHECK_EQ(plan.test_time, std::size_t{230});
    CHECK_EQ(plan.rom_bits, std::size_t{300});
    CHECK_EQ(plan.candidates.size(), L.size());
    CHECK(std::is_sorted(plan.candidates.begin(), plan.candidates.end(),
                         [](const SchedulePoint& a, const SchedulePoint& b) {
                           return a.length < b.length;
                         }));
    for (const SchedulePoint& c : plan.candidates)
      CHECK(c.knee_distance <= plan.knee_distance + 1e-12);

    // Budget trims the candidate set but the knee logic is unchanged.
    ScheduleOptions budget;
    budget.test_time_budget = 350;
    CHECK_EQ(schedule_bist(sw, W, budget).lfsr_patterns, std::size_t{200});
    // Infeasible budget degrades to the fastest point.
    budget.test_time_budget = 150;
    const BistPlan fastest = schedule_bist(sw, W, budget);
    CHECK_EQ(fastest.lfsr_patterns, std::size_t{100});
    CHECK_EQ(fastest.test_time, std::size_t{180});

    // Weighted-cost limits: pure time weight picks the fastest test, pure
    // area weight the smallest stored/state footprint.
    ScheduleOptions wc;
    wc.objective = ScheduleObjective::WeightedCost;
    wc.time_weight = 1.0;
    wc.area_weight = 0.0;
    CHECK_EQ(schedule_bist(sw, W, wc).lfsr_patterns, std::size_t{100});
    wc.time_weight = 0.0;
    wc.area_weight = 1.0;
    CHECK_EQ(schedule_bist(sw, W, wc).lfsr_patterns, std::size_t{500});
    // The reported cost is the objective at the chosen point.
    wc.time_weight = 2.0;
    wc.area_weight = 3.0;
    const BistPlan p = schedule_bist(sw, W, wc);
    bool found = false;
    for (const SchedulePoint& c : p.candidates) {
      CHECK(p.cost <= c.cost + 1e-12);
      if (c.length == p.lfsr_patterns) {
        found = true;
        CHECK_EQ(p.cost, 2.0 * double(c.test_time) + 3.0 * double(c.area_bits));
      }
    }
    CHECK(found);
  }

  // --- stability under duplicated/unsorted length lists (synthetic) --------
  {
    const BistPlan ref = schedule_bist(fake_sweep(L, T, W), W);
    const std::vector<std::size_t> Ls{400, 100, 500, 200, 100, 300, 200};
    const std::vector<std::size_t> Ts{8, 80, 6, 30, 80, 12, 30};
    const BistPlan perm = schedule_bist(fake_sweep(Ls, Ts, W), W);
    CHECK(same_plan(ref, perm));
    CHECK_EQ(perm.candidates.size(), std::size_t{5});  // dups collapsed

    ScheduleOptions wc;
    wc.objective = ScheduleObjective::WeightedCost;
    CHECK(same_plan(schedule_bist(fake_sweep(L, T, W), W, wc),
                    schedule_bist(fake_sweep(Ls, Ts, W), W, wc)));
  }

  // --- degenerate families -------------------------------------------------
  {
    CHECK_THROWS(schedule_bist(MixedSweepResult{}, 4));
    // A width that does not match the sweep's pattern width is an error, not
    // an out-of-bounds read during ROM pricing — including on sweeps whose
    // every point has an empty topoff set (width recorded by the sweep).
    CHECK_THROWS(schedule_bist(fake_sweep(L, T, W), W + 7));
    CHECK_THROWS(schedule_bist(fake_sweep(L, {0, 0, 0, 0, 0}, W), W + 1));
    // Single point: chosen trivially.
    const MixedSweepResult one = fake_sweep({128}, {7}, W);
    const BistPlan p1 = schedule_bist(one, W);
    CHECK_EQ(p1.lfsr_patterns, std::size_t{128});
    CHECK_EQ(p1.topoff_patterns, std::size_t{7});
    // Flat top-off curve: the shortest test wins.
    const BistPlan flat = schedule_bist(fake_sweep(L, {5, 5, 5, 5, 5}, W), W);
    CHECK_EQ(flat.lfsr_patterns, std::size_t{100});
  }

  // --- real sweep integration + stability ----------------------------------
  {
    const Netlist n = make_iscas85("c432s");
    const SimKernel k(n);
    MixedTpgOptions opt;
    opt.podem.backtrack_limit = 20;

    const std::vector<std::size_t> a{64, 128, 256, 320};
    const std::vector<std::size_t> b{256, 64, 320, 128, 64, 256};
    const MixedSweepResult swa = run_mixed_sweep(k, a, opt);
    const MixedSweepResult swb = run_mixed_sweep(k, b, opt);

    ScheduleOptions so;
    so.lfsr_degree = opt.lfsr_degree;
    so.lfsr_seed = opt.lfsr_seed;
    const BistPlan pa = schedule_bist(swa, n.input_count(), so);
    const BistPlan pb = schedule_bist(swb, n.input_count(), so);
    CHECK(same_plan(pa, pb));
    CHECK(std::find(a.begin(), a.end(), pa.lfsr_patterns) != a.end());

    // The plan is a faithful copy of its source point.
    const MixedSchemeResult& pt = swa.points[pa.point_index];
    CHECK_EQ(pa.lfsr_patterns, pt.lfsr_patterns);
    CHECK_EQ(pa.topoff_patterns, pt.topoff_patterns);
    CHECK(pa.topoff == pt.topoff);
    CHECK_EQ(pa.final_coverage, pt.final_coverage);
    // Compressed by default: decoded ROM holds only the fallback rows, the
    // seed ROM the reseeding schedules, and the plan carries the point's
    // compression artifacts verbatim.
    CHECK(pa.comp.enabled);
    CHECK_EQ(pa.rom_bits, pa.comp.fallback_rows() * n.input_count());
    CHECK_EQ(pa.area.seed_rom_bits, pa.comp.seed_rom_bits());
    CHECK_EQ(pa.area.misr_bits,
             std::size_t{misr_spec_for(n.output_count()).degree});
    CHECK_EQ(pa.comp.fallback.size(), pt.topoff.size());
    CHECK(pa.rom_bits + pa.area.seed_rom_bits <=
          pt.topoff_patterns * n.input_count());
    CHECK_EQ(pa.lfsr_taps, Lfsr::primitive_taps(so.lfsr_degree));

    ScheduleOptions wc = so;
    wc.objective = ScheduleObjective::WeightedCost;
    CHECK(same_plan(schedule_bist(swa, n.input_count(), wc),
                    schedule_bist(swb, n.input_count(), wc)));

    // Legacy decoded mode: the pre-compression accounting, bit for bit.
    MixedTpgOptions lopt = opt;
    lopt.compress = false;
    const MixedSweepResult swl = run_mixed_sweep(k, a, lopt);
    const BistPlan pl = schedule_bist(swl, n.input_count(), so);
    CHECK(!pl.comp.enabled);
    const MixedSchemeResult& lp = swl.points[pl.point_index];
    CHECK_EQ(pl.rom_bits, lp.topoff_patterns * n.input_count());
    CHECK_EQ(pl.area.seed_rom_bits, std::size_t{0});
    CHECK_EQ(pl.area.misr_bits, std::size_t{0});
    CHECK_EQ(pl.topoff.size(), pl.topoff_patterns);
  }

  return bist_test::summary();
}
