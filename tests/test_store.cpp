// Persistence-layer unit tests: canonical hashing and the netlist
// fingerprint, the on-disk record framing (every corruption class maps to
// its RecordCheck verdict), serializer round trips with full bounds
// checking, and the ResultStore's contract that corruption quarantines and
// degrades to a miss — never a stale hit, never a crash — including under
// injected file-system failure (short writes, ENOSPC-shaped write_file,
// refused renames) via the FileOps shim.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "circuits/iscas85_family.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/builder.hpp"
#include "netlist/fingerprint.hpp"
#include "sim/kernel.hpp"
#include "store/record.hpp"
#include "store/result_store.hpp"
#include "store/serialize.hpp"
#include "test_util.hpp"
#include "tpg/sweep.hpp"
#include "util/fileio.hpp"
#include "util/hash.hpp"

using namespace bist;
namespace fs = std::filesystem;

namespace {

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::vector<std::uint8_t> out;
  CHECK(FileOps::real().read_file(path, out));
  return out;
}

void dump(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  CHECK(FileOps::real().write_file(path, bytes));
}

std::size_t quarantine_count(const std::string& dir) {
  const fs::path q = fs::path(dir) / "quarantine";
  if (!fs::exists(q)) return 0;
  std::size_t n = 0;
  for (const auto& e : fs::directory_iterator(q)) {
    (void)e;
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
void test_hasher() {
  const Digest128 d = Hasher().str("hello").u32(7).digest();
  CHECK_EQ(d.hex().size(), 32u);
  // Deterministic and sensitive to every field.
  CHECK(d == Hasher().str("hello").u32(7).digest());
  CHECK(!(d == Hasher().str("hello").u32(8).digest()));
  // Length-prefixed strings: the field boundary is part of the hash, so
  // ("ab","c") and ("a","bc") must not collide by concatenation.
  CHECK(!(Hasher().str("ab").str("c").digest() ==
          Hasher().str("a").str("bc").digest()));
  // hi/lo lanes are independent (a collision in one lane should not imply
  // the other); weak smoke check: they differ for a nontrivial input.
  CHECK(d.hi != d.lo);
}

// ---------------------------------------------------------------------------
void test_fingerprint() {
  // The same structure built in two gate-insertion orders must fingerprint
  // identically: the fingerprint keys the store, and generators emit blocks
  // in whatever order is convenient.
  NetlistBuilder a("order_a");
  a.input("x");
  a.input("y");
  a.output("f");
  a.define("u", GateType::And, {"x", "y"});
  a.define("v", GateType::Nand, {"x", "u"});
  a.define("f", GateType::Xor, {"u", "v"});
  const Netlist na = a.build();

  NetlistBuilder b("order_b");  // distinct display name: must not matter
  b.input("x");
  b.input("y");
  b.output("f");
  b.define("f", GateType::Xor, {"u", "v"});  // forward refs, reversed order
  b.define("v", GateType::Nand, {"x", "u"});
  b.define("u", GateType::And, {"x", "y"});
  const Netlist nb = b.build();

  CHECK(netlist_fingerprint(na) == netlist_fingerprint(nb));

  // A structural change (gate type) must change the digest.
  NetlistBuilder c("order_c");
  c.input("x");
  c.input("y");
  c.output("f");
  c.define("u", GateType::Or, {"x", "y"});  // And -> Or
  c.define("v", GateType::Nand, {"x", "u"});
  c.define("f", GateType::Xor, {"u", "v"});
  CHECK(!(netlist_fingerprint(c.build()) == netlist_fingerprint(na)));

  // PI order is semantically meaningful (pattern bit order) -> included.
  NetlistBuilder d("order_d");
  d.input("y");
  d.input("x");
  d.output("f");
  d.define("u", GateType::And, {"x", "y"});
  d.define("v", GateType::Nand, {"x", "u"});
  d.define("f", GateType::Xor, {"u", "v"});
  CHECK(!(netlist_fingerprint(d.build()) == netlist_fingerprint(na)));

  // Fanin pin order hashes in pin order (the connection list is canonical).
  NetlistBuilder e("order_e");
  e.input("x");
  e.input("y");
  e.output("f");
  e.define("u", GateType::And, {"y", "x"});  // swapped pins
  e.define("v", GateType::Nand, {"x", "u"});
  e.define("f", GateType::Xor, {"u", "v"});
  CHECK(!(netlist_fingerprint(e.build()) == netlist_fingerprint(na)));

  // write_bench/read_bench round trip is fingerprint-identical for the whole
  // surrogate family, under any circuit_name the parser is handed.
  for (const std::string& name : iscas85_names()) {
    const Netlist n = make_iscas85(name);
    const Netlist rt = read_bench(write_bench(n), "reparsed_" + name);
    CHECK(netlist_fingerprint(n) == netlist_fingerprint(rt));
  }
}

// ---------------------------------------------------------------------------
void test_record_framing() {
  const Digest128 key = Hasher().str("record-test").digest();
  std::vector<std::uint8_t> payload;
  for (int i = 0; i < 57; ++i) payload.push_back(std::uint8_t(i * 37 + 1));

  const std::vector<std::uint8_t> frame = frame_record(key, payload);
  CHECK_EQ(frame.size(), kRecordHeaderSize + payload.size());

  // Clean parse: everything checks out, payload comes back byte-identical.
  {
    const ParsedRecord p = parse_record(frame, &key);
    CHECK(p.check == RecordCheck::Ok);
    CHECK_EQ(p.frame_size, frame.size());
    CHECK(p.key == key);
    CHECK_EQ(p.version, kStoreFormatVersion);
    CHECK(std::vector<std::uint8_t>(p.payload.begin(), p.payload.end()) ==
          payload);
  }

  // Empty payload is a legal record.
  {
    const auto f0 = frame_record(key, {});
    const ParsedRecord p = parse_record(f0, &key);
    CHECK(p.check == RecordCheck::Ok);
    CHECK_EQ(p.payload.size(), 0u);
  }

  // Trailing bytes after the frame are legal (manifest packing); frame_size
  // still reports only this record's extent.
  {
    auto padded = frame;
    padded.push_back(0xEE);
    padded.push_back(0xEE);
    const ParsedRecord p = parse_record(padded, &key);
    CHECK(p.check == RecordCheck::Ok);
    CHECK_EQ(p.frame_size, frame.size());
  }

  // Truncation at EVERY byte boundary: inside the header reads TooShort,
  // inside the payload reads BadLength.  Never Ok, never a crash.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    const std::vector<std::uint8_t> t(frame.begin(), frame.begin() + cut);
    const ParsedRecord p = parse_record(t, &key);
    if (cut < kRecordHeaderSize) {
      CHECK(p.check == RecordCheck::TooShort);
    } else {
      CHECK(p.check == RecordCheck::BadLength);
    }
  }

  // Bad magic.
  {
    auto m = frame;
    m[0] ^= 0xFF;
    CHECK(parse_record(m, &key).check == RecordCheck::BadMagic);
  }

  // Version skew: a future (or past) format version must refuse to decode.
  {
    auto v = frame;
    v[4] += 1;
    CHECK(parse_record(v, &key).check == RecordCheck::BadVersion);
  }

  // Key mismatch: the header key is part of the contract.
  {
    const Digest128 other = Hasher().str("some-other-key").digest();
    CHECK(parse_record(frame, &other).check == RecordCheck::BadKey);
    // ...but an unkeyed parse (manifest walk) accepts it.
    CHECK(parse_record(frame, nullptr).check == RecordCheck::Ok);
  }

  // A single flipped bit anywhere in the payload fails the checksum.
  for (std::size_t i = 0; i < payload.size(); i += 13) {
    auto c = frame;
    c[kRecordHeaderSize + i] ^= 0x20;
    CHECK(parse_record(c, &key).check == RecordCheck::BadChecksum);
  }
  // ...as does a flipped checksum byte itself.
  {
    auto c = frame;
    c[16] ^= 0x01;
    CHECK(parse_record(c, &key).check == RecordCheck::BadChecksum);
  }

  CHECK(record_check_name(RecordCheck::BadChecksum) == "bad_checksum");
  CHECK(record_check_name(RecordCheck::Ok) == "ok");
}

// ---------------------------------------------------------------------------
MixedSweepResult small_sweep(const std::string& name) {
  const Netlist n = make_iscas85(name);
  const SimKernel k(n);
  FaultSimulator fsim(k);
  MixedTpgOptions mopt;
  mopt.lfsr_patterns = 128;
  mopt.podem.backtrack_limit = 50;
  const std::vector<std::size_t> lengths = {32, 128};
  return run_mixed_sweep(k, fsim, lengths, mopt);
}

void test_serializer_roundtrip() {
  const MixedSweepResult sw = small_sweep("c432s");
  CHECK(sw.status.ok());

  const std::vector<std::uint8_t> bytes = serialize_sweep(sw);
  const MixedSweepResult back = deserialize_sweep(bytes);
  // Determinism makes serialized equality the equality oracle: a lossless
  // round trip re-serializes to the exact same bytes.
  CHECK(serialize_sweep(back) == bytes);
  CHECK_EQ(back.points.size(), sw.points.size());
  CHECK(back.points[0].topoff == sw.points[0].topoff);
  CHECK_EQ(back.stats.podem_calls, sw.stats.podem_calls);

  // Bounds checking: any truncation must throw, not read wild.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{1},
                                bytes.size() / 2, bytes.size() - 1}) {
    const std::vector<std::uint8_t> t(bytes.begin(), bytes.begin() + cut);
    CHECK_THROWS(deserialize_sweep(t));
  }
  // Trailing garbage must throw too (a payload is exactly one sweep).
  {
    auto t = bytes;
    t.push_back(0);
    CHECK_THROWS(deserialize_sweep(t));
  }
  // A maliciously huge vector count must be rejected by the remaining-bytes
  // bound, not allocate petabytes: saturate the leading count field.
  {
    auto t = bytes;
    for (std::size_t i = 0; i < 8 && i < t.size(); ++i) t[i] = 0xFF;
    CHECK_THROWS(deserialize_sweep(t));
  }
}

// ---------------------------------------------------------------------------
void test_result_store() {
  const std::string dir = "store_test_dir";
  fs::remove_all(dir);

  ResultStore store({dir, nullptr});
  const MixedSweepResult sw = small_sweep("c432s");
  const Netlist n = make_iscas85("c432s");
  MixedTpgOptions mopt;
  mopt.lfsr_patterns = 128;
  mopt.podem.backtrack_limit = 50;
  const std::vector<std::size_t> lengths = {32, 128};
  const Digest128 key = sweep_cache_key(n, lengths, mopt);

  // Engine-speed knobs must NOT move the key; result-affecting knobs must.
  {
    MixedTpgOptions fast = mopt;
    fast.podem_threads = 8;
    fast.fsim.threads = 8;
    CHECK(sweep_cache_key(n, lengths, fast) == key);
    MixedTpgOptions other = mopt;
    other.podem.backtrack_limit = 51;
    CHECK(!(sweep_cache_key(n, lengths, other) == key));
    const std::vector<std::size_t> other_lengths = {32, 64};
    CHECK(!(sweep_cache_key(n, other_lengths, mopt) == key));
  }

  // Cold store: clean miss.
  CHECK(store.load_sweep(key).outcome ==
        ResultStore::SweepLookup::Outcome::Miss);
  CHECK_EQ(store.stats().misses, 1u);

  // Publish + hit: the loaded sweep is byte-identical to the stored one.
  CHECK(store.store_sweep(key, sw));
  {
    ResultStore::SweepLookup lk = store.load_sweep(key);
    CHECK(lk.outcome == ResultStore::SweepLookup::Outcome::Hit);
    CHECK(serialize_sweep(lk.sweep) == serialize_sweep(sw));
    CHECK(!lk.note.empty());
  }
  CHECK_EQ(store.stats().hits, 1u);
  CHECK_EQ(store.stats().stores, 1u);

  const std::string path = store.sweep_path(key);
  const std::vector<std::uint8_t> good = slurp(path);

  // Every corruption class: load quarantines (file moved aside, original
  // gone) and reports it; the NEXT load is a clean miss — the poison cannot
  // be re-read forever — and a re-publish restores service for the key.
  using Mangle = std::vector<std::uint8_t> (*)(std::vector<std::uint8_t>);
  const Mangle cases[] = {
      // truncated inside the header
      [](std::vector<std::uint8_t> b) {
        b.resize(kRecordHeaderSize / 2);
        return b;
      },
      // truncated inside the payload
      [](std::vector<std::uint8_t> b) {
        b.resize(b.size() - 1);
        return b;
      },
      // single flipped payload bit
      [](std::vector<std::uint8_t> b) {
        b[kRecordHeaderSize] ^= 0x01;
        return b;
      },
      // written by a future format version
      [](std::vector<std::uint8_t> b) {
        b[4] += 1;
        return b;
      },
      // trailing bytes (store records are exactly one frame)
      [](std::vector<std::uint8_t> b) {
        b.push_back(0xAB);
        return b;
      },
  };
  std::uint64_t quarantines = 0;
  for (const Mangle mangle : cases) {
    dump(path, mangle(good));
    ResultStore::SweepLookup lk = store.load_sweep(key);
    CHECK(lk.outcome == ResultStore::SweepLookup::Outcome::Quarantined);
    CHECK(!lk.note.empty());
    CHECK(!fs::exists(path));
    ++quarantines;
    CHECK_EQ(store.stats().quarantined, quarantines);
    CHECK(store.load_sweep(key).outcome ==
          ResultStore::SweepLookup::Outcome::Miss);
    CHECK(store.store_sweep(key, sw));
    CHECK(store.load_sweep(key).outcome ==
          ResultStore::SweepLookup::Outcome::Hit);
  }

  // Checksum-valid frame whose payload does not decode: quarantined too.
  {
    const std::vector<std::uint8_t> junk(64, 0xFF);
    dump(path, frame_record(key, junk));
    ResultStore::SweepLookup lk = store.load_sweep(key);
    CHECK(lk.outcome == ResultStore::SweepLookup::Outcome::Quarantined);
    CHECK(lk.note.find("undecodable") != std::string::npos);
    ++quarantines;
    CHECK(store.store_sweep(key, sw));
  }

  // A misfiled record (intact frame under the wrong file name) must not
  // hit: the key in the header disagrees with the requested one.
  {
    MixedTpgOptions other = mopt;
    other.podem.backtrack_limit = 51;
    const Digest128 key2 = sweep_cache_key(n, lengths, other);
    dump(store.sweep_path(key2), good);
    CHECK(store.load_sweep(key2).outcome ==
          ResultStore::SweepLookup::Outcome::Quarantined);
    ++quarantines;
  }

  CHECK_EQ(quarantine_count(dir), quarantines);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// FileOps shim: fail writes (whole or short) or renames on demand.
struct FlakyOps : FileOps {
  bool fail_writes = false;
  bool short_writes = false;
  bool fail_renames = false;

  bool write_file(const std::string& path,
                  std::span<const std::uint8_t> data) override {
    if (fail_writes) return false;  // ENOSPC-shaped: nothing lands
    if (short_writes) {
      // Disk filled mid-write: half the payload lands, the call fails.
      FileOps::write_file(path, data.subspan(0, data.size() / 2));
      return false;
    }
    return FileOps::write_file(path, data);
  }
  bool rename_file(const std::string& from, const std::string& to) override {
    if (fail_renames) return false;
    return FileOps::rename_file(from, to);
  }
};

void test_store_io_failure() {
  const std::string dir = "store_test_flaky";
  fs::remove_all(dir);

  FlakyOps ops;
  ResultStore store({dir, &ops});
  const MixedSweepResult sw = small_sweep("c432s");
  const Digest128 key = Hasher().str("flaky-key").digest();

  // ENOSPC-shaped write failure: publish reports false, key stays cold.
  ops.fail_writes = true;
  std::string note;
  CHECK(!store.store_sweep(key, sw, &note));
  CHECK(!note.empty());
  CHECK_EQ(store.stats().store_failures, 1u);
  CHECK(store.load_sweep(key).outcome ==
        ResultStore::SweepLookup::Outcome::Miss);

  // Short write: the temp file got half the bytes before the failure; the
  // atomic-publish contract means the FINAL path must never see them.
  ops.fail_writes = false;
  ops.short_writes = true;
  CHECK(!store.store_sweep(key, sw, &note));
  CHECK(store.load_sweep(key).outcome ==
        ResultStore::SweepLookup::Outcome::Miss);
  CHECK(!fs::exists(store.sweep_path(key)));

  // Refused rename: payload written in full but never promoted.
  ops.short_writes = false;
  ops.fail_renames = true;
  CHECK(!store.store_sweep(key, sw, &note));
  CHECK(store.load_sweep(key).outcome ==
        ResultStore::SweepLookup::Outcome::Miss);

  // Recovery: the same store object publishes fine once I/O heals.
  ops.fail_renames = false;
  CHECK(store.store_sweep(key, sw));
  CHECK(store.load_sweep(key).outcome ==
        ResultStore::SweepLookup::Outcome::Hit);

  fs::remove_all(dir);
}

}  // namespace

int main() {
  test_hasher();
  test_fingerprint();
  test_record_framing();
  test_serializer_roundtrip();
  test_result_store();
  test_store_io_failure();
  return bist_test::summary();
}
