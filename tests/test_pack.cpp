#include <stdexcept>
#include <vector>

#include "sim/bitpar_sim.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

using namespace bist;

int main() {
  // lane mapping: word(i) bit L == pattern L's bit i
  std::vector<BitVec> pats;
  pats.push_back(BitVec::from_string("101"));
  pats.push_back(BitVec::from_string("011"));
  pats.push_back(BitVec::from_string("110"));
  PatternBlock b = pack_patterns(pats, 3);
  CHECK_EQ(b.width, 3u);
  CHECK_EQ(b.count, 3u);
  CHECK_EQ(b.lane_mask(), 0b111u);
  CHECK_EQ(b.input_words[0], 0b101u);  // input 0: pats 0,2 set
  CHECK_EQ(b.input_words[1], 0b110u);  // input 1: pats 1,2 set
  CHECK_EQ(b.input_words[2], 0b011u);  // input 2: pats 0,1 set

  // width mismatch throws
  std::vector<BitVec> badpats{BitVec::from_string("10")};
  CHECK_THROWS(pack_patterns(badpats, 3));

  // >64 patterns: pack_patterns takes the first 64, pack_all splits
  Rng rng(7);
  std::vector<BitVec> many;
  for (int i = 0; i < 150; ++i) {
    BitVec p(5);
    for (int j = 0; j < 5; ++j) p.set(j, rng.next_bool());
    many.push_back(p);
  }
  PatternBlock first = pack_patterns(many, 5);
  CHECK_EQ(first.count, 64u);
  CHECK_EQ(first.lane_mask(), ~std::uint64_t{0});

  auto blocks = pack_all(many, 5);
  CHECK_EQ(blocks.size(), 3u);
  CHECK_EQ(blocks[0].count, 64u);
  CHECK_EQ(blocks[1].count, 64u);
  CHECK_EQ(blocks[2].count, 22u);
  CHECK_EQ(blocks[2].lane_mask(), (std::uint64_t{1} << 22) - 1);
  // every pattern bit lands in the right block/lane/word
  for (std::size_t p = 0; p < many.size(); ++p) {
    const auto& blk = blocks[p / 64];
    const std::size_t lane = p % 64;
    for (std::size_t i = 0; i < 5; ++i)
      CHECK_EQ(many[p].get(i), bool((blk.input_words[i] >> lane) & 1));
  }

  // empty pattern list → no blocks
  CHECK_EQ(pack_all({}, 5).size(), 0u);

  return bist_test::summary();
}
