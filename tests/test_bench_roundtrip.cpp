// .bench serialization round trip: write → read → re-freeze must preserve
// the circuit (same stats, same simulation behaviour) for the embedded C17
// and for a generated circuit.

#include <sstream>

#include "circuits/c17.hpp"
#include "circuits/generators.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"
#include "sim/bitpar_sim.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

using namespace bist;

namespace {

void check_roundtrip(const Netlist& orig) {
  const std::string text = write_bench(orig);
  const Netlist back = read_bench(text, orig.name());
  CHECK(back.frozen());

  const NetlistStats a = compute_stats(orig);
  const NetlistStats b = compute_stats(back);
  CHECK_EQ(a.inputs, b.inputs);
  CHECK_EQ(a.outputs, b.outputs);
  CHECK_EQ(a.gates, b.gates);
  CHECK_EQ(a.nets, b.nets);
  CHECK_EQ(a.depth, b.depth);
  CHECK_EQ(a.max_fanin, b.max_fanin);
  CHECK_EQ(a.max_fanout, b.max_fanout);
  for (std::size_t t = 0; t < a.by_type.size(); ++t)
    CHECK_EQ(a.by_type[t], b.by_type[t]);

  // Same behaviour on random patterns, matching POs by name (the reader may
  // reorder gates; names are the stable identity).
  Rng rng(99);
  for (int p = 0; p < 16; ++p) {
    BitVec pat(orig.input_count());
    for (std::size_t i = 0; i < pat.size(); ++i) pat.set(i, rng.next_bool());
    // map pattern onto back's input order by name
    BitVec pat_back(back.input_count());
    for (std::size_t i = 0; i < orig.input_count(); ++i) {
      const GateId g = back.find(orig.gate(orig.inputs()[i]).name);
      CHECK(g != kNoGate);
      pat_back.set(back.input_index(g), pat.get(i));
    }
    const BitVec out_a = simulate_single(orig, pat);
    const BitVec out_b = simulate_single(back, pat_back);
    for (std::size_t o = 0; o < orig.output_count(); ++o) {
      const GateId g = back.find(orig.gate(orig.outputs()[o]).name);
      CHECK(g != kNoGate);
      // find g's position in back's output list
      bool found = false;
      for (std::size_t ob = 0; ob < back.output_count(); ++ob)
        if (back.outputs()[ob] == g) {
          CHECK_EQ(out_a.get(o), out_b.get(ob));
          found = true;
          break;
        }
      CHECK(found);
    }
  }

  // write(read(write(x))) is a fixpoint
  CHECK_EQ(write_bench(back),
           write_bench(read_bench(write_bench(back), back.name())));
}

}  // namespace

int main() {
  check_roundtrip(make_c17());

  // the embedded C17 text parses to the same circuit as the builder
  const Netlist parsed = read_bench(c17_bench_text(), "c17");
  const NetlistStats ps = compute_stats(parsed);
  const NetlistStats cs = compute_stats(make_c17());
  CHECK_EQ(ps.gates, cs.gates);
  CHECK_EQ(ps.inputs, cs.inputs);
  CHECK_EQ(ps.outputs, cs.outputs);

  // a generated circuit with XOR trees and wide gates
  check_roundtrip(make_ecc_circuit(16, 5));
  check_roundtrip(make_array_multiplier(4));

  // stream reader agrees with the string reader
  std::istringstream in(c17_bench_text());
  const Netlist streamed = read_bench_stream(in, "c17");
  CHECK_EQ(compute_stats(streamed).gates, cs.gates);

  return bist_test::summary();
}
