#include "util/bitvec.hpp"

#include <stdexcept>

#include "test_util.hpp"

using bist::BitVec;

int main() {
  // construction / get / set
  BitVec v(130);
  CHECK_EQ(v.size(), 130u);
  CHECK(v.none());
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  CHECK(v.get(0));
  CHECK(v.get(64));
  CHECK(v.get(129));
  CHECK(!v.get(1));
  CHECK_EQ(v.popcount(), 3u);
  CHECK(v.any());
  v.flip(0);
  CHECK(!v.get(0));
  CHECK_EQ(v.popcount(), 2u);

  // filled construction + tail invariant: bits beyond size() stay zero
  BitVec ones(70, true);
  CHECK_EQ(ones.popcount(), 70u);
  CHECK_EQ(ones.word_count(), 2u);
  CHECK_EQ(ones.word(1), (std::uint64_t{1} << 6) - 1);

  // resize preserves prefix, clears tail
  ones.resize(65);
  CHECK_EQ(ones.popcount(), 65u);
  ones.resize(70, false);
  CHECK_EQ(ones.popcount(), 65u);
  CHECK(!ones.get(69));

  // push_back
  BitVec pb;
  pb.push_back(true);
  pb.push_back(false);
  pb.push_back(true);
  CHECK_EQ(pb.size(), 3u);
  CHECK(pb.get(0));
  CHECK(!pb.get(1));
  CHECK(pb.get(2));

  // string round trip
  const std::string s = "0110001011";
  BitVec fs = BitVec::from_string(s);
  CHECK_EQ(fs.size(), s.size());
  CHECK_EQ(fs.to_string(), s);
  CHECK(!fs.get(0));
  CHECK(fs.get(1));

  // word-parallel operators
  BitVec a = BitVec::from_string("1100");
  BitVec b = BitVec::from_string("1010");
  BitVec x = a;
  x &= b;
  CHECK_EQ(x.to_string(), "1000");
  x = a;
  x |= b;
  CHECK_EQ(x.to_string(), "1110");
  x = a;
  x ^= b;
  CHECK_EQ(x.to_string(), "0110");

  // equality + hash
  CHECK(BitVec::from_string("1010") == b);
  CHECK(!(a == b));
  CHECK(a.hash() != b.hash());

  // set_all / reset_all respect the tail invariant
  BitVec t(67);
  t.set_all();
  CHECK_EQ(t.popcount(), 67u);
  CHECK_EQ(t.word(1) >> 3, 0u);
  t.reset_all();
  CHECK(t.none());

  return bist_test::summary();
}
