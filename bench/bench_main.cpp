// Fault-simulation throughput bench: seed BitParSim loop vs. SimKernel path,
// plus the PPSFP fault simulator driven by a maximal-length LFSR, across the
// ISCAS85 surrogate family.  Emits BENCH_fault_sim.json with gate-evals/sec
// for both logic-sim paths (and their ratio), faults-dropped/sec for the
// fault simulator, and the full mixed-scheme pipeline per circuit (LFSR
// phase -> PODEM top-off -> compaction): top-off pattern counts and final
// coverage under both fault-accounting conventions — the direct input for
// the scheduler and area model.
//
// Usage: bench_fault_sim [--patterns N] [--circuits c17,c6288s,...]
//                        [--podem-backtracks N] [--no-mixed]
//                        [--out FILE] [--plot]

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "circuits/iscas85_family.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/stats.hpp"
#include "sim/bitpar_sim.hpp"
#include "sim/kernel.hpp"
#include "tpg/lfsr.hpp"
#include "tpg/mixed.hpp"
#include "util/ascii_plot.hpp"
#include "util/strings.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct PathResult {
  double seconds = 0;
  std::uint64_t gate_evals = 0;
  double evals_per_sec = 0;
  std::uint64_t checksum = 0;  ///< XOR of PO words, cross-checked between paths
};

// Each path is timed `reps` times and the fastest pass is reported (the
// per-pass work is ~ms scale, so min-of-N suppresses scheduler jitter).
PathResult run_seed_path(const bist::Netlist& n,
                         std::span<const bist::PatternBlock> blocks, int reps) {
  bist::BitParSim sim(n);
  PathResult r;
  r.seconds = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    std::uint64_t checksum = 0;
    const auto t0 = Clock::now();
    for (const auto& b : blocks) {
      sim.simulate(b);
      for (bist::GateId o : n.outputs()) checksum ^= sim.value(o) & b.lane_mask();
    }
    r.seconds = std::min(r.seconds, seconds_since(t0));
    r.checksum = checksum;
  }
  r.gate_evals = std::uint64_t(n.logic_gate_count()) * 64 * blocks.size();
  r.evals_per_sec = r.seconds > 0 ? double(r.gate_evals) / r.seconds : 0;
  return r;
}

PathResult run_kernel_path(const bist::SimKernel& k,
                           std::span<const bist::PatternBlock> blocks, int reps) {
  bist::KernelSim sim(k);
  PathResult r;
  r.seconds = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    std::uint64_t checksum = 0;
    const auto t0 = Clock::now();
    for (const auto& b : blocks) {
      sim.simulate(b);
      for (bist::KIndex o : k.outputs()) checksum ^= sim.value_at(o) & b.lane_mask();
    }
    r.seconds = std::min(r.seconds, seconds_since(t0));
    r.checksum = checksum;
  }
  r.gate_evals = std::uint64_t(k.schedule().size() + k.constants().size()) *
                 64 * blocks.size();
  r.evals_per_sec = r.seconds > 0 ? double(r.gate_evals) / r.seconds : 0;
  return r;
}

std::string json_num(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

}  // namespace

namespace {

int run_bench(int argc, char** argv);

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_bench(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

namespace {

int run_bench(int argc, char** argv) {
  std::size_t patterns = 10240;
  int reps = 5;
  std::string out_path = "BENCH_fault_sim.json";
  std::vector<std::string> names = bist::iscas85_names();
  bool plot = false;
  bool mixed = true;
  std::uint32_t podem_backtracks = 100;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--patterns") {
      patterns = std::stoul(next());
    } else if (a == "--reps") {
      reps = std::stoi(next());
    } else if (a == "--out") {
      out_path = next();
    } else if (a == "--plot") {
      plot = true;
    } else if (a == "--no-mixed") {
      mixed = false;
    } else if (a == "--podem-backtracks") {
      podem_backtracks = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (a == "--circuits") {
      names.clear();
      const std::string list = next();  // keep alive: split returns views
      for (auto tok : bist::split(list, ","))
        names.emplace_back(tok);
    } else {
      std::cerr << "usage: bench_fault_sim [--patterns N] [--reps N] "
                   "[--circuits a,b] [--podem-backtracks N] [--no-mixed] "
                   "[--out FILE] [--plot]\n";
      return 2;
    }
  }
  if (patterns == 0 || patterns % 64 != 0) patterns = ((patterns / 64) + 1) * 64;

  std::ostringstream js;
  js << "{\n  \"bench\": \"fault_sim\",\n  \"patterns\": " << patterns
     << ",\n  \"circuits\": [\n";

  double c6288_speedup = 0;
  bool all_verified = true;
  bool first = true;
  for (const std::string& name : names) {
    bist::Netlist n = bist::make_iscas85(name);
    const bist::NetlistStats st = bist::compute_stats(n);
    const bist::SimKernel kernel(n);

    // One LFSR stream per use so both logic-sim paths see identical patterns.
    const unsigned degree = 32;
    bist::Lfsr lfsr = bist::Lfsr::maximal(degree, 0xBADC0FFEu);
    const auto blocks = lfsr.blocks(n.input_count(), patterns);

    const PathResult seed = run_seed_path(n, blocks, reps);
    const PathResult kern = run_kernel_path(kernel, blocks, reps);
    if (seed.checksum != kern.checksum) {
      std::cerr << name << ": seed/kernel output mismatch!\n";
      return 1;
    }
    const double speedup =
        kern.evals_per_sec > 0 && seed.evals_per_sec > 0
            ? kern.evals_per_sec / seed.evals_per_sec
            : 0;
    if (name.rfind("c6288", 0) == 0) c6288_speedup = speedup;

    bist::FaultSimulator fsim(kernel);
    const auto tf0 = Clock::now();
    const bist::FaultSimResult fr = fsim.run(blocks);
    const double fsecs = seconds_since(tf0);

    std::cout << name << ": " << st.gates << " gates, seed "
              << bist::format_fixed(seed.evals_per_sec / 1e6, 1)
              << " Mevals/s, kernel "
              << bist::format_fixed(kern.evals_per_sec / 1e6, 1)
              << " Mevals/s (x" << bist::format_fixed(speedup, 2) << "), faults "
              << fr.detected << "/" << fr.sim_faults << " detected (cov "
              << bist::format_fixed(100 * fr.final_coverage(), 2) << "%, "
              << bist::format_fixed(fsecs ? fr.detected / fsecs : 0, 0)
              << " dropped/s)\n";

    bist::MixedSchemeResult mr;
    double msecs = 0;
    if (mixed) {
      bist::MixedTpgOptions mopt;
      mopt.lfsr_patterns = patterns;
      mopt.podem.backtrack_limit = podem_backtracks;
      const auto tm0 = Clock::now();
      // fr above is exactly the LFSR phase of the mixed scheme (same stream:
      // degree 32, seed 0xBADC0FFE, `patterns` patterns), so reuse it instead
      // of re-simulating; msecs then times the top-off phases alone.
      mr = bist::run_mixed_tpg(kernel, fsim, mopt, &fr);
      msecs = seconds_since(tm0);
      all_verified = all_verified && mr.all_verified;
      std::cout << name << ": mixed scheme " << mr.lfsr_patterns << " LFSR + "
                << mr.topoff_patterns << " top-off patterns (tail "
                << mr.tail_faults << ": " << mr.podem_detected << " podem, "
                << mr.redundant << " redundant, " << mr.aborted
                << " aborted), coverage "
                << bist::format_fixed(100 * mr.lfsr_coverage, 2) << "% -> "
                << bist::format_fixed(100 * mr.final_coverage, 2) << "%"
                << (mr.all_verified ? "" : " [VERIFY FAILED]") << "\n";
    }

    if (!first) js << ",\n";
    first = false;
    js << "    {\n      \"name\": \"" << name << "\",\n"
       << "      \"gates\": " << st.gates << ",\n"
       << "      \"inputs\": " << st.inputs << ",\n"
       << "      \"outputs\": " << st.outputs << ",\n"
       << "      \"depth\": " << st.depth << ",\n"
       << "      \"logic_sim\": {\n"
       << "        \"patterns\": " << patterns << ",\n"
       << "        \"seed_bitpar\": {\"seconds\": " << json_num(seed.seconds)
       << ", \"gate_evals\": " << seed.gate_evals
       << ", \"gate_evals_per_sec\": " << json_num(seed.evals_per_sec) << "},\n"
       << "        \"kernel\": {\"seconds\": " << json_num(kern.seconds)
       << ", \"gate_evals\": " << kern.gate_evals
       << ", \"gate_evals_per_sec\": " << json_num(kern.evals_per_sec) << "},\n"
       << "        \"speedup_kernel_over_seed\": " << json_num(speedup) << "\n"
       << "      },\n"
       << "      \"fault_sim\": {\n"
       << "        \"total_faults\": " << fr.total_faults << ",\n"
       << "        \"collapsed_faults\": " << fr.sim_faults << ",\n"
       << "        \"detected\": " << fr.detected << ",\n"
       << "        \"coverage\": " << json_num(fr.final_coverage()) << ",\n"
       << "        \"seconds\": " << json_num(fsecs) << ",\n"
       << "        \"faults_dropped_per_sec\": "
       << json_num(fsecs > 0 ? fr.detected / fsecs : 0) << ",\n"
       << "        \"faulty_gate_evals\": " << fr.faulty_gate_evals << ",\n"
       << "        \"faulty_gate_evals_per_sec\": "
       << json_num(fsecs > 0 ? double(fr.faulty_gate_evals) / fsecs : 0) << "\n"
       << "      }";
    if (mixed) {
      js << ",\n      \"mixed_tpg\": {\n"
         << "        \"lfsr_patterns\": " << mr.lfsr_patterns << ",\n"
         << "        \"tail_faults\": " << mr.tail_faults << ",\n"
         << "        \"podem\": {\"detected\": " << mr.podem_detected
         << ", \"redundant\": " << mr.redundant
         << ", \"aborted\": " << mr.aborted
         << ", \"backtracks\": " << mr.podem_backtracks
         << ", \"decisions\": " << mr.podem_decisions << "},\n"
         << "        \"topoff_patterns\": " << mr.topoff_patterns << ",\n"
         << "        \"topoff_before_compaction\": "
         << mr.topoff_before_compaction << ",\n"
         << "        \"lfsr_coverage\": " << json_num(mr.lfsr_coverage) << ",\n"
         << "        \"lfsr_coverage_weighted\": "
         << json_num(mr.lfsr_coverage_weighted) << ",\n"
         << "        \"final_coverage\": " << json_num(mr.final_coverage) << ",\n"
         << "        \"final_coverage_weighted\": "
         << json_num(mr.final_coverage_weighted) << ",\n"
         << "        \"patterns_verified\": "
         << (mr.all_verified ? "true" : "false") << ",\n"
         << "        \"seconds\": " << json_num(msecs) << "\n"
         << "      }";
    }
    js << "\n    }";

    if (plot) {
      bist::Series s;
      s.name = name + " coverage";
      const std::size_t step = std::max<std::size_t>(1, fr.coverage.size() / 256);
      for (std::size_t p = 0; p < fr.coverage.size(); p += step) {
        s.x.push_back(double(p + 1));
        s.y.push_back(100 * fr.coverage[p]);
      }
      bist::PlotOptions po;
      po.title = name + ": stuck-at coverage vs. LFSR patterns";
      po.x_label = "patterns";
      po.y_label = "%";
      po.y_from_zero = true;
      std::cout << bist::ascii_plot({s}, po);
    }
  }

  js << "\n  ],\n  \"c6288_speedup_kernel_over_seed\": "
     << json_num(c6288_speedup) << "\n}\n";

  std::ofstream out(out_path);
  out << js.str();
  out.flush();
  if (!out) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  if (!all_verified) {
    std::cerr << "error: some top-off pattern failed fault-sim verification\n";
    return 1;
  }
  return 0;
}

}  // namespace
