// Fault-simulation throughput bench: seed BitParSim loop vs. SimKernel path,
// plus the PPSFP fault simulator driven by a maximal-length LFSR, across the
// ISCAS85 surrogate family.  Emits BENCH_fault_sim.json with gate-evals/sec
// for both logic-sim paths (and their ratio), faults-dropped/sec for the
// fault simulator, and the full mixed-scheme pipeline per circuit (LFSR
// phase -> PODEM top-off -> compaction): top-off pattern counts and final
// coverage under both fault-accounting conventions — the direct input for
// the scheduler and area model.
//
// Every timed section follows the same statistical hygiene: one untimed
// warmup pass (page in the scratch, warm the caches and the branch
// predictors), then N timed repetitions reporting the fastest (small-circuit
// sections are microseconds-scale, where min-of-N is the standard way to
// suppress scheduler noise).  Each JSON section carries `reps` and
// `seconds_best` so downstream comparisons know what they are looking at.
//
// The mixed-scheme section follows the same discipline (its own rep count,
// --mixed-reps, since a pass is orders of magnitude more expensive than a
// logic-sim pass) and reports a per-phase breakdown: lfsr_seconds /
// podem_seconds / compact_seconds.  The sweep section evaluates the scheme
// at --sweep-lengths candidate LFSR lengths two ways — the naive per-point
// run_mixed_tpg loop (timed once; it is the slow baseline) and the
// incremental run_mixed_sweep engine (warmup + best-of---sweep-reps) —
// cross-checks that every per-point result is bit-identical, and reports
// the naive/sweep speedup: the cost conversion that makes the scheduler's
// length-vs-ROM trade-off search cheap.
//
// The bist_plan section closes the paper's loop: the scheduler picks the
// knee of the sweep's length-vs-ROM trade-off (optionally under a
// --budget test-time cap), the synthesizer emits the gate-level BIST
// wrapper (LFSR + counter + decoded-pattern ROM + muxed CUT copy) as
// wrapper_<circuit>.bench, and the self-simulation harness drives the
// wrapper cycle by cycle, proving the applied patterns and the achieved
// CUT coverage reproduce the scheduled point exactly
// (wrapper_matches_plan gates the run).  --plot adds the
// coverage-vs-length and ROM-vs-length trade-off curves so the knee is
// visible in CI logs.
//
// Robustness flags: --deadline-ms D arms a cooperative anytime deadline over
// each mixed-scheme / sweep section (per circuit, per section), and
// --job-timeout-ms J caps each circuit's whole pipeline; the tighter of the
// two drives every section's Deadline.  Deadline-shaped runs degrade instead
// of failing — the sweep yields LfsrOnly/Skipped points per its anytime
// contract, the scheduler falls back to a degraded (LFSR-only) plan, and the
// wrapper is still synthesized and self-verified.  Because results are then
// wall-clock-shaped, the naive cross-check is skipped and each timed section
// runs exactly once (no warmup/best-of, which would mix deadline states);
// the JSON carries `state`/`status`/`degraded` fields so downstream tooling
// can gate on them.
//
// The compressed test-data architecture is on by default: top-off cubes are
// stored as LFSR reseeding schedules (seed ROM) with decoded fallback rows,
// and a MISR compacts the CUT responses into one signature checked on-chip.
// --no-compress selects the legacy fully decoded ROM + per-pattern-compare
// architecture; the bist_plan section then reports rom_bits only and the
// compression fields are zero.  Compressed runs report seed_rom_bits /
// misr_bits / fallback_rows, the compression ratio against the decoded
// encoding of the same top-off set, and the empirical aliasing audit
// (aliasing_escapes must be 0 for wrapper_matches_plan to hold).
//
// Batch (jobs) mode: --jobs switches to the fault-tolerant pipeline driver
// (run_job_batch) — one JobSpec per circuit, same knobs as the classic
// sections.  --cache-dir DIR (implies --jobs) attaches the durable
// content-addressed ResultStore: sweep results are served from / published
// to DIR, corrupt records quarantine and recompute, and the batch journals
// completed jobs to DIR/batch.manifest so --resume replays them after a
// crash (kill -9 mid-batch, rerun with --resume: finished circuits come
// back from the journal, the interrupted one recomputes, usually from the
// sweep cache).  --retries N arms bounded deterministic retry for transient
// stage failures.  Jobs mode emits BENCH JSON {"bench": "job_batch", ...}
// with per-job cache/stage/attempt detail and aggregate cache_stats, and
// exits nonzero if any job ends in an Error status.
//
// Usage: bench_fault_sim [--patterns N] [--reps N] [--threads N] [--width W]
//                        [--circuits c17,c6288s,...]
//                        [--podem-backtracks N] [--no-mixed]
//                        [--mixed-reps N] [--no-sweep] [--sweep-reps N]
//                        [--sweep-lengths a,b,c]
//                        [--no-bist] [--no-compress] [--budget N]
//                        [--wrapper-dir DIR]
//                        [--deadline-ms D] [--job-timeout-ms J]
//                        [--jobs] [--cache-dir DIR] [--resume] [--retries N]
//                        [--serve] [--spool DIR] [--stream FILE]
//                        [--drain-ms N] [--queue-limit N] [--watchdog-ms N]
//                        [--grace-ms N] [--quarantine-after N]
//                        [--health FILE] [--health-period-ms N]
//                        [--chaos stage:circuit[:times[:transient|det]]]
//                        [--out FILE] [--plot]

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bist/schedule.hpp"
#include "bist/synth.hpp"
#include "bist/verify.hpp"
#include "pipeline/job.hpp"
#include "service/service.hpp"
#include "store/result_store.hpp"
#include "circuits/iscas85_family.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"
#include "sim/bitpar_sim.hpp"
#include "sim/kernel.hpp"
#include "tpg/lfsr.hpp"
#include "tpg/mixed.hpp"
#include "tpg/sweep.hpp"
#include "util/ascii_plot.hpp"
#include "util/deadline.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"
#include "util/wallclock.hpp"

namespace {

using Clock = bist::WallClock;
using bist::seconds_since;

struct PathResult {
  double seconds = 0;
  std::uint64_t gate_evals = 0;
  double evals_per_sec = 0;
  std::uint64_t checksum = 0;  ///< XOR of PO words, cross-checked between paths
};

// Each path runs one untimed warmup pass, then `reps` timed passes keeping
// the fastest (the per-pass work is ~us..ms scale, so min-of-N suppresses
// scheduler jitter).
PathResult run_seed_path(const bist::Netlist& n,
                         std::span<const bist::PatternBlock> blocks, int reps) {
  bist::BitParSim sim(n);
  PathResult r;
  r.seconds = 1e30;
  for (int rep = -1; rep < reps; ++rep) {  // rep -1 = warmup, untimed
    std::uint64_t checksum = 0;
    const auto t0 = Clock::now();
    for (const auto& b : blocks) {
      sim.simulate(b);
      for (bist::GateId o : n.outputs()) checksum ^= sim.value(o) & b.lane_mask();
    }
    if (rep >= 0) r.seconds = std::min(r.seconds, seconds_since(t0));
    r.checksum = checksum;
  }
  r.gate_evals = std::uint64_t(n.logic_gate_count()) * 64 * blocks.size();
  r.evals_per_sec = r.seconds > 0 ? double(r.gate_evals) / r.seconds : 0;
  return r;
}

// Kernel path at W x 64 lanes per pass; W=1 is the classic KernelSim loop.
template <unsigned W>
PathResult run_wide_path(const bist::SimKernel& k,
                         std::span<const bist::PatternBlock> blocks, int reps) {
  bist::WideSimT<W> sim(k);
  PathResult r;
  r.seconds = 1e30;
  for (int rep = -1; rep < reps; ++rep) {
    std::uint64_t checksum = 0;
    const auto t0 = Clock::now();
    for (std::size_t bi = 0; bi < blocks.size();) {
      const std::size_t nb = bist::WideSimT<W>::group_size(blocks, bi);
      sim.simulate(blocks.subspan(bi, nb));
      for (bist::KIndex o : k.outputs()) {
        const auto v = sim.value_at(o);
        if constexpr (W == 1) {
          checksum ^= v & blocks[bi].lane_mask();
        } else {
          for (unsigned j = 0; j < nb; ++j)
            checksum ^= v.w[j] & blocks[bi + j].lane_mask();
        }
      }
      bi += nb;
    }
    if (rep >= 0) r.seconds = std::min(r.seconds, seconds_since(t0));
    r.checksum = checksum;
  }
  r.gate_evals = std::uint64_t(k.schedule().size() + k.constants().size()) *
                 64 * blocks.size();
  r.evals_per_sec = r.seconds > 0 ? double(r.gate_evals) / r.seconds : 0;
  return r;
}

std::string json_num(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

// The wrapper path is the one user-supplied string interpolated into the
// JSON; escape it so e.g. --wrapper-dir values with quotes or backslashes
// cannot break the output.
std::string json_str(const std::string& s) {
  std::ostringstream os;
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\' << c;
    else if (static_cast<unsigned char>(c) < 0x20)
      os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
         << "0123456789abcdef"[c & 0xf];
    else os << c;
  }
  os << '"';
  return os.str();
}

// Per-point equality of the fields the scheduler consumes — the sweep
// engine's contract is that these are bit-identical to the naive loop.
bool same_scheme_point(const bist::MixedSchemeResult& a,
                       const bist::MixedSchemeResult& b) {
  bool ok = true;
  ok = ok && a.lfsr_patterns == b.lfsr_patterns;
  ok = ok && a.tail_faults == b.tail_faults;
  ok = ok && a.podem_detected == b.podem_detected;
  ok = ok && a.redundant == b.redundant;
  ok = ok && a.aborted == b.aborted;
  ok = ok && a.podem_backtracks == b.podem_backtracks;
  ok = ok && a.podem_decisions == b.podem_decisions;
  ok = ok && a.topoff_before_compaction == b.topoff_before_compaction;
  ok = ok && a.topoff_patterns == b.topoff_patterns;
  ok = ok && a.topoff == b.topoff;
  ok = ok && a.lfsr_coverage == b.lfsr_coverage;
  ok = ok && a.lfsr_coverage_weighted == b.lfsr_coverage_weighted;
  ok = ok && a.final_coverage == b.final_coverage;
  ok = ok && a.final_coverage_weighted == b.final_coverage_weighted;
  ok = ok && a.all_verified == b.all_verified;
  ok = ok && a.lfsr_result.first_detected == b.lfsr_result.first_detected;
  ok = ok && a.lfsr_result.coverage == b.lfsr_result.coverage;
  return ok;
}

}  // namespace

namespace {

int run_bench(int argc, char** argv);

// --- Jobs mode: fault-tolerant batch pipeline with durable caching ---------
struct JobModeConfig {
  std::vector<std::string> names;
  std::size_t patterns = 0;
  std::vector<std::size_t> sweep_lengths;
  bist::FaultSimOptions fopt;
  unsigned threads = 0;
  std::uint32_t podem_backtracks = 100;
  bool compress = true;
  std::size_t budget = 0;
  std::string wrapper_dir;
  double deadline_ms = 0;
  double job_timeout_ms = 0;
  std::string cache_dir;
  bool resume = false;
  unsigned retries = 1;
  std::string out_path;
};

int run_job_mode(const JobModeConfig& cfg) {
  std::vector<bist::JobSpec> specs;
  specs.reserve(cfg.names.size());
  for (const std::string& name : cfg.names) {
    bist::JobSpec spec;
    spec.name = name;
    spec.bench_text = bist::write_bench(bist::make_iscas85(name));
    spec.sweep_lengths = cfg.sweep_lengths;
    spec.tpg.lfsr_patterns = cfg.patterns;
    spec.tpg.fsim = cfg.fopt;
    spec.tpg.podem.backtrack_limit = cfg.podem_backtracks;
    spec.tpg.podem_threads = cfg.threads;
    spec.tpg.compress = cfg.compress;
    spec.schedule.test_time_budget = cfg.budget;
    spec.schedule.lfsr_degree = spec.tpg.lfsr_degree;
    spec.schedule.lfsr_seed = spec.tpg.lfsr_seed;
    spec.sweep_deadline_s = cfg.deadline_ms / 1000.0;
    spec.job_timeout_s = cfg.job_timeout_ms / 1000.0;
    spec.retry.attempts = std::max(1u, cfg.retries);
    specs.push_back(std::move(spec));
  }

  // The store and the manifest live side by side under --cache-dir; a batch
  // without one runs uncached (and --resume has nothing to replay from).
  std::unique_ptr<bist::ResultStore> store;
  bist::BatchOptions bo;
  bo.threads = cfg.threads;
  bo.resume = cfg.resume;
  if (!cfg.cache_dir.empty()) {
    bist::StoreOptions so;
    so.dir = cfg.cache_dir;
    store = std::make_unique<bist::ResultStore>(std::move(so));
    bo.store = store.get();
    bo.manifest_path = cfg.cache_dir + "/batch.manifest";
  } else if (cfg.resume) {
    std::cerr << "note: --resume without --cache-dir has no manifest to "
                 "replay; running cold\n";
  }

  const auto t0 = Clock::now();
  const bist::BatchResult batch = bist::run_job_batch(specs, bo);
  const double batch_secs = seconds_since(t0);

  bool any_error = false;
  std::uint64_t retry_attempts = 0;  // extra tries beyond the first, all stages
  std::ostringstream js;
  js << "{\n  \"bench\": \"job_batch\",\n  \"patterns\": " << cfg.patterns
     << ",\n  \"retries\": " << cfg.retries
     << ",\n  \"resume\": " << (cfg.resume ? "true" : "false")
     << ",\n  \"jobs\": [\n";
  for (std::size_t i = 0; i < batch.reports.size(); ++i) {
    const bist::JobReport& rep = batch.reports[i];
    any_error = any_error || rep.status.code == bist::StageCode::Error;

    if (!rep.wrapper_bench.empty() && !cfg.wrapper_dir.empty()) {
      const std::string wf = cfg.wrapper_dir + "/wrapper_" + rep.name + ".bench";
      std::ofstream f(wf);
      f << rep.wrapper_bench;
      f.flush();
      if (!f) std::cerr << "warning: could not write " << wf << "\n";
    }

    const char* source = rep.cache.manifest ? "manifest"
                         : rep.cache.hit    ? "cache"
                                            : "computed";
    std::cout << rep.name << ": job "
              << bist::stage_code_name(rep.status.code) << " (" << source
              << "), L=" << rep.plan.lfsr_patterns << " + "
              << rep.plan.topoff_patterns << " ROM, coverage "
              << bist::format_fixed(100 * rep.plan.final_coverage, 2)
              << "%, wrapper "
              << (rep.wrapper_ok ? "ok" : "NOT VERIFIED")
              << (rep.degraded ? " [DEGRADED]" : "") << " ("
              << bist::format_fixed(rep.seconds, 2) << "s)\n";

    js << (i ? ",\n" : "") << "    {\n      \"name\": " << json_str(rep.name)
       << ",\n      \"status\": "
       << json_str(std::string(bist::stage_code_name(rep.status.code)))
       << ",\n      \"degraded\": " << (rep.degraded ? "true" : "false")
       << ",\n      \"wrapper_ok\": " << (rep.wrapper_ok ? "true" : "false")
       << ",\n      \"cache\": {\"consulted\": "
       << (rep.cache.consulted ? "true" : "false")
       << ", \"hit\": " << (rep.cache.hit ? "true" : "false")
       << ", \"stored\": " << (rep.cache.stored ? "true" : "false")
       << ", \"quarantined\": " << (rep.cache.quarantined ? "true" : "false")
       << ", \"manifest\": " << (rep.cache.manifest ? "true" : "false")
       << ", \"note\": " << json_str(rep.cache.note) << "},\n"
       << "      \"stages\": [";
    for (std::size_t s = 0; s < rep.stages.size(); ++s) {
      const bist::StageReport& sr = rep.stages[s];
      retry_attempts += sr.attempts > 0 ? sr.attempts - 1 : 0;
      js << (s ? ", " : "") << "{\"name\": " << json_str(sr.name)
         << ", \"status\": "
         << json_str(std::string(bist::stage_code_name(sr.status.code)))
         << ", \"attempts\": " << sr.attempts
         << ", \"seconds\": " << json_num(sr.seconds) << "}";
    }
    js << "],\n"
       << "      \"chosen_length\": " << rep.plan.lfsr_patterns << ",\n"
       << "      \"topoff_patterns\": " << rep.plan.topoff_patterns << ",\n"
       << "      \"test_time\": " << rep.plan.test_time << ",\n"
       << "      \"rom_bits\": " << rep.plan.rom_bits << ",\n"
       << "      \"area_bits\": " << rep.plan.area.area_bits() << ",\n"
       << "      \"final_coverage\": " << json_num(rep.plan.final_coverage)
       << ",\n"
       << "      \"selfsim_cycles\": " << rep.verification.cycles << ",\n"
       << "      \"selfsim_coverage\": "
       << json_num(rep.verification.achieved_coverage) << ",\n"
       << "      \"seconds\": " << json_num(rep.seconds) << "\n    }";
  }
  const bist::StoreStats ss =
      store ? store->stats() : bist::StoreStats{};
  js << "\n  ],\n  \"cache_stats\": {\"sweep_hits\": " << ss.hits
     << ", \"sweep_misses\": " << ss.misses << ", \"stored\": " << ss.stores
     << ", \"store_failures\": " << ss.store_failures
     << ", \"quarantined\": " << ss.quarantined
     << ", \"manifest_loaded\": " << batch.manifest_loaded
     << ", \"manifest_hits\": " << batch.manifest_hits
     << ", \"retry_attempts\": " << retry_attempts
     << "},\n  \"seconds\": " << json_num(batch_secs) << "\n}\n";

  std::ofstream out(cfg.out_path);
  out << js.str();
  out.flush();
  if (!out) {
    std::cerr << "error: could not write " << cfg.out_path << "\n";
    return 1;
  }
  std::cout << "batch: " << batch.reports.size() << " jobs in "
            << bist::format_fixed(batch_secs, 2) << "s — sweep cache "
            << ss.hits << " hits / " << ss.misses << " misses, " << ss.stores
            << " stored, " << ss.quarantined << " quarantined, manifest "
            << batch.manifest_hits << "/" << batch.manifest_loaded
            << " replayed, " << retry_attempts << " retries\n";
  std::cout << "wrote " << cfg.out_path << "\n";
  if (any_error) {
    std::cerr << "error: a job ended in an Error status\n";
    return 1;
  }
  return 0;
}

// --- Service mode: long-lived resilient job server -------------------------
//
// --serve runs the JobService front end: submissions arrive as text lines —
// `<circuit> [client=NAME] [priority=N]` — either from stdin (default, until
// EOF or a line reading `STOP`) or from a spool directory (--spool DIR:
// every *.job file is read line by line, submitted, and renamed to
// *.job.done; a `stop.ctl` sentinel file requests a full drain and exit;
// move files into the spool atomically).  Unknown circuit names become jobs
// whose bench text is the raw line, so a malformed submission is contained
// as a parse-stage Error report instead of killing the server.  Every
// submission streams exactly one JSONL report (--stream FILE, appended and
// flushed per line) whose object shape matches the --jobs per-job entries,
// so a service stream and a cold batch run are directly comparable once
// volatile fields (seconds, attempts, cache provenance) are stripped.
// SIGTERM/SIGINT trigger a graceful drain bounded by --drain-ms: in-flight
// work is cancelled at the deadline, queued work is dropped WITH a report,
// and the manifest journal under --cache-dir lets a restarted server
// (--resume) replay completed jobs at admission.  --chaos
// stage:circuit[:times[:transient|det]] arms the process-global fault
// injection hook for chaos runs.  A health snapshot JSON is published
// atomically to --health every --health-period-ms and once more at exit.

volatile std::sig_atomic_t g_stop_signal = 0;

void handle_stop_signal(int) { g_stop_signal = 1; }

struct ServeConfig {
  std::string spool_dir;  // empty = read submissions from stdin
  std::string stream_path = "BENCH_service.jsonl";
  std::string health_path = "BENCH_service_health.json";
  double health_period_ms = 500;
  std::size_t queue_limit = 64;
  double watchdog_ms = 0;
  double grace_ms = 250;
  int quarantine_after = 3;
  double drain_ms = 5000;
  std::string chaos;  // stage:circuit[:times[:transient|det]]
  JobModeConfig job;  // shared spec/store/manifest knobs
};

std::string jobreport_jsonl(const bist::JobReport& rep) {
  std::ostringstream js;
  js << "{\"name\": " << json_str(rep.name) << ", \"status\": "
     << json_str(std::string(bist::stage_code_name(rep.status.code)))
     << ", \"status_message\": " << json_str(rep.status.message)
     << ", \"degraded\": " << (rep.degraded ? "true" : "false")
     << ", \"wrapper_ok\": " << (rep.wrapper_ok ? "true" : "false")
     << ", \"cache\": {\"consulted\": "
     << (rep.cache.consulted ? "true" : "false")
     << ", \"hit\": " << (rep.cache.hit ? "true" : "false")
     << ", \"stored\": " << (rep.cache.stored ? "true" : "false")
     << ", \"quarantined\": " << (rep.cache.quarantined ? "true" : "false")
     << ", \"manifest\": " << (rep.cache.manifest ? "true" : "false")
     << ", \"note\": " << json_str(rep.cache.note) << "}, \"stages\": [";
  for (std::size_t s = 0; s < rep.stages.size(); ++s) {
    const bist::StageReport& sr = rep.stages[s];
    js << (s ? ", " : "") << "{\"name\": " << json_str(sr.name)
       << ", \"status\": "
       << json_str(std::string(bist::stage_code_name(sr.status.code)))
       << ", \"attempts\": " << sr.attempts
       << ", \"seconds\": " << json_num(sr.seconds) << "}";
  }
  js << "], \"chosen_length\": " << rep.plan.lfsr_patterns
     << ", \"topoff_patterns\": " << rep.plan.topoff_patterns
     << ", \"test_time\": " << rep.plan.test_time
     << ", \"rom_bits\": " << rep.plan.rom_bits
     << ", \"area_bits\": " << rep.plan.area.area_bits()
     << ", \"final_coverage\": " << json_num(rep.plan.final_coverage)
     << ", \"selfsim_cycles\": " << rep.verification.cycles
     << ", \"selfsim_coverage\": "
     << json_num(rep.verification.achieved_coverage)
     << ", \"seconds\": " << json_num(rep.seconds) << "}";
  return js.str();
}

int run_serve_mode(const ServeConfig& cfg) {
  namespace fs = std::filesystem;

  if (!cfg.chaos.empty()) {
    std::vector<std::string> parts;
    for (auto tok : bist::split(cfg.chaos, ":")) parts.emplace_back(tok);
    if (parts.size() < 2) {
      std::cerr << "error: --chaos wants stage:circuit[:times[:transient]]\n";
      return 2;
    }
    const int times = parts.size() > 2 ? std::stoi(parts[2]) : -1;
    const bool transient = parts.size() > 3 && parts[3] == "transient";
    bist::set_injected_failure(parts[0], parts[1], times, transient);
    std::cout << "chaos: injecting " << (transient ? "transient" : "sticky")
              << " failure at " << parts[0] << "/" << parts[1] << " x"
              << times << "\n";
  }

  std::unique_ptr<bist::ResultStore> store;
  bist::ServiceOptions so;
  so.threads = cfg.job.threads;
  so.queue_limit = cfg.queue_limit;
  so.watchdog_timeout_s = cfg.watchdog_ms / 1000.0;
  so.stuck_grace_s = cfg.grace_ms / 1000.0;
  so.quarantine_after = cfg.quarantine_after;
  so.health_path = cfg.health_path;
  so.health_period_s = cfg.health_period_ms / 1000.0;
  so.resume = cfg.job.resume;
  if (!cfg.job.cache_dir.empty()) {
    bist::StoreOptions sto;
    sto.dir = cfg.job.cache_dir;
    store = std::make_unique<bist::ResultStore>(std::move(sto));
    so.store = store.get();
    so.manifest_path = cfg.job.cache_dir + "/service.manifest";
  } else if (cfg.job.resume) {
    std::cerr << "note: --resume without --cache-dir has no manifest to "
                 "replay; running cold\n";
  }

  std::ofstream stream(cfg.stream_path, std::ios::app);
  if (!stream) {
    std::cerr << "error: could not open stream " << cfg.stream_path << "\n";
    return 1;
  }
  std::uint64_t streamed = 0;
  bist::JobService svc(so, [&](const bist::JobReport& rep) {
    stream << jobreport_jsonl(rep) << "\n";
    stream.flush();  // one durable line per report: tail-able and kill-safe
    ++streamed;      // sink calls are serialized by the service
  });

  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);

  // One submission line: `<circuit> [client=NAME] [priority=N]`.
  const auto submit_line = [&](const std::string& line) {
    std::istringstream is(line);
    std::string name, tok, client;
    int priority = 0;
    if (!(is >> name) || name[0] == '#') return;  // blank / comment
    while (is >> tok) {
      if (tok.rfind("client=", 0) == 0) client = tok.substr(7);
      else if (tok.rfind("priority=", 0) == 0)
        priority = std::stoi(tok.substr(9));
    }
    bist::JobSpec spec;
    spec.name = name;
    try {
      spec.bench_text = bist::write_bench(bist::make_iscas85(name));
    } catch (const std::exception&) {
      // Unknown circuit: ship the raw line as the bench text so the parse
      // stage contains the failure as a per-job Error, not a server fault.
      spec.bench_text = line;
    }
    spec.sweep_lengths = cfg.job.sweep_lengths;
    spec.tpg.lfsr_patterns = cfg.job.patterns;
    spec.tpg.fsim = cfg.job.fopt;
    spec.tpg.podem.backtrack_limit = cfg.job.podem_backtracks;
    spec.tpg.podem_threads = cfg.job.threads;
    spec.tpg.compress = cfg.job.compress;
    spec.schedule.test_time_budget = cfg.job.budget;
    spec.schedule.lfsr_degree = spec.tpg.lfsr_degree;
    spec.schedule.lfsr_seed = spec.tpg.lfsr_seed;
    spec.sweep_deadline_s = cfg.job.deadline_ms / 1000.0;
    spec.job_timeout_s = cfg.job.job_timeout_ms / 1000.0;
    spec.retry.attempts = std::max(1u, cfg.job.retries);
    const bist::SubmitResult r = svc.submit(std::move(spec), client, priority);
    std::cout << "submit " << name << ": " << bist::submit_code_name(r.code)
              << " (ticket " << r.ticket << ")\n";
  };

  bool stop_requested = false;
  if (cfg.spool_dir.empty()) {
    // Stdin mode: one submission per line until EOF or STOP.  (Signals may
    // not interrupt a blocked read on every platform; the spool mode below
    // is the one CI drives SIGTERM against.)
    std::string line;
    while (!g_stop_signal && std::getline(std::cin, line)) {
      if (line == "STOP") {
        stop_requested = true;
        break;
      }
      submit_line(line);
    }
  } else {
    std::error_code ec;
    fs::create_directories(cfg.spool_dir, ec);
    std::cout << "serving from spool " << cfg.spool_dir << " (stop: SIGTERM"
              << " or stop.ctl)\n";
    while (!g_stop_signal && !stop_requested) {
      // Deterministic intake order: *.job files sorted by name.
      std::vector<fs::path> batch;
      for (const auto& ent : fs::directory_iterator(cfg.spool_dir, ec)) {
        if (ent.path().extension() == ".job") batch.push_back(ent.path());
      }
      std::sort(batch.begin(), batch.end());
      for (const fs::path& p : batch) {
        std::ifstream f(p);
        std::string line;
        while (std::getline(f, line)) submit_line(line);
        fs::rename(p, p.string() + ".done", ec);  // consume exactly once
      }
      if (fs::exists(fs::path(cfg.spool_dir) / "stop.ctl", ec)) {
        stop_requested = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  const char* why = g_stop_signal ? "signal" : stop_requested ? "stop.ctl"
                                                              : "eof";
  std::cout << "drain (" << why << "): deadline "
            << bist::format_fixed(cfg.drain_ms, 0) << "ms\n";
  // stop.ctl / EOF mean "finish everything"; a signal gets the bounded
  // deadline so shutdown cannot hang behind a wedged job.
  svc.drain(g_stop_signal ? cfg.drain_ms / 1000.0 : -1.0);
  bist::clear_injected_failure();

  const bist::ServiceHealth h = svc.health();
  std::cout << "service: " << h.submitted << " submitted, " << h.accepted
            << " accepted, " << h.replayed << " replayed, " << h.completed_ok
            << " ok, " << h.completed_error << " error, "
            << h.completed_stopped << " stopped, " << h.drain_dropped
            << " dropped, "
            << (h.rejected_overload + h.rejected_quarantine +
                h.rejected_stopping)
            << " rejected, " << h.watchdog_kills << " watchdog kills; "
            << streamed << " reports streamed to " << cfg.stream_path << "\n";
  // Accounting invariant: exactly one streamed report per submission.
  if (streamed != h.submitted) {
    std::cerr << "error: streamed " << streamed << " reports for "
              << h.submitted << " submissions\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_bench(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

namespace {

int run_bench(int argc, char** argv) {
  std::size_t patterns = 10240;
  int reps = 5;
  unsigned threads = 0;  // 0 = hardware concurrency
  unsigned width = bist::kMaxWordWidth;
  std::string out_path = "BENCH_fault_sim.json";
  std::vector<std::string> names = bist::iscas85_names();
  bool plot = false;
  bool mixed = true;
  std::uint32_t podem_backtracks = 100;
  int mixed_reps = 2;
  bool sweep = true;
  int sweep_reps = 2;
  std::vector<std::size_t> sweep_lengths;  // empty = derive from --patterns
  bool run_bist = true;
  bool compress = true;            // compressed test data (seeds + MISR)
  std::size_t budget = 0;          // scheduler test-time budget, 0 = none
  std::string wrapper_dir = ".";   // where wrapper_<circuit>.bench lands
  double deadline_ms = 0;          // anytime deadline per timed section, 0 = off
  double job_timeout_ms = 0;       // wall-clock cap per circuit pipeline, 0 = off
  bool jobs_mode = false;          // run the fault-tolerant batch pipeline
  std::string cache_dir;           // durable sweep store root; implies jobs
  bool resume = false;             // replay the batch manifest; implies jobs
  unsigned retries = 1;            // stage attempts (1 = no retry)
  bool serve_mode = false;         // long-lived job service front end
  ServeConfig serve;               // --serve knobs (spool, stream, watchdog)

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--patterns") {
      patterns = std::stoul(next());
    } else if (a == "--reps") {
      reps = std::stoi(next());
    } else if (a == "--threads") {
      threads = static_cast<unsigned>(std::stoul(next()));
    } else if (a == "--width") {
      width = static_cast<unsigned>(std::stoul(next()));
    } else if (a == "--out") {
      out_path = next();
    } else if (a == "--plot") {
      plot = true;
    } else if (a == "--no-mixed") {
      mixed = false;
    } else if (a == "--podem-backtracks") {
      podem_backtracks = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (a == "--mixed-reps") {
      mixed_reps = std::stoi(next());
    } else if (a == "--no-sweep") {
      sweep = false;
    } else if (a == "--sweep-reps") {
      sweep_reps = std::stoi(next());
    } else if (a == "--no-bist") {
      run_bist = false;
    } else if (a == "--no-compress") {
      compress = false;
    } else if (a == "--budget") {
      budget = std::stoul(next());
    } else if (a == "--wrapper-dir") {
      wrapper_dir = next();
    } else if (a == "--deadline-ms") {
      deadline_ms = std::stod(next());
    } else if (a == "--job-timeout-ms") {
      job_timeout_ms = std::stod(next());
    } else if (a == "--jobs") {
      jobs_mode = true;
    } else if (a == "--cache-dir") {
      cache_dir = next();
      jobs_mode = true;
    } else if (a == "--resume") {
      resume = true;
      jobs_mode = true;
    } else if (a == "--retries") {
      retries = static_cast<unsigned>(std::stoul(next()));
    } else if (a == "--serve") {
      serve_mode = true;
    } else if (a == "--spool") {
      serve.spool_dir = next();
      serve_mode = true;
    } else if (a == "--stream") {
      serve.stream_path = next();
      serve_mode = true;
    } else if (a == "--drain-ms") {
      serve.drain_ms = std::stod(next());
    } else if (a == "--queue-limit") {
      serve.queue_limit = std::stoul(next());
    } else if (a == "--watchdog-ms") {
      serve.watchdog_ms = std::stod(next());
    } else if (a == "--grace-ms") {
      serve.grace_ms = std::stod(next());
    } else if (a == "--quarantine-after") {
      serve.quarantine_after = std::stoi(next());
    } else if (a == "--health") {
      serve.health_path = next();
    } else if (a == "--health-period-ms") {
      serve.health_period_ms = std::stod(next());
    } else if (a == "--chaos") {
      serve.chaos = next();
    } else if (a == "--sweep-lengths") {
      sweep_lengths.clear();
      const std::string list = next();
      for (auto tok : bist::split(list, ","))
        sweep_lengths.push_back(std::stoul(std::string(tok)));
    } else if (a == "--circuits") {
      names.clear();
      const std::string list = next();  // keep alive: split returns views
      for (auto tok : bist::split(list, ","))
        names.emplace_back(tok);
    } else {
      std::cerr << "usage: bench_fault_sim [--patterns N] [--reps N] "
                   "[--threads N] [--width W] [--circuits a,b] "
                   "[--podem-backtracks N] [--no-mixed] [--mixed-reps N] "
                   "[--no-sweep] [--sweep-reps N] [--sweep-lengths a,b,c] "
                   "[--no-bist] [--no-compress] [--budget N] "
                   "[--wrapper-dir DIR] "
                   "[--deadline-ms D] [--job-timeout-ms J] "
                   "[--jobs] [--cache-dir DIR] [--resume] [--retries N] "
                   "[--serve] [--spool DIR] [--stream FILE] [--drain-ms N] "
                   "[--queue-limit N] [--watchdog-ms N] [--grace-ms N] "
                   "[--quarantine-after N] [--health FILE] "
                   "[--health-period-ms N] [--chaos stage:circuit[:n[:kind]]] "
                   "[--out FILE] [--plot]\n";
      return 2;
    }
  }
  if (patterns == 0 || patterns % 64 != 0) patterns = ((patterns / 64) + 1) * 64;
  if (reps < 1) reps = 1;
  if (mixed_reps < 1) mixed_reps = 1;
  if (sweep_reps < 1) sweep_reps = 1;
  // Deadline-shaped runs are not repeatable measurements: a warmup or a
  // best-of-N rep would consume a different slice of the budget each pass and
  // compare apples to anytime oranges.  Each deadlined section runs exactly
  // once against a fresh Deadline, and the naive cross-check (which expects
  // bit-identical Complete points) is skipped.
  const bool anytime = deadline_ms > 0 || job_timeout_ms > 0;
  if (anytime) {
    mixed_reps = 1;
    sweep_reps = 1;
  }
  if (sweep_lengths.empty()) {
    // Six points spanning the trade-off curve up to the full phase length.
    for (const double f : {0.125, 0.25, 0.375, 0.5, 0.75, 1.0}) {
      const auto len = static_cast<std::size_t>(double(patterns) * f);
      if (len && (sweep_lengths.empty() || sweep_lengths.back() != len))
        sweep_lengths.push_back(len);
    }
  }

  bist::FaultSimOptions fopt;
  fopt.threads = threads;
  fopt.word_width = width;

  if (serve_mode) {
    serve.job.patterns = patterns;
    serve.job.sweep_lengths = sweep_lengths;
    serve.job.fopt = fopt;
    serve.job.threads = threads;
    serve.job.podem_backtracks = podem_backtracks;
    serve.job.compress = compress;
    serve.job.budget = budget;
    serve.job.deadline_ms = deadline_ms;
    serve.job.job_timeout_ms = job_timeout_ms;
    serve.job.cache_dir = cache_dir;
    serve.job.resume = resume;
    serve.job.retries = retries;
    return run_serve_mode(serve);
  }

  if (jobs_mode) {
    JobModeConfig cfg;
    cfg.names = names;
    cfg.patterns = patterns;
    cfg.sweep_lengths = sweep_lengths;
    cfg.fopt = fopt;
    cfg.threads = threads;
    cfg.podem_backtracks = podem_backtracks;
    cfg.compress = compress;
    cfg.budget = budget;
    cfg.wrapper_dir = wrapper_dir;
    cfg.deadline_ms = deadline_ms;
    cfg.job_timeout_ms = job_timeout_ms;
    cfg.cache_dir = cache_dir;
    cfg.resume = resume;
    cfg.retries = retries;
    cfg.out_path = out_path == "BENCH_fault_sim.json" ? "BENCH_job_batch.json"
                                                      : out_path;
    return run_job_mode(cfg);
  }

  std::ostringstream js;
  js << "{\n  \"bench\": \"fault_sim\",\n  \"patterns\": " << patterns
     << ",\n  \"circuits\": [\n";

  double c6288_speedup = 0;
  bool all_verified = true;
  bool wrappers_ok = true;
  bool first = true;
  for (const std::string& name : names) {
    // Per-circuit robustness budget: each deadlined section gets the tighter
    // of --deadline-ms and whatever --job-timeout-ms has left for this
    // circuit's pipeline (so a blown job budget degrades later sections
    // immediately instead of overrunning).
    const auto circuit_t0 = Clock::now();
    const auto section_budget = [&]() -> double {
      double s = -1;  // -1 = no deadline
      if (deadline_ms > 0) s = deadline_ms / 1000.0;
      if (job_timeout_ms > 0) {
        const double rem =
            std::max(0.0, job_timeout_ms / 1000.0 - seconds_since(circuit_t0));
        s = s < 0 ? rem : std::min(s, rem);
      }
      return s;
    };
    // Section deadlines live at circuit scope: options structs hold a raw
    // pointer into them across the section's run.
    bist::Deadline mixed_dl, sweep_dl;

    bist::Netlist n = bist::make_iscas85(name);
    const bist::NetlistStats st = bist::compute_stats(n);
    const bist::SimKernel kernel(n);

    // One LFSR stream per use so both logic-sim paths see identical patterns.
    const unsigned degree = 32;
    bist::Lfsr lfsr = bist::Lfsr::maximal(degree, 0xBADC0FFEu);
    const auto blocks = lfsr.blocks(n.input_count(), patterns);

    const PathResult seed = run_seed_path(n, blocks, reps);
    const PathResult kern = run_wide_path<1>(kernel, blocks, reps);
    const PathResult wide = run_wide_path<bist::kMaxWordWidth>(kernel, blocks, reps);
    if (seed.checksum != kern.checksum || seed.checksum != wide.checksum) {
      std::cerr << name << ": seed/kernel/wide output mismatch!\n";
      return 1;
    }
    const double speedup =
        kern.evals_per_sec > 0 && seed.evals_per_sec > 0
            ? kern.evals_per_sec / seed.evals_per_sec
            : 0;
    if (name.rfind("c6288", 0) == 0) c6288_speedup = speedup;

    // Fault-sim section: same warmup + best-of-N discipline.  Every rep
    // restarts from the full fault list and produces identical results, so
    // only the timing varies.
    bist::FaultSimulator fsim(kernel);
    bist::FaultSimResult fr = fsim.run(blocks, fopt);  // warmup (kept: results)
    double fsecs = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
      const auto tf0 = Clock::now();
      fr = fsim.run(blocks, fopt);
      fsecs = std::min(fsecs, seconds_since(tf0));
    }

    std::cout << name << ": " << st.gates << " gates, seed "
              << bist::format_fixed(seed.evals_per_sec / 1e6, 1)
              << " Mevals/s, kernel "
              << bist::format_fixed(kern.evals_per_sec / 1e6, 1)
              << " Mevals/s (x" << bist::format_fixed(speedup, 2) << "), wide["
              << bist::kMaxWordWidth << "x64] "
              << bist::format_fixed(wide.evals_per_sec / 1e6, 1)
              << " Mevals/s, faults " << fr.detected << "/" << fr.sim_faults
              << " detected (cov "
              << bist::format_fixed(100 * fr.final_coverage(), 2) << "%, "
              << bist::format_fixed(fsecs ? fr.detected / fsecs : 0, 0)
              << " dropped/s, " << fr.threads << " threads, "
              << fr.word_width << "x64 lanes)\n";

    bist::MixedTpgOptions mopt;
    mopt.lfsr_patterns = patterns;
    mopt.fsim = fopt;
    mopt.podem.backtrack_limit = podem_backtracks;
    mopt.podem_threads = threads;
    mopt.compress = compress;

    bist::MixedSchemeResult mr;
    double msecs = 0;
    if (mixed && anytime) {
      mixed_dl = bist::Deadline::after(section_budget());
      mopt.deadline = &mixed_dl;
    }
    if (mixed) {
      // Same hygiene as the sim sections: one untimed warmup, then
      // mixed_reps timed full-pipeline passes (LFSR phase included — the
      // per-phase breakdown wants the real thing, not the cached fr), best
      // kept.  Results are identical every pass; only timing varies.
      msecs = 1e30;
      // anytime: no warmup pass — it would burn the (single, shared) budget.
      for (int rep = anytime ? 0 : -1; rep < mixed_reps; ++rep) {
        const auto tm0 = Clock::now();
        bist::MixedSchemeResult cur = bist::run_mixed_tpg(kernel, fsim, mopt);
        const double s = seconds_since(tm0);
        if (rep < 0 || s < msecs) mr = std::move(cur);  // phase times follow best
        if (rep >= 0) msecs = std::min(msecs, s);
      }
      all_verified = all_verified && mr.all_verified;
      std::cout << name << ": mixed scheme " << mr.lfsr_patterns << " LFSR + "
                << mr.topoff_patterns << " top-off patterns (tail "
                << mr.tail_faults << ": " << mr.podem_detected << " podem, "
                << mr.redundant << " redundant, " << mr.aborted
                << " aborted), coverage "
                << bist::format_fixed(100 * mr.lfsr_coverage, 2) << "% -> "
                << bist::format_fixed(100 * mr.final_coverage, 2) << "%"
                << " (" << bist::format_fixed(msecs, 2) << "s: lfsr "
                << bist::format_fixed(mr.lfsr_seconds, 2) << " podem "
                << bist::format_fixed(mr.podem_seconds, 2) << " compact "
                << bist::format_fixed(mr.compact_seconds, 2) << ")"
                << (mr.all_verified ? "" : " [VERIFY FAILED]") << "\n";
      if (!mr.status.ok())
        std::cout << name << ": mixed scheme degraded to "
                  << bist::point_state_name(mr.state) << " ("
                  << bist::stage_code_name(mr.status.code) << ")\n";
    }

    // --- Incremental sweep vs. the naive per-point loop ------------------
    bist::MixedSweepResult sw;
    double naive_secs = 0, sweep_secs = 0;
    bool sweep_match = true;
    if (mixed && sweep) {
      // Naive baseline: independent run_mixed_tpg per length, each paying
      // its own LFSR fault-sim pass and full PODEM tail.  Timed once — it
      // is the expensive side of the comparison, and the min-of-N treatment
      // is reserved for the engine under test.
      std::vector<bist::MixedSchemeResult> naive;
      if (!anytime) {
        const auto tn0 = Clock::now();
        for (const std::size_t len : sweep_lengths) {
          bist::MixedTpgOptions po = mopt;
          po.lfsr_patterns = len;
          naive.push_back(bist::run_mixed_tpg(kernel, fsim, po));
        }
        naive_secs = seconds_since(tn0);
      }

      if (anytime) {
        sweep_dl = bist::Deadline::after(section_budget());
        mopt.deadline = &sweep_dl;
      }
      sweep_secs = 1e30;
      for (int rep = anytime ? 0 : -1; rep < sweep_reps; ++rep) {
        const auto ts0 = Clock::now();
        bist::MixedSweepResult cur =
            bist::run_mixed_sweep(kernel, fsim, sweep_lengths, mopt);
        const double s = seconds_since(ts0);
        if (rep < 0 || s < sweep_secs) sw = std::move(cur);
        if (rep >= 0) sweep_secs = std::min(sweep_secs, s);
      }

      if (!anytime) {
        for (std::size_t p = 0; p < sweep_lengths.size(); ++p)
          sweep_match = sweep_match && same_scheme_point(sw.points[p], naive[p]);
        if (!sweep_match) {
          std::cerr << name << ": sweep point results diverge from the naive "
                       "per-point loop!\n";
          return 1;
        }
      }
      for (const auto& pt : sw.points)
        all_verified = all_verified && pt.all_verified;
      const double ratio = sweep_secs > 0 ? naive_secs / sweep_secs : 0;
      std::cout << name << ": sweep " << sweep_lengths.size() << " lengths in "
                << bist::format_fixed(sweep_secs, 2) << "s vs naive "
                << bist::format_fixed(naive_secs, 2) << "s (x"
                << bist::format_fixed(ratio, 1) << ", podem "
                << sw.stats.podem_calls << " calls + "
                << sw.stats.podem_cache_hits << " cache hits, "
                << sw.stats.podem_threads << " threads)\n";
      if (!sw.status.ok()) {
        std::cout << name << ": sweep degraded ("
                  << bist::stage_code_name(sw.status.code) << "), points:";
        for (const auto& pt : sw.points)
          std::cout << " " << bist::point_state_name(pt.state);
        std::cout << "\n";
      }
    }

    // --- BIST hardware plan: schedule -> synthesize -> self-verify --------
    bist::BistPlan plan;
    bist::BistSynthResult syn;
    bist::WrapperVerification wv;
    std::string wrapper_file;
    double sched_secs = 0, synth_secs = 0, selfsim_secs = 0;
    const bool do_bist = mixed && sweep && run_bist;
    if (!do_bist && run_bist && first) {
      // --budget / --wrapper-dir would be silently dead otherwise.
      std::cerr << "note: BIST plan skipped (" << (mixed ? "--no-sweep" : "--no-mixed")
                << " disables the sweep it schedules from)\n";
    }
    if (do_bist) {
      bist::ScheduleOptions so;
      so.test_time_budget = budget;
      so.lfsr_degree = mopt.lfsr_degree;
      so.lfsr_seed = mopt.lfsr_seed;
      const auto tp0 = Clock::now();
      plan = bist::schedule_bist(sw, n.input_count(), so);
      sched_secs = seconds_since(tp0);

      const auto ts0 = Clock::now();
      syn = bist::synthesize_bist_wrapper(n, plan);
      synth_secs = seconds_since(ts0);

      wrapper_file = wrapper_dir + "/wrapper_" + name + ".bench";
      std::ofstream wf(wrapper_file);
      wf << bist::write_bench(syn.wrapper);
      wf.flush();
      if (!wf) {
        std::cerr << "error: could not write " << wrapper_file << "\n";
        return 1;
      }

      const auto tv0 = Clock::now();
      wv = bist::verify_wrapper(syn.wrapper, n, plan,
                                sw.points[plan.point_index], fopt);
      selfsim_secs = seconds_since(tv0);
      wrappers_ok = wrappers_ok && wv.ok();

      std::cout << name << ": bist plan L=" << plan.lfsr_patterns << " + "
                << plan.topoff_patterns << " ROM patterns ("
                << plan.rom_bits << " ROM bits, "
                << plan.area.area_bits() << " area bits, "
                << bist::format_fixed(syn.actual.total(), 1)
                << " GE), wrapper " << syn.wrapper.gate_count() << " gates -> "
                << wrapper_file << ", self-sim " << wv.cycles
                << " cycles coverage "
                << bist::format_fixed(100 * wv.achieved_coverage, 2) << "%"
                << (wv.ok() ? " == plan" : " [PLAN MISMATCH]") << " ("
                << bist::format_fixed(sched_secs + synth_secs + selfsim_secs, 2)
                << "s)" << (plan.degraded ? " [DEGRADED: LFSR-only tier]" : "")
                << "\n";
      if (plan.comp.enabled) {
        const std::uint64_t decoded =
            std::uint64_t(plan.topoff_patterns) * n.input_count();
        const std::uint64_t stored =
            plan.rom_bits + plan.comp.seed_rom_bits();
        std::cout << name << ": compressed data " << plan.comp.seeds.size()
                  << " seeds (" << plan.comp.seed_rom_bits()
                  << " seed-ROM bits) + " << plan.comp.fallback_rows()
                  << " fallback rows (" << plan.rom_bits
                  << " decoded bits) vs " << decoded
                  << " bits fully decoded (x"
                  << bist::format_fixed(
                         stored ? double(decoded) / double(stored) : 0, 2)
                  << "), MISR K=" << plan.comp.misr.degree << " aliasing "
                  << wv.aliasing.escapes << "/" << wv.aliasing.detected_checked
                  << " escapes\n";
      }
    }

    if (!first) js << ",\n";
    first = false;
    js << "    {\n      \"name\": \"" << name << "\",\n"
       << "      \"gates\": " << st.gates << ",\n"
       << "      \"inputs\": " << st.inputs << ",\n"
       << "      \"outputs\": " << st.outputs << ",\n"
       << "      \"depth\": " << st.depth << ",\n"
       << "      \"logic_sim\": {\n"
       << "        \"patterns\": " << patterns << ",\n"
       << "        \"reps\": " << reps << ",\n"
       << "        \"seed_bitpar\": {\"seconds_best\": " << json_num(seed.seconds)
       << ", \"gate_evals\": " << seed.gate_evals
       << ", \"gate_evals_per_sec\": " << json_num(seed.evals_per_sec) << "},\n"
       << "        \"kernel\": {\"seconds_best\": " << json_num(kern.seconds)
       << ", \"gate_evals\": " << kern.gate_evals
       << ", \"gate_evals_per_sec\": " << json_num(kern.evals_per_sec) << "},\n"
       << "        \"kernel_wide\": {\"word_width\": " << bist::kMaxWordWidth
       << ", \"seconds_best\": " << json_num(wide.seconds)
       << ", \"gate_evals\": " << wide.gate_evals
       << ", \"gate_evals_per_sec\": " << json_num(wide.evals_per_sec) << "},\n"
       << "        \"speedup_kernel_over_seed\": " << json_num(speedup) << "\n"
       << "      },\n"
       << "      \"fault_sim\": {\n"
       << "        \"total_faults\": " << fr.total_faults << ",\n"
       << "        \"collapsed_faults\": " << fr.sim_faults << ",\n"
       << "        \"detected\": " << fr.detected << ",\n"
       << "        \"coverage\": " << json_num(fr.final_coverage()) << ",\n"
       << "        \"threads\": " << fr.threads << ",\n"
       << "        \"word_width\": " << fr.word_width << ",\n"
       << "        \"reps\": " << reps << ",\n"
       << "        \"seconds_best\": " << json_num(fsecs) << ",\n"
       << "        \"faults_dropped_per_sec\": "
       << json_num(fsecs > 0 ? fr.detected / fsecs : 0) << ",\n"
       << "        \"faulty_gate_evals\": " << fr.faulty_gate_evals << ",\n"
       << "        \"faulty_gate_evals_per_sec\": "
       << json_num(fsecs > 0 ? double(fr.faulty_gate_evals) / fsecs : 0) << "\n"
       << "      }";
    if (mixed) {
      js << ",\n      \"mixed_tpg\": {\n"
         << "        \"lfsr_patterns\": " << mr.lfsr_patterns << ",\n"
         << "        \"tail_faults\": " << mr.tail_faults << ",\n"
         << "        \"podem\": {\"detected\": " << mr.podem_detected
         << ", \"redundant\": " << mr.redundant
         << ", \"aborted\": " << mr.aborted
         << ", \"backtracks\": " << mr.podem_backtracks
         << ", \"decisions\": " << mr.podem_decisions << "},\n"
         << "        \"podem_threads\": " << bist::resolve_threads(threads)
         << ",\n"
         << "        \"topoff_patterns\": " << mr.topoff_patterns << ",\n"
         << "        \"topoff_before_compaction\": "
         << mr.topoff_before_compaction << ",\n"
         << "        \"lfsr_coverage\": " << json_num(mr.lfsr_coverage) << ",\n"
         << "        \"lfsr_coverage_weighted\": "
         << json_num(mr.lfsr_coverage_weighted) << ",\n"
         << "        \"final_coverage\": " << json_num(mr.final_coverage) << ",\n"
         << "        \"final_coverage_weighted\": "
         << json_num(mr.final_coverage_weighted) << ",\n"
         << "        \"patterns_verified\": "
         << (mr.all_verified ? "true" : "false") << ",\n"
         << "        \"state\": "
         << json_str(std::string(bist::point_state_name(mr.state))) << ",\n"
         << "        \"status\": "
         << json_str(std::string(bist::stage_code_name(mr.status.code)))
         << ",\n"
         << "        \"reps\": " << mixed_reps << ",\n"
         << "        \"seconds_best\": " << json_num(msecs) << ",\n"
         << "        \"lfsr_seconds\": " << json_num(mr.lfsr_seconds) << ",\n"
         << "        \"podem_seconds\": " << json_num(mr.podem_seconds) << ",\n"
         << "        \"compact_seconds\": " << json_num(mr.compact_seconds)
         << ",\n"
         << "        \"solve_seconds\": " << json_num(mr.solve_seconds)
         << "\n      }";
    }
    if (mixed && sweep) {
      js << ",\n      \"mixed_sweep\": {\n        \"lengths\": [";
      for (std::size_t p = 0; p < sweep_lengths.size(); ++p)
        js << (p ? ", " : "") << sweep_lengths[p];
      js << "],\n        \"points\": [\n";
      for (std::size_t p = 0; p < sw.points.size(); ++p) {
        const bist::MixedSchemeResult& pt = sw.points[p];
        js << "          {\"length\": " << pt.lfsr_patterns
           << ", \"tail_faults\": " << pt.tail_faults
           << ", \"topoff_patterns\": " << pt.topoff_patterns
           << ", \"lfsr_coverage\": " << json_num(pt.lfsr_coverage)
           << ", \"final_coverage\": " << json_num(pt.final_coverage)
           << ", \"final_coverage_weighted\": "
           << json_num(pt.final_coverage_weighted)
           << ", \"state\": "
           << json_str(std::string(bist::point_state_name(pt.state))) << "}"
           << (p + 1 < sw.points.size() ? "," : "") << "\n";
      }
      js << "        ],\n"
         << "        \"podem_calls\": " << sw.stats.podem_calls << ",\n"
         << "        \"podem_cache_hits\": " << sw.stats.podem_cache_hits
         << ",\n"
         << "        \"podem_threads\": " << sw.stats.podem_threads << ",\n"
         << "        \"lfsr_seconds\": " << json_num(sw.stats.lfsr_seconds)
         << ",\n"
         << "        \"podem_seconds\": " << json_num(sw.stats.podem_seconds)
         << ",\n"
         << "        \"compact_seconds\": "
         << json_num(sw.stats.compact_seconds) << ",\n"
         << "        \"solve_seconds\": " << json_num(sw.stats.solve_seconds)
         << ",\n"
         << "        \"status\": "
         << json_str(std::string(bist::stage_code_name(sw.status.code)))
         << ",\n"
         << "        \"completed_points\": "
         << std::count_if(sw.points.begin(), sw.points.end(),
                          [](const bist::MixedSchemeResult& pt) {
                            return pt.state == bist::PointState::Complete;
                          })
         << ",\n"
         << "        \"naive_reps\": " << (anytime ? 0 : 1) << ",\n"
         << "        \"naive_seconds\": " << json_num(naive_secs) << ",\n"
         << "        \"sweep_reps\": " << sweep_reps << ",\n"
         << "        \"sweep_seconds_best\": " << json_num(sweep_secs) << ",\n"
         << "        \"speedup_naive_over_sweep\": "
         << json_num(sweep_secs > 0 ? naive_secs / sweep_secs : 0) << ",\n";
      if (!anytime)
        js << "        \"points_match_naive\": "
           << (sweep_match ? "true" : "false") << ",\n";
      js << "        \"deadline_ms\": " << json_num(deadline_ms)
         << "\n      }";
    }
    if (do_bist) {
      js << ",\n      \"bist_plan\": {\n"
         << "        \"objective\": \"knee_under_budget\",\n"
         << "        \"degraded\": " << (plan.degraded ? "true" : "false")
         << ",\n"
         << "        \"status\": " << (wv.ok() ? "\"ok\"" : "\"error\"")
         << ",\n"
         << "        \"test_time_budget\": " << budget << ",\n"
         << "        \"chosen_length\": " << plan.lfsr_patterns << ",\n"
         << "        \"topoff_patterns\": " << plan.topoff_patterns << ",\n"
         << "        \"test_time\": " << plan.test_time << ",\n"
         << "        \"rom_bits\": " << plan.rom_bits << ",\n"
         << "        \"state_bits\": " << plan.area.state_bits << ",\n"
         << "        \"area_bits\": " << plan.area.area_bits() << ",\n"
         << "        \"compress\": " << (plan.comp.enabled ? "true" : "false")
         << ",\n"
         << "        \"seed_rom_bits\": " << plan.area.seed_rom_bits << ",\n"
         << "        \"misr_bits\": " << plan.area.misr_bits << ",\n"
         << "        \"seed_count\": " << plan.comp.seeds.size() << ",\n"
         << "        \"fallback_rows\": " << plan.comp.fallback_rows() << ",\n"
         << "        \"decoded_rom_bits\": "
         << std::uint64_t(plan.topoff_patterns) * n.input_count() << ",\n"
         << "        \"compression_ratio\": "
         << json_num([&] {
              const double stored =
                  double(plan.rom_bits) + double(plan.area.seed_rom_bits);
              const double decoded =
                  double(plan.topoff_patterns) * double(n.input_count());
              return stored > 0 ? decoded / stored : 0.0;
            }())
         << ",\n"
         << "        \"aliasing_escapes\": " << wv.aliasing.escapes << ",\n"
         << "        \"aliasing_checked\": " << wv.aliasing.detected_checked
         << ",\n"
         << "        \"aliasing_bound\": " << json_num(wv.aliasing.bound)
         << ",\n"
         << "        \"knee_distance\": " << json_num(plan.knee_distance)
         << ",\n"
         << "        \"final_coverage\": " << json_num(plan.final_coverage)
         << ",\n"
         << "        \"area_estimate_ge\": {\"lfsr\": "
         << json_num(plan.area.lfsr)
         << ", \"rom\": " << json_num(plan.area.rom)
         << ", \"seed_rom\": " << json_num(plan.area.seed_rom)
         << ", \"controller\": " << json_num(plan.area.controller)
         << ", \"mux\": " << json_num(plan.area.mux)
         << ", \"misr\": " << json_num(plan.area.misr)
         << ", \"total\": " << json_num(plan.area.total()) << "},\n"
         << "        \"area_actual_ge\": {\"lfsr\": "
         << json_num(syn.actual.lfsr)
         << ", \"rom\": " << json_num(syn.actual.rom)
         << ", \"seed_rom\": " << json_num(syn.actual.seed_rom)
         << ", \"controller\": " << json_num(syn.actual.controller)
         << ", \"mux\": " << json_num(syn.actual.mux)
         << ", \"misr\": " << json_num(syn.actual.misr)
         << ", \"total\": " << json_num(syn.actual.total()) << "},\n"
         << "        \"wrapper_gates\": " << syn.wrapper.gate_count() << ",\n"
         << "        \"bist_gates\": " << syn.bist_gates << ",\n"
         << "        \"counter_bits\": " << syn.counter_bits << ",\n"
         << "        \"wrapper_file\": " << json_str(wrapper_file) << ",\n"
         << "        \"candidates\": [\n";
      for (std::size_t c = 0; c < plan.candidates.size(); ++c) {
        const bist::SchedulePoint& sp = plan.candidates[c];
        js << "          {\"length\": " << sp.length
           << ", \"topoff_patterns\": " << sp.topoff_patterns
           << ", \"test_time\": " << sp.test_time
           << ", \"rom_bits\": " << sp.rom_bits
           << ", \"area_bits\": " << sp.area_bits
           << ", \"knee_distance\": " << json_num(sp.knee_distance)
           << ", \"within_budget\": " << (sp.within_budget ? "true" : "false")
           << "}" << (c + 1 < plan.candidates.size() ? "," : "") << "\n";
      }
      js << "        ],\n"
         << "        \"selfsim_cycles\": " << wv.cycles << ",\n"
         << "        \"selfsim_coverage\": " << json_num(wv.achieved_coverage)
         << ",\n"
         << "        \"selfsim_coverage_weighted\": "
         << json_num(wv.achieved_coverage_weighted) << ",\n"
         << "        \"lfsr_phase_identical\": "
         << (wv.lfsr_phase_identical ? "true" : "false") << ",\n"
         << "        \"topoff_identical\": "
         << (wv.topoff_identical ? "true" : "false") << ",\n"
         << "        \"coverage_identical\": "
         << (wv.coverage_identical ? "true" : "false") << ",\n"
         << "        \"seeds_identical\": "
         << (wv.seeds_identical ? "true" : "false") << ",\n"
         << "        \"signature_identical\": "
         << (wv.signature_identical ? "true" : "false") << ",\n"
         << "        \"wrapper_matches_plan\": "
         << (wv.ok() ? "true" : "false") << ",\n"
         << "        \"schedule_seconds\": " << json_num(sched_secs) << ",\n"
         << "        \"synth_seconds\": " << json_num(synth_secs) << ",\n"
         << "        \"selfsim_seconds\": " << json_num(selfsim_secs)
         << "\n      }";
    }
    js << "\n    }";

    if (plot) {
      bist::Series s;
      s.name = name + " coverage";
      const std::size_t step = std::max<std::size_t>(1, fr.coverage.size() / 256);
      for (std::size_t p = 0; p < fr.coverage.size(); p += step) {
        s.x.push_back(double(p + 1));
        s.y.push_back(100 * fr.coverage[p]);
      }
      bist::PlotOptions po;
      po.title = name + ": stuck-at coverage vs. LFSR patterns";
      po.x_label = "patterns";
      po.y_label = "%";
      po.y_from_zero = true;
      std::cout << bist::ascii_plot({s}, po);

      // The scheduler's trade-off curves over the (deduplicated, sorted)
      // candidate set, so the knee the plan picked is visible in CI logs.
      if (do_bist && plan.candidates.size() >= 2) {
        bist::Series cov, rom, abits;
        cov.name = "final coverage %";
        rom.name = "topoff ROM patterns";
        abits.name = "area bits (ROM + state)";
        rom.marker = 'o';
        abits.marker = '+';
        for (const bist::SchedulePoint& sp : plan.candidates) {
          cov.x.push_back(double(sp.length));
          cov.y.push_back(100 * sp.final_coverage);
          rom.x.push_back(double(sp.length));
          rom.y.push_back(double(sp.topoff_patterns));
          abits.x.push_back(double(sp.length));
          abits.y.push_back(double(sp.area_bits));
        }
        bist::PlotOptions pc;
        pc.title = name + ": final coverage vs. LFSR length (knee at L=" +
                   std::to_string(plan.lfsr_patterns) + ")";
        pc.x_label = "LFSR length";
        pc.y_label = "%";
        std::cout << bist::ascii_plot({cov}, pc);
        bist::PlotOptions pr;
        pr.title = name + ": ROM cost vs. LFSR length (knee at L=" +
                   std::to_string(plan.lfsr_patterns) + ")";
        pr.x_label = "LFSR length";
        pr.y_label = "cost";
        pr.y_from_zero = true;
        std::cout << bist::ascii_plot({rom, abits}, pr);
      }
    }
  }

  js << "\n  ],\n  \"c6288_speedup_kernel_over_seed\": "
     << json_num(c6288_speedup) << "\n}\n";

  std::ofstream out(out_path);
  out << js.str();
  out.flush();
  if (!out) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  if (!all_verified) {
    std::cerr << "error: some top-off pattern failed fault-sim verification\n";
    return 1;
  }
  if (!wrappers_ok) {
    std::cerr << "error: a synthesized BIST wrapper failed to reproduce its "
                 "scheduled point\n";
    return 1;
  }
  return 0;
}

}  // namespace
