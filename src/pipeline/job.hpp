#pragma once
// Fault-tolerant pipeline execution: one circuit's full plan job — parse ->
// sweep -> schedule -> synth -> verify — as a unit that NEVER throws, with
// per-stage isolation, wall-clock accounting and status, cooperative
// deadlines, and an anytime degradation ladder.
//
// Failure containment is the point of this layer: a malformed netlist, a
// logic error in one stage, or an injected fault (see set_injected_failure)
// is caught at the stage boundary, recorded in the JobReport, and the job
// returns normally — so run_job_batch can push many circuits through one
// WorkerPool and a poisoned job can never take its neighbors (or the pool)
// down with it.  Deadlines degrade instead of failing: a sweep cut short
// still yields a schedulable (possibly LFSR-only) plan and a verified
// wrapper, per run_mixed_sweep's anytime contract.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "bist/schedule.hpp"
#include "bist/verify.hpp"
#include "netlist/bench_io.hpp"
#include "tpg/sweep.hpp"
#include "util/deadline.hpp"

namespace bist {

/// Everything run_plan_job needs, self-contained (the .bench text travels
/// with the spec so the parse stage — and its failures — belong to the job).
struct JobSpec {
  std::string name;        ///< circuit/job name, used in reports and matching
  std::string bench_text;  ///< .bench source; parsed inside the job
  std::vector<std::size_t> sweep_lengths;
  /// Mixed-scheme knobs for the sweep stage.  The `deadline` field is
  /// ignored — deadlines are owned by the job (see below) so one Deadline
  /// covers the whole pipeline consistently.
  MixedTpgOptions tpg;
  ScheduleOptions schedule;
  BenchLimits limits;  ///< parse-stage input validation caps
  /// Anytime deadline over the sweep stage in seconds; <= 0 = none.  When it
  /// fires the sweep degrades (LfsrOnly/Skipped points, anytime floor) and
  /// the job still produces a schedulable plan + verified wrapper, with
  /// overall status DeadlineExceeded and report.degraded set.
  double sweep_deadline_s = 0;
  /// Whole-job wall-clock limit in seconds; <= 0 = none.  Checked at every
  /// stage boundary and folded into the sweep's anytime deadline; a stage
  /// that would start after expiry is not run.
  double job_timeout_s = 0;
  /// Optional external cancel; observed by every deadline the job creates
  /// and polled at stage boundaries.  Not owned; may be null.
  const CancelToken* cancel = nullptr;
};

/// One pipeline stage as it actually ran.
struct StageReport {
  std::string name;    ///< parse | sweep | schedule | synth | verify
  StageStatus status;  ///< Ok, or why the stage stopped/failed/was not run
  double seconds = 0;  ///< wall clock inside the stage
};

struct JobReport {
  std::string name;
  /// Overall verdict: Ok when every stage ran clean; DeadlineExceeded /
  /// Cancelled when a deadline or cancel shaped the outcome but the pipeline
  /// still delivered (check `degraded` and `wrapper_ok`); Error when a stage
  /// threw — `stages` then shows exactly which one, and every later stage
  /// carries an Error status saying it was not run.
  StageStatus status;
  bool degraded = false;    ///< plan came from the LfsrOnly anytime tier
  bool wrapper_ok = false;  ///< verify stage ran and the wrapper checked out
  std::vector<StageReport> stages;  ///< in pipeline order, stages entered or
                                    ///< explicitly skipped at a boundary
  MixedSweepResult sweep;   ///< valid once the sweep stage succeeded
  BistPlan plan;            ///< valid once the schedule stage succeeded
  WrapperVerification verification;  ///< valid once the verify stage ran
  /// Compression solve work inside the sweep stage (GF(2) reseeding solves
  /// plus the audited MISR fold selection), split out of the sweep stage's
  /// wall clock so deadline tuning can see what the compressed architecture
  /// itself costs.  Zero when the spec runs with tpg.compress = false.
  double solve_seconds = 0;
  std::string wrapper_bench;  ///< write_bench of the wrapper; empty if unbuilt
  double seconds = 0;         ///< whole-job wall clock
};

/// Run the five-stage pipeline for one circuit.  NEVER throws: every stage
/// body is exception-isolated and failures are reported in the returned
/// JobReport.  Deterministic result payloads for a given spec (timings and
/// deadline-shaped outcomes excepted).
JobReport run_plan_job(const JobSpec& spec);

/// Run many jobs over one WorkerPool (resolve_threads semantics; grain 1 —
/// per-circuit cost is heavily skewed).  Reports land in spec order.  A
/// failing job is contained by run_plan_job's no-throw contract, so one bad
/// circuit never poisons its neighbors or the pool.
std::vector<JobReport> run_job_batch(std::span<const JobSpec> specs,
                                     unsigned threads);

/// Fault-injection hook for the containment test suite.  After
/// set_injected_failure("sweep", "c880"), the sweep stage of any job named
/// "c880" throws std::runtime_error at entry; every other job and stage is
/// untouched.  Empty circuit matches every job.  The hook is process-global
/// and sticky until cleared; it is inert (one relaxed atomic load per stage)
/// when unset.  Test-only, but always compiled so release builds exercise
/// the same code path.
void set_injected_failure(std::string stage, std::string circuit);
void clear_injected_failure();

}  // namespace bist
