#pragma once
// Fault-tolerant pipeline execution: one circuit's full plan job — parse ->
// sweep -> schedule -> synth -> verify — as a unit that NEVER throws, with
// per-stage isolation, wall-clock accounting and status, cooperative
// deadlines, and an anytime degradation ladder.
//
// Failure containment is the point of this layer: a malformed netlist, a
// logic error in one stage, or an injected fault (see set_injected_failure)
// is caught at the stage boundary, recorded in the JobReport, and the job
// returns normally — so run_job_batch can push many circuits through one
// WorkerPool and a poisoned job can never take its neighbors (or the pool)
// down with it.  Deadlines degrade instead of failing: a sweep cut short
// still yields a schedulable (possibly LFSR-only) plan and a verified
// wrapper, per run_mixed_sweep's anytime contract.
//
// Durability (store/):
//  - a JobSpec carrying a ResultStore consults it before the sweep stage
//    (a hit skips the whole LFSR+PODEM cost) and publishes after it; only
//    fully Complete, status-Ok sweeps are published, so a cached result is
//    always bit-identical to a fresh computation.  Corrupt records
//    quarantine and recompute — noted in the sweep StageReport, never an
//    error;
//  - stage exceptions classified transient (TransientError, I/O-shaped
//    system_errors) are retried with deterministic bounded backoff under
//    RetryPolicy; deterministic failures (parse errors, logic bugs) fail
//    fast on the first attempt, and deadline stops are never retried (the
//    budget is already spent);
//  - run_job_batch with a manifest path journals every completed-Ok job to
//    an append-only checkpoint file, and with `resume` replays completed
//    jobs from it — a SIGKILLed batch restarts from where it died.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "bist/schedule.hpp"
#include "bist/verify.hpp"
#include "netlist/bench_io.hpp"
#include "tpg/sweep.hpp"
#include "util/deadline.hpp"
#include "util/hash.hpp"

namespace bist {

class ResultStore;
class FileOps;

/// Throw this (or an I/O-shaped std::system_error) from a stage to mark the
/// failure as retryable.  Anything else fails fast.
struct TransientError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Classifier behind the retry loop: TransientError, or a std::system_error
/// whose condition is I/O-shaped (EAGAIN, EINTR, EIO, ETIMEDOUT, EBUSY,
/// ENOSPC).
bool is_transient_error(const std::exception& e);

/// Bounded deterministic retry for transient stage failures: attempt k
/// (1-based) sleeps backoff_s * multiplier^(k-1) before re-running.  The
/// default (1 attempt) disables retries.
struct RetryPolicy {
  unsigned attempts = 1;   ///< total tries per stage, including the first
  double backoff_s = 0.01; ///< sleep before the first retry, seconds
  double multiplier = 2.0; ///< backoff growth per retry
};

/// Everything run_plan_job needs, self-contained (the .bench text travels
/// with the spec so the parse stage — and its failures — belong to the job).
struct JobSpec {
  std::string name;        ///< circuit/job name, used in reports and matching
  std::string bench_text;  ///< .bench source; parsed inside the job
  std::vector<std::size_t> sweep_lengths;
  /// Mixed-scheme knobs for the sweep stage.  The `deadline` field is
  /// ignored — deadlines are owned by the job (see below) so one Deadline
  /// covers the whole pipeline consistently.
  MixedTpgOptions tpg;
  ScheduleOptions schedule;
  BenchLimits limits;  ///< parse-stage input validation caps
  /// Anytime deadline over the sweep stage in seconds; <= 0 = none.  When it
  /// fires the sweep degrades (LfsrOnly/Skipped points, anytime floor) and
  /// the job still produces a schedulable plan + verified wrapper, with
  /// overall status DeadlineExceeded and report.degraded set.
  double sweep_deadline_s = 0;
  /// Whole-job wall-clock limit in seconds; <= 0 = none.  Checked at every
  /// stage boundary, folded into the sweep's anytime deadline, and threaded
  /// into synthesis and verification (which poll it mid-loop and stop with a
  /// DeadlineExceeded stage status instead of blowing the budget).
  double job_timeout_s = 0;
  /// Optional external cancel; observed by every deadline the job creates
  /// and polled at stage boundaries.  Not owned; may be null.
  const CancelToken* cancel = nullptr;
  /// Optional liveness heartbeat (steady-clock nanoseconds), written at every
  /// stage boundary and — through the job's deadlines — at every cooperative
  /// poll inside the engines.  The job-service watchdog reads it to detect a
  /// wedged job (one that stopped polling).  Not owned; may be null; excluded
  /// from job_key (it is observation plumbing, not a result-affecting input).
  std::atomic<std::int64_t>* heartbeat = nullptr;
  /// Sweep-result cache consulted/published around the sweep stage (see the
  /// durability notes above).  Not owned; may be null (no caching).
  ResultStore* store = nullptr;
  RetryPolicy retry;  ///< transient-failure retry, all stages
};

/// One pipeline stage as it actually ran.
struct StageReport {
  std::string name;    ///< parse | sweep | schedule | synth | verify
  StageStatus status;  ///< Ok, or why the stage stopped/failed/was not run
  double seconds = 0;  ///< wall clock inside the stage, all attempts
  unsigned attempts = 1;  ///< tries the retry loop spent (1 = first try won)
  std::string note;    ///< cache/quarantine/retry annotations, "" if none
};

/// Where the sweep stage's data came from and what the store did about it.
struct CacheOutcome {
  bool consulted = false;    ///< a store was attached to the job
  bool hit = false;          ///< sweep served from the store
  bool stored = false;       ///< sweep published to the store
  bool quarantined = false;  ///< a corrupt record was set aside (then miss)
  bool manifest = false;     ///< whole report replayed from a batch manifest
  std::string note;          ///< human-readable cache verdict, "" if none
};

struct JobReport {
  std::string name;
  /// Overall verdict: Ok when every stage ran clean; DeadlineExceeded /
  /// Cancelled when a deadline or cancel shaped the outcome but the pipeline
  /// still delivered (check `degraded` and `wrapper_ok`); Error when a stage
  /// threw — `stages` then shows exactly which one, and every later stage
  /// carries an Error status saying it was not run.
  StageStatus status;
  bool degraded = false;    ///< plan came from the LfsrOnly anytime tier
  bool wrapper_ok = false;  ///< verify stage ran and the wrapper checked out
  std::vector<StageReport> stages;  ///< in pipeline order, stages entered or
                                    ///< explicitly skipped at a boundary
  MixedSweepResult sweep;   ///< valid once the sweep stage succeeded
  BistPlan plan;            ///< valid once the schedule stage succeeded
  WrapperVerification verification;  ///< valid once the verify stage ran
  /// Compression solve work inside the sweep stage (GF(2) reseeding solves
  /// plus the audited MISR fold selection), split out of the sweep stage's
  /// wall clock so deadline tuning can see what the compressed architecture
  /// itself costs.  Zero when the spec runs with tpg.compress = false — and
  /// zero on a cache hit, which does no solve work.
  double solve_seconds = 0;
  std::string wrapper_bench;  ///< write_bench of the wrapper; empty if unbuilt
  double seconds = 0;         ///< whole-job wall clock
  CacheOutcome cache;         ///< store/manifest interaction of this job
};

/// Canonical job identity for the batch manifest: a digest of every
/// result-affecting JobSpec field (name, bench text, sweep lengths, tpg and
/// schedule knobs, parse limits).  Wall-clock shaping (deadlines, timeouts,
/// cancel) and engine speed knobs are excluded — only status-Ok jobs are
/// checkpointed, and for those the result is deadline-independent.
Digest128 job_key(const JobSpec& spec);

/// Run the five-stage pipeline for one circuit.  NEVER throws: every stage
/// body is exception-isolated and failures are reported in the returned
/// JobReport.  Deterministic result payloads for a given spec (timings and
/// deadline-shaped outcomes excepted).
JobReport run_plan_job(const JobSpec& spec);

/// Batch-level durability knobs for run_job_batch.
struct BatchOptions {
  unsigned threads = 0;  ///< resolve_threads semantics
  /// Default sweep store for every job whose spec carries none.  Not owned.
  ResultStore* store = nullptr;
  /// Append-only checkpoint journal of completed-Ok jobs; empty = none.
  std::string manifest_path;
  /// Replay completed jobs from the manifest instead of re-running them.
  /// When false and a manifest path is set, a stale journal is removed so
  /// the fresh run starts a fresh journal.
  bool resume = false;
  FileOps* ops = nullptr;  ///< manifest file ops; nullptr = FileOps::real()
};

struct BatchResult {
  std::vector<JobReport> reports;  ///< in spec order
  std::size_t manifest_loaded = 0; ///< journal entries recovered on resume
  std::size_t manifest_hits = 0;   ///< jobs replayed without execution
};

/// Run many jobs over one WorkerPool (grain 1 — per-circuit cost is heavily
/// skewed).  Reports land in spec order.  A failing job is contained by
/// run_plan_job's no-throw contract, so one bad circuit never poisons its
/// neighbors or the pool.  With a manifest path, every job that completes
/// with an Ok status is journaled as it finishes; with `resume`, jobs whose
/// key is already journaled are replayed (cache.manifest set) instead of
/// re-run — the crash-safe restart path.
BatchResult run_job_batch(std::span<const JobSpec> specs,
                          const BatchOptions& opt);

/// Compatibility overload: no store, no manifest.
std::vector<JobReport> run_job_batch(std::span<const JobSpec> specs,
                                     unsigned threads);

/// Fault-injection hook for the containment test suite.  After
/// set_injected_failure("sweep", "c880"), the sweep stage of any job named
/// "c880" throws std::runtime_error at entry; every other job and stage is
/// untouched.  Empty circuit matches every job.  `times` bounds how many
/// injections fire before the hook disarms itself (-1 = unlimited);
/// `transient` throws TransientError instead, exercising the retry loop.
/// The hook is process-global and sticky until cleared; it is inert (one
/// relaxed atomic load per stage) when unset.  Test-only, but always
/// compiled so release builds exercise the same code path.
void set_injected_failure(std::string stage, std::string circuit,
                          int times = -1, bool transient = false);
void clear_injected_failure();

}  // namespace bist
