#include "pipeline/job.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "bist/synth.hpp"
#include "fault/fault_sim.hpp"
#include "sim/kernel.hpp"
#include "store/manifest.hpp"
#include "store/result_store.hpp"
#include "util/parallel.hpp"
#include "util/wallclock.hpp"

namespace bist {
namespace {

// ---- fault-injection hook --------------------------------------------------
// One mutex-guarded (stage, circuit) tuple plus a relaxed "armed" flag so the
// disarmed fast path costs a single atomic load per stage entry.  `times`
// counts down per fired injection (-1 = unlimited) so a test can inject a
// failure that heals — the substrate of the retry-recovery tests.

std::mutex g_inject_mutex;
std::string g_inject_stage;
std::string g_inject_circuit;
int g_inject_times = -1;
bool g_inject_transient = false;
std::atomic<bool> g_inject_armed{false};

void maybe_inject(const char* stage, const std::string& circuit) {
  if (!g_inject_armed.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_inject_mutex);
  if (g_inject_stage != stage ||
      (!g_inject_circuit.empty() && g_inject_circuit != circuit))
    return;
  if (g_inject_times == 0) return;
  if (g_inject_times > 0 && --g_inject_times == 0)
    g_inject_armed.store(false, std::memory_order_relaxed);
  const std::string what = "injected failure: stage '" + g_inject_stage +
                           "' circuit '" + circuit + "'";
  if (g_inject_transient) throw TransientError(what);
  throw std::runtime_error(what);
}

// ---- stage runner ----------------------------------------------------------

constexpr const char* kStageNames[] = {"parse", "sweep", "schedule", "synth",
                                       "verify"};

// Retry backoff that observes the job deadline/cancel: sleep in short slices
// polling should_stop(), so a cancelled job stops waiting within one slice
// instead of sleeping through its full exponential backoff.  Returns false
// when the wait was interrupted (the retry loop must then give up).
bool interruptible_backoff(double seconds, const Deadline& job_dl) {
  constexpr double kSliceS = 0.01;
  const auto t0 = WallClock::now();
  while (seconds_since(t0) < seconds) {
    if (job_dl.should_stop()) return false;
    const double left = seconds - seconds_since(t0);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(std::min(kSliceS, left)));
  }
  return !job_dl.should_stop();
}

// Run one stage body under the job's isolation contract: wall-clock it,
// catch anything it throws, and record a StageReport.  Exceptions classified
// transient retry under `retry` (deterministic backoff, stopped early when
// the job deadline fires — that budget is already spent); everything else
// fails fast.  The body receives its StageReport so it can attach notes
// (cache verdicts, quarantine messages).  Returns true when the stage
// completed (Ok or a deadline-shaped soft stop), false on Error.
template <class Body>
bool run_stage(JobReport& rep, const char* name, const std::string& circuit,
               const RetryPolicy& retry, const Deadline& job_dl, Body&& body) {
  StageReport sr;
  sr.name = name;
  const auto t0 = WallClock::now();
  const unsigned max_attempts = std::max(1u, retry.attempts);
  double backoff_s = retry.backoff_s;
  for (unsigned attempt = 1;; ++attempt) {
    sr.attempts = attempt;
    try {
      maybe_inject(name, circuit);
      sr.status = body(sr);  // body returns the stage's own status verdict
      break;
    } catch (const std::exception& e) {
      sr.status = StageStatus::error(std::string(name) + ": " + e.what());
      if (!is_transient_error(e) || attempt >= max_attempts ||
          job_dl.should_stop())
        break;
      if (!sr.note.empty()) sr.note += "; ";
      sr.note += "transient failure, retrying: " + std::string(e.what());
      if (backoff_s > 0 && !interruptible_backoff(backoff_s, job_dl)) {
        sr.note += "; retry abandoned: job stopped during backoff";
        break;
      }
      backoff_s *= retry.multiplier;
    } catch (...) {
      sr.status = StageStatus::error(std::string(name) + ": unknown exception");
      break;
    }
  }
  sr.seconds = seconds_since(t0);
  const bool ok = sr.status.code != StageCode::Error;
  rep.stages.push_back(std::move(sr));
  return ok;
}

// Mark the stages after a failure/stop as not run, so the report always
// lists all five stages and says why each missing one is missing.
void mark_not_run(JobReport& rep, const std::string& why) {
  for (std::size_t i = rep.stages.size(); i < 5; ++i) {
    StageReport sr;
    sr.name = kStageNames[i];
    sr.status = StageStatus::error("not run: " + why);
    rep.stages.push_back(std::move(sr));
  }
}

// Every point Complete — the publish gate: only full-fidelity sweeps become
// cache records (a deadline-shaped result is wall-clock-shaped, not
// canonical, and must never be served as one).
bool sweep_is_canonical(const MixedSweepResult& s) {
  if (!s.status.ok()) return false;
  for (const MixedSchemeResult& p : s.points)
    if (p.state != PointState::Complete || !p.status.ok()) return false;
  return true;
}

}  // namespace

bool is_transient_error(const std::exception& e) {
  if (dynamic_cast<const TransientError*>(&e) != nullptr) return true;
  const auto* se = dynamic_cast<const std::system_error*>(&e);
  if (!se) return false;
  const std::error_condition c = se->code().default_error_condition();
  if (c.category() != std::generic_category()) return false;
  switch (static_cast<std::errc>(c.value())) {
    case std::errc::resource_unavailable_try_again:  // EAGAIN
    case std::errc::interrupted:                     // EINTR
    case std::errc::io_error:                        // EIO
    case std::errc::timed_out:                       // ETIMEDOUT
    case std::errc::device_or_resource_busy:         // EBUSY
    case std::errc::no_space_on_device:              // ENOSPC
      return true;
    default:
      return false;
  }
}

Digest128 job_key(const JobSpec& spec) {
  Hasher h;
  h.str("bist-job-key");
  h.u32(kStoreFormatVersion);
  h.str(spec.name);
  h.str(spec.bench_text);
  h.u64(spec.sweep_lengths.size());
  for (const std::size_t l : spec.sweep_lengths) h.u64(l);
  // Result-affecting tpg fields (same canonical set as sweep_cache_key).
  h.u32(spec.tpg.lfsr_degree);
  h.u64(spec.tpg.lfsr_seed);
  h.u32(spec.tpg.podem.backtrack_limit);
  h.u64(spec.tpg.fill_seed);
  h.u8(spec.tpg.compress ? 1 : 0);
  h.u32(spec.tpg.misr_degree);
  h.u64(spec.tpg.misr_fold.size());
  for (const std::uint16_t f : spec.tpg.misr_fold) h.u16(f);
  h.u8(spec.tpg.compact ? 1 : 0);
  h.u8(spec.tpg.verify_patterns ? 1 : 0);
  // Schedule knobs.
  h.u8(static_cast<std::uint8_t>(spec.schedule.objective));
  h.u64(spec.schedule.test_time_budget);
  h.f64(spec.schedule.time_weight);
  h.f64(spec.schedule.area_weight);
  h.f64(spec.schedule.area.and2);
  h.f64(spec.schedule.area.xor2);
  h.f64(spec.schedule.area.not1);
  h.f64(spec.schedule.area.buf1);
  h.f64(spec.schedule.area.flipflop);
  h.u32(spec.schedule.lfsr_degree);
  h.u64(spec.schedule.lfsr_seed);
  // Parse limits (they decide whether the parse stage accepts the text).
  h.u64(spec.limits.max_name_len);
  h.u64(spec.limits.max_fanins);
  h.u64(spec.limits.max_gates);
  return h.digest();
}

void set_injected_failure(std::string stage, std::string circuit, int times,
                          bool transient) {
  std::lock_guard<std::mutex> lock(g_inject_mutex);
  g_inject_stage = std::move(stage);
  g_inject_circuit = std::move(circuit);
  g_inject_times = times;
  g_inject_transient = transient;
  g_inject_armed.store(true, std::memory_order_relaxed);
}

void clear_injected_failure() {
  std::lock_guard<std::mutex> lock(g_inject_mutex);
  g_inject_stage.clear();
  g_inject_circuit.clear();
  g_inject_times = -1;
  g_inject_transient = false;
  g_inject_armed.store(false, std::memory_order_relaxed);
}

JobReport run_plan_job(const JobSpec& spec) {
  JobReport rep;
  rep.name = spec.name;
  const auto job_t0 = WallClock::now();

  // Stage-boundary liveness beat for the service watchdog; the deadlines
  // below additionally beat at every cooperative poll inside the engines.
  const auto beat = [&] {
    if (spec.heartbeat)
      spec.heartbeat->store(WallClock::now().time_since_epoch().count(),
                            std::memory_order_relaxed);
  };
  beat();

  // Whole-job deadline: checked at stage boundaries, folded into the sweep
  // deadline, and threaded into synth/verify.  An unset timeout still
  // observes the cancel token.
  Deadline job_dl = spec.job_timeout_s > 0 ? Deadline::after(spec.job_timeout_s)
                                           : Deadline();
  job_dl.observe(spec.cancel).heartbeat(spec.heartbeat);

  // Per-stage deadline from what is left of the whole-job budget; dl must
  // outlive the stage body.  Returns nullptr when nothing limits the stage
  // (so unlimited jobs skip the polling entirely).
  const auto stage_deadline = [&](Deadline& dl) -> const Deadline* {
    double remain_s = -1;
    if (spec.job_timeout_s > 0)
      remain_s = std::max(0.0, spec.job_timeout_s - seconds_since(job_t0));
    dl = remain_s >= 0 ? Deadline::after(remain_s) : Deadline();
    dl.observe(spec.cancel).heartbeat(spec.heartbeat);
    return (remain_s >= 0 || spec.cancel) ? &dl : nullptr;
  };

  // Stage-boundary gate: when the job deadline/cancel has fired, the next
  // stage is recorded as stopped (not Error — the job was told to stop) and
  // the pipeline ends.
  const auto boundary_stop = [&](const char* stage) {
    beat();
    if (!job_dl.should_stop()) return false;
    StageReport sr;
    sr.name = stage;
    sr.status = job_dl.stop_status(stage);
    rep.stages.push_back(std::move(sr));
    mark_not_run(rep, "job stopped at stage '" + std::string(stage) + "'");
    rep.status = job_dl.stop_status("job");
    return true;
  };

  // --- parse ---------------------------------------------------------------
  Netlist cut;
  bool have_cut = false;
  if (!boundary_stop("parse")) {
    const bool ok =
        run_stage(rep, "parse", spec.name, spec.retry, job_dl, [&](StageReport&) {
          cut = read_bench(spec.bench_text, spec.name, spec.limits);
          have_cut = true;
          return StageStatus{};
        });
    if (!ok) {
      mark_not_run(rep, "parse failed");
    }
  }

  // --- sweep ---------------------------------------------------------------
  bool have_sweep = false;
  if (have_cut && rep.stages.size() < 2 && !boundary_stop("sweep")) {
    run_stage(rep, "sweep", spec.name, spec.retry, job_dl, [&](StageReport& sr) {
      // Store consult: a hit replaces the whole LFSR+PODEM computation with
      // the cached (bit-identical, publish-gated) result.  A quarantined
      // record degrades to a recompute with the verdict noted.
      Digest128 key;
      if (spec.store) {
        rep.cache.consulted = true;
        key = sweep_cache_key(cut, spec.sweep_lengths, spec.tpg);
        ResultStore::SweepLookup lk = spec.store->load_sweep(key);
        if (lk.outcome == ResultStore::SweepLookup::Outcome::Hit) {
          rep.sweep = std::move(lk.sweep);
          rep.cache.hit = true;
          rep.cache.note = lk.note;
          sr.note = std::move(lk.note);
          have_sweep = true;
          return rep.sweep.status;  // Ok by the publish gate
        }
        if (lk.outcome == ResultStore::SweepLookup::Outcome::Quarantined) {
          rep.cache.quarantined = true;
          rep.cache.note = lk.note;
          sr.note = std::move(lk.note);
        }
      }

      // The sweep's anytime deadline is the tighter of the per-stage sweep
      // deadline and what is left of the whole-job budget; either way it
      // observes the external cancel.  run_mixed_sweep degrades rather than
      // fails, so this stage only Errors on a genuine exception.
      double remain_s = -1;
      if (spec.job_timeout_s > 0)
        remain_s = std::max(0.0, spec.job_timeout_s - seconds_since(job_t0));
      double sweep_s = -1;
      if (spec.sweep_deadline_s > 0) sweep_s = spec.sweep_deadline_s;
      if (remain_s >= 0) sweep_s = sweep_s < 0 ? remain_s
                                               : std::min(sweep_s, remain_s);
      Deadline sweep_dl =
          sweep_s >= 0 ? Deadline::after(sweep_s) : Deadline();
      sweep_dl.observe(spec.cancel).heartbeat(spec.heartbeat);

      MixedTpgOptions topt = spec.tpg;
      topt.deadline = (sweep_s >= 0 || spec.cancel) ? &sweep_dl : nullptr;
      const SimKernel kernel(cut);
      rep.sweep = run_mixed_sweep(kernel, spec.sweep_lengths, topt);
      rep.solve_seconds = rep.sweep.stats.solve_seconds;
      have_sweep = true;

      // Publish — full-fidelity results only (see sweep_is_canonical).  A
      // failed publish costs nothing but future recomputation.
      if (spec.store && sweep_is_canonical(rep.sweep)) {
        std::string note;
        if (spec.store->store_sweep(key, rep.sweep, &note)) {
          rep.cache.stored = true;
        } else if (!note.empty()) {
          if (!sr.note.empty()) sr.note += "; ";
          sr.note += note;
          rep.cache.note = sr.note;
        }
      }
      return rep.sweep.status;  // Ok, or the anytime stop reason
    });
    if (!have_sweep) mark_not_run(rep, "sweep failed");
  }

  // --- schedule ------------------------------------------------------------
  bool have_plan = false;
  if (have_sweep && rep.stages.size() < 3 && !boundary_stop("schedule")) {
    const bool ok =
        run_stage(rep, "schedule", spec.name, spec.retry, job_dl, [&](StageReport&) {
          ScheduleOptions so = spec.schedule;
          so.lfsr_degree = spec.tpg.lfsr_degree;
          so.lfsr_seed = spec.tpg.lfsr_seed;
          rep.plan = schedule_bist(rep.sweep, rep.sweep.width, so);
          rep.degraded = rep.plan.degraded;
          have_plan = true;
          return StageStatus{};
        });
    if (!ok) mark_not_run(rep, "schedule failed");
  }

  // --- synth ---------------------------------------------------------------
  Netlist wrapper;
  bool have_wrapper = false;
  if (have_plan && rep.stages.size() < 4 && !boundary_stop("synth")) {
    const bool ok =
        run_stage(rep, "synth", spec.name, spec.retry, job_dl, [&](StageReport&) {
          Deadline dl;
          BistSynthResult syn =
              synthesize_bist_wrapper(cut, rep.plan, stage_deadline(dl));
          if (!syn.status.ok()) return syn.status;  // mid-stage soft stop
          wrapper = std::move(syn.wrapper);
          rep.wrapper_bench = write_bench(wrapper);
          have_wrapper = true;
          return StageStatus{};
        });
    if (!ok) mark_not_run(rep, "synth failed");
    else if (!have_wrapper) mark_not_run(rep, "synth stopped");
  }

  // --- verify --------------------------------------------------------------
  if (have_wrapper && rep.stages.size() < 5 && !boundary_stop("verify")) {
    run_stage(rep, "verify", spec.name, spec.retry, job_dl, [&](StageReport&) {
      Deadline dl;
      rep.verification = verify_wrapper(
          wrapper, cut, rep.plan, rep.sweep.points[rep.plan.point_index],
          spec.tpg.fsim, stage_deadline(dl));
      if (!rep.verification.status.ok())
        return rep.verification.status;  // mid-stage soft stop
      rep.wrapper_ok = rep.verification.ok();
      if (!rep.wrapper_ok)
        return StageStatus::error("verify: wrapper does not match the plan");
      return StageStatus{};
    });
  }

  // --- overall verdict -----------------------------------------------------
  // Error anywhere dominates; else the first deadline/cancel stop; else Ok.
  if (rep.status.ok()) {
    for (const StageReport& sr : rep.stages)
      if (sr.status.code == StageCode::Error) {
        rep.status = StageStatus::error("stage '" + sr.name +
                                        "' failed: " + sr.status.message);
        break;
      }
  }
  if (rep.status.ok()) {
    for (const StageReport& sr : rep.stages)
      if (!sr.status.ok()) {
        rep.status = sr.status;
        break;
      }
  }
  beat();
  rep.seconds = seconds_since(job_t0);
  return rep;
}

BatchResult run_job_batch(std::span<const JobSpec> specs,
                          const BatchOptions& opt) {
  BatchResult out;
  out.reports.resize(specs.size());
  if (specs.empty()) return out;

  std::vector<Digest128> keys(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) keys[i] = job_key(specs[i]);

  std::unique_ptr<BatchManifest> manifest;
  std::vector<char> replayed(specs.size(), 0);
  if (!opt.manifest_path.empty()) {
    manifest = std::make_unique<BatchManifest>(opt.manifest_path, opt.ops);
    if (opt.resume) {
      out.manifest_loaded = manifest->load();
      for (std::size_t i = 0; i < specs.size(); ++i)
        if (const JobReport* prev = manifest->find(keys[i])) {
          out.reports[i] = *prev;
          out.reports[i].cache.manifest = true;
          out.reports[i].cache.note = "replayed from batch manifest";
          replayed[i] = 1;
          ++out.manifest_hits;
        }
    } else {
      // Fresh run: a stale journal would replay into the NEXT resume, so it
      // is removed before the first checkpoint lands.
      (opt.ops ? opt.ops : &FileOps::real())->remove_file(opt.manifest_path);
    }
  }

  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < specs.size(); ++i)
    if (!replayed[i]) todo.push_back(i);
  if (todo.empty()) return out;

  WorkerPool pool(std::min<std::size_t>(resolve_threads(opt.threads),
                                        todo.size()));
  // Grain 1: jobs are few and heavy.  run_plan_job never throws, so a
  // failing job fills its own report slot and the region always completes —
  // one bad circuit cannot poison its neighbors or wedge the pool.  Each
  // Ok job checkpoints to the manifest as it finishes (append is mutexed
  // and fsync'd), so a SIGKILL at any instant loses at most in-flight jobs.
  parallel_for(pool, todo.size(), 1,
               [&](unsigned, std::size_t b, std::size_t e) {
                 for (std::size_t t = b; t < e; ++t) {
                   const std::size_t i = todo[t];
                   JobSpec spec = specs[i];
                   if (!spec.store) spec.store = opt.store;
                   out.reports[i] = run_plan_job(spec);
                   if (manifest && out.reports[i].status.ok())
                     manifest->append(keys[i], out.reports[i]);
                 }
               });
  return out;
}

std::vector<JobReport> run_job_batch(std::span<const JobSpec> specs,
                                     unsigned threads) {
  BatchOptions opt;
  opt.threads = threads;
  return run_job_batch(specs, opt).reports;
}

}  // namespace bist
