#include "pipeline/job.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>

#include "bist/synth.hpp"
#include "fault/fault_sim.hpp"
#include "sim/kernel.hpp"
#include "util/parallel.hpp"
#include "util/wallclock.hpp"

namespace bist {
namespace {

// ---- fault-injection hook --------------------------------------------------
// One mutex-guarded (stage, circuit) pair plus a relaxed "armed" flag so the
// disarmed fast path costs a single atomic load per stage entry.

std::mutex g_inject_mutex;
std::string g_inject_stage;
std::string g_inject_circuit;
std::atomic<bool> g_inject_armed{false};

void maybe_inject(const char* stage, const std::string& circuit) {
  if (!g_inject_armed.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_inject_mutex);
  if (g_inject_stage == stage &&
      (g_inject_circuit.empty() || g_inject_circuit == circuit))
    throw std::runtime_error("injected failure: stage '" + g_inject_stage +
                             "' circuit '" + circuit + "'");
}

// ---- stage runner ----------------------------------------------------------

constexpr const char* kStageNames[] = {"parse", "sweep", "schedule", "synth",
                                       "verify"};

// Run one stage body under the job's isolation contract: wall-clock it,
// catch anything it throws, and record a StageReport.  Returns true when the
// stage completed (Ok or a deadline-shaped soft stop), false on Error.
template <class Body>
bool run_stage(JobReport& rep, const char* name, const std::string& circuit,
               Body&& body) {
  StageReport sr;
  sr.name = name;
  const auto t0 = WallClock::now();
  try {
    maybe_inject(name, circuit);
    sr.status = body();  // body returns the stage's own status verdict
  } catch (const std::exception& e) {
    sr.status = StageStatus::error(std::string(name) + ": " + e.what());
  } catch (...) {
    sr.status = StageStatus::error(std::string(name) + ": unknown exception");
  }
  sr.seconds = seconds_since(t0);
  const bool ok = sr.status.code != StageCode::Error;
  rep.stages.push_back(std::move(sr));
  return ok;
}

// Mark the stages after a failure/stop as not run, so the report always
// lists all five stages and says why each missing one is missing.
void mark_not_run(JobReport& rep, const std::string& why) {
  for (std::size_t i = rep.stages.size(); i < 5; ++i) {
    StageReport sr;
    sr.name = kStageNames[i];
    sr.status = StageStatus::error("not run: " + why);
    rep.stages.push_back(std::move(sr));
  }
}

}  // namespace

void set_injected_failure(std::string stage, std::string circuit) {
  std::lock_guard<std::mutex> lock(g_inject_mutex);
  g_inject_stage = std::move(stage);
  g_inject_circuit = std::move(circuit);
  g_inject_armed.store(true, std::memory_order_relaxed);
}

void clear_injected_failure() {
  std::lock_guard<std::mutex> lock(g_inject_mutex);
  g_inject_stage.clear();
  g_inject_circuit.clear();
  g_inject_armed.store(false, std::memory_order_relaxed);
}

JobReport run_plan_job(const JobSpec& spec) {
  JobReport rep;
  rep.name = spec.name;
  const auto job_t0 = WallClock::now();

  // Whole-job deadline: checked at stage boundaries and folded into the
  // sweep deadline.  An unset timeout still observes the cancel token.
  Deadline job_dl = spec.job_timeout_s > 0 ? Deadline::after(spec.job_timeout_s)
                                           : Deadline();
  job_dl.observe(spec.cancel);

  // Stage-boundary gate: when the job deadline/cancel has fired, the next
  // stage is recorded as stopped (not Error — the job was told to stop) and
  // the pipeline ends.
  const auto boundary_stop = [&](const char* stage) {
    if (!job_dl.should_stop()) return false;
    StageReport sr;
    sr.name = stage;
    sr.status = job_dl.stop_status(stage);
    rep.stages.push_back(std::move(sr));
    mark_not_run(rep, "job stopped at stage '" + std::string(stage) + "'");
    rep.status = job_dl.stop_status("job");
    return true;
  };

  // --- parse ---------------------------------------------------------------
  Netlist cut;
  bool have_cut = false;
  if (!boundary_stop("parse")) {
    const bool ok = run_stage(rep, "parse", spec.name, [&] {
      cut = read_bench(spec.bench_text, spec.name, spec.limits);
      have_cut = true;
      return StageStatus{};
    });
    if (!ok) {
      mark_not_run(rep, "parse failed");
    }
  }

  // --- sweep ---------------------------------------------------------------
  bool have_sweep = false;
  if (have_cut && rep.stages.size() < 2 && !boundary_stop("sweep")) {
    run_stage(rep, "sweep", spec.name, [&] {
      // The sweep's anytime deadline is the tighter of the per-stage sweep
      // deadline and what is left of the whole-job budget; either way it
      // observes the external cancel.  run_mixed_sweep degrades rather than
      // fails, so this stage only Errors on a genuine exception.
      double remain_s = -1;
      if (spec.job_timeout_s > 0)
        remain_s = std::max(0.0, spec.job_timeout_s - seconds_since(job_t0));
      double sweep_s = -1;
      if (spec.sweep_deadline_s > 0) sweep_s = spec.sweep_deadline_s;
      if (remain_s >= 0) sweep_s = sweep_s < 0 ? remain_s
                                               : std::min(sweep_s, remain_s);
      Deadline sweep_dl =
          sweep_s >= 0 ? Deadline::after(sweep_s) : Deadline();
      sweep_dl.observe(spec.cancel);

      MixedTpgOptions topt = spec.tpg;
      topt.deadline = (sweep_s >= 0 || spec.cancel) ? &sweep_dl : nullptr;
      const SimKernel kernel(cut);
      rep.sweep = run_mixed_sweep(kernel, spec.sweep_lengths, topt);
      rep.solve_seconds = rep.sweep.stats.solve_seconds;
      have_sweep = true;
      return rep.sweep.status;  // Ok, or the anytime stop reason
    });
    if (!have_sweep) mark_not_run(rep, "sweep failed");
  }

  // --- schedule ------------------------------------------------------------
  bool have_plan = false;
  if (have_sweep && rep.stages.size() < 3 && !boundary_stop("schedule")) {
    const bool ok = run_stage(rep, "schedule", spec.name, [&] {
      ScheduleOptions so = spec.schedule;
      so.lfsr_degree = spec.tpg.lfsr_degree;
      so.lfsr_seed = spec.tpg.lfsr_seed;
      rep.plan = schedule_bist(rep.sweep, rep.sweep.width, so);
      rep.degraded = rep.plan.degraded;
      have_plan = true;
      return StageStatus{};
    });
    if (!ok) mark_not_run(rep, "schedule failed");
  }

  // --- synth ---------------------------------------------------------------
  Netlist wrapper;
  bool have_wrapper = false;
  if (have_plan && rep.stages.size() < 4 && !boundary_stop("synth")) {
    const bool ok = run_stage(rep, "synth", spec.name, [&] {
      BistSynthResult syn = synthesize_bist_wrapper(cut, rep.plan);
      wrapper = std::move(syn.wrapper);
      rep.wrapper_bench = write_bench(wrapper);
      have_wrapper = true;
      return StageStatus{};
    });
    if (!ok) mark_not_run(rep, "synth failed");
  }

  // --- verify --------------------------------------------------------------
  if (have_wrapper && rep.stages.size() < 5 && !boundary_stop("verify")) {
    run_stage(rep, "verify", spec.name, [&] {
      rep.verification = verify_wrapper(
          wrapper, cut, rep.plan, rep.sweep.points[rep.plan.point_index],
          spec.tpg.fsim);
      rep.wrapper_ok = rep.verification.ok();
      if (!rep.wrapper_ok)
        return StageStatus::error("verify: wrapper does not match the plan");
      return StageStatus{};
    });
  }

  // --- overall verdict -----------------------------------------------------
  // Error anywhere dominates; else the first deadline/cancel stop; else Ok.
  if (rep.status.ok()) {
    for (const StageReport& sr : rep.stages)
      if (sr.status.code == StageCode::Error) {
        rep.status = StageStatus::error("stage '" + sr.name +
                                        "' failed: " + sr.status.message);
        break;
      }
  }
  if (rep.status.ok()) {
    for (const StageReport& sr : rep.stages)
      if (!sr.status.ok()) {
        rep.status = sr.status;
        break;
      }
  }
  rep.seconds = seconds_since(job_t0);
  return rep;
}

std::vector<JobReport> run_job_batch(std::span<const JobSpec> specs,
                                     unsigned threads) {
  std::vector<JobReport> reports(specs.size());
  if (specs.empty()) return reports;
  WorkerPool pool(std::min<std::size_t>(resolve_threads(threads),
                                        specs.size()));
  // Grain 1: jobs are few and heavy.  run_plan_job never throws, so a
  // failing job fills its own report slot and the region always completes —
  // one bad circuit cannot poison its neighbors or wedge the pool.
  parallel_for(pool, specs.size(), 1,
               [&](unsigned, std::size_t b, std::size_t e) {
                 for (std::size_t i = b; i < e; ++i)
                   reports[i] = run_plan_job(specs[i]);
               });
  return reports;
}

}  // namespace bist
