#include "util/hash.hpp"

#include <bit>

namespace bist {
namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                      std::uint64_t basis) {
  std::uint64_t h = basis;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

std::string Digest128::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string s(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t w = i < 8 ? hi : lo;
    const unsigned shift = 8 * (7 - (i & 7));
    const std::uint8_t byte = static_cast<std::uint8_t>(w >> shift);
    s[2 * i] = digits[byte >> 4];
    s[2 * i + 1] = digits[byte & 0xf];
  }
  return s;
}

Hasher& Hasher::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    a_ = (a_ ^ p[i]) * kFnvPrime;
    b_ = (b_ ^ (p[i] + 0x9e)) * kFnvPrime;
  }
  return *this;
}

Hasher& Hasher::u8(std::uint8_t v) { return bytes(&v, 1); }

Hasher& Hasher::u16(std::uint16_t v) {
  const std::uint8_t le[2] = {std::uint8_t(v), std::uint8_t(v >> 8)};
  return bytes(le, 2);
}

Hasher& Hasher::u32(std::uint32_t v) {
  std::uint8_t le[4];
  for (int i = 0; i < 4; ++i) le[i] = std::uint8_t(v >> (8 * i));
  return bytes(le, 4);
}

Hasher& Hasher::u64(std::uint64_t v) {
  std::uint8_t le[8];
  for (int i = 0; i < 8; ++i) le[i] = std::uint8_t(v >> (8 * i));
  return bytes(le, 8);
}

Hasher& Hasher::f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }

Hasher& Hasher::str(std::string_view s) {
  u64(s.size());
  return bytes(s.data(), s.size());
}

Digest128 Hasher::digest() const {
  return Digest128{splitmix64(a_), splitmix64(b_)};
}

}  // namespace bist
