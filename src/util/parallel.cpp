#include "util/parallel.hpp"

#include <algorithm>

namespace bist {

unsigned resolve_threads(unsigned requested) {
  unsigned n = requested;
  if (n == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = hw == 0 ? 1 : hw;
  }
  // Cap absurd requests (e.g. a negative CLI value cast to unsigned) instead
  // of spawning until pthread_create fails and std::thread terminates.
  return std::min(n, kMaxWorkers);
}

WorkerPool::WorkerPool(unsigned workers) : n_(resolve_threads(workers)) {
  threads_.reserve(n_ - 1);
  for (unsigned wid = 1; wid < n_; ++wid)
    threads_.emplace_back([this, wid] { thread_main(wid); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::invoke(const std::function<void(unsigned)>& fn, unsigned wid) {
  // Exception containment: a throwing fn must not tear down a pool thread
  // (std::terminate) or wedge the region.  The first exception to land is
  // kept, the rest of the region runs to completion, and run() rethrows on
  // the calling thread once everyone has joined — so the pool is always
  // reusable after a failed region.
  try {
    fn(wid);
  } catch (...) {
    std::lock_guard<std::mutex> lock(m_);
    if (!error_) error_ = std::current_exception();
  }
}

void WorkerPool::run(const std::function<void(unsigned)>& fn) {
  if (n_ == 1) {
    fn(0);  // single-threaded: plain call, exceptions propagate directly
    return;
  }
  {
    std::lock_guard<std::mutex> lock(m_);
    job_ = &fn;
    pending_ = n_ - 1;
    ++generation_;
  }
  cv_start_.notify_all();
  invoke(fn, 0);
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(m_);
    cv_done_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void WorkerPool::thread_main(unsigned wid) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* job;
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    invoke(*job, wid);
    {
      std::lock_guard<std::mutex> lock(m_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace bist
