#pragma once
// Minimal ASCII line/scatter plotting for the figure benches.  The paper's
// figures are curves (coverage vs. length, cost vs. length); the benches
// print both the raw series (CSV-like rows) and a terminal plot so the
// "shape" claims can be eyeballed without external tooling.

#include <string>
#include <vector>

namespace bist {

struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
  char marker = '*';
};

struct PlotOptions {
  int width = 72;       ///< plot area columns
  int height = 20;      ///< plot area rows
  std::string title;
  std::string x_label;
  std::string y_label;
  bool y_from_zero = false;
};

/// Render one or more series into a text plot.
std::string ascii_plot(const std::vector<Series>& series, const PlotOptions& opt);

}  // namespace bist
