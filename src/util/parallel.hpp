#pragma once
// Minimal persistent worker pool for the fault-simulation engine.
//
// The pool owns workers()-1 std::threads parked on a condition variable;
// run(fn) wakes them, the calling thread participates as worker 0, and the
// call returns once every worker has finished fn(worker_id).  Keeping the
// threads alive across run() calls matters because the fault simulator
// issues one parallel region per pattern block — thousands per curve — and
// thread spawn cost would otherwise dominate small circuits.
//
// With workers() == 1 no threads are spawned at all and run() is a plain
// call, so the single-threaded configuration has zero synchronization cost
// and (by construction) bit-identical behavior to the multi-threaded one.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bist {

/// Upper bound on pool size; requests beyond it are clamped.
inline constexpr unsigned kMaxWorkers = 256;

/// 0 -> std::thread::hardware_concurrency() (at least 1), else the request,
/// clamped to kMaxWorkers.
unsigned resolve_threads(unsigned requested);

class WorkerPool {
 public:
  /// `workers` total workers including the calling thread; 0 resolves to the
  /// hardware concurrency.
  explicit WorkerPool(unsigned workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned workers() const { return n_; }

  /// Execute fn(wid) for wid in [0, workers()); returns after all complete.
  /// fn must not throw.  Not reentrant.
  void run(const std::function<void(unsigned)>& fn);

 private:
  void thread_main(unsigned wid);

  unsigned n_;
  std::vector<std::thread> threads_;
  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stop_ = false;
};

}  // namespace bist
