#pragma once
// Minimal persistent worker pool for the fault-simulation engine.
//
// The pool owns workers()-1 std::threads parked on a condition variable;
// run(fn) wakes them, the calling thread participates as worker 0, and the
// call returns once every worker has finished fn(worker_id).  Keeping the
// threads alive across run() calls matters because the fault simulator
// issues one parallel region per pattern block — thousands per curve — and
// thread spawn cost would otherwise dominate small circuits.
//
// With workers() == 1 no threads are spawned at all and run() is a plain
// call, so the single-threaded configuration has zero synchronization cost
// and (by construction) bit-identical behavior to the multi-threaded one.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bist {

/// Upper bound on pool size; requests beyond it are clamped.
inline constexpr unsigned kMaxWorkers = 256;

/// 0 -> std::thread::hardware_concurrency() (at least 1), else the request,
/// clamped to kMaxWorkers.
unsigned resolve_threads(unsigned requested);

class WorkerPool {
 public:
  /// `workers` total workers including the calling thread; 0 resolves to the
  /// hardware concurrency.
  explicit WorkerPool(unsigned workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned workers() const { return n_; }

  /// Execute fn(wid) for wid in [0, workers()); returns after all complete.
  /// fn may throw: the first exception (in completion order) is captured,
  /// the region still joins cleanly — every other worker finishes its fn
  /// call — and the exception is rethrown on the calling thread.  The pool
  /// remains fully usable afterwards.  Not reentrant.
  void run(const std::function<void(unsigned)>& fn);

 private:
  void thread_main(unsigned wid);
  void invoke(const std::function<void(unsigned)>& fn, unsigned wid);

  unsigned n_;
  std::vector<std::thread> threads_;
  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stop_ = false;
  /// First exception thrown by any worker of the current region; rethrown
  /// (and cleared) by run() after the region joins.
  std::exception_ptr error_;
};

/// Dynamic work distribution over a pool: workers repeatedly grab
/// `grain`-sized chunks [b, e) of the index range [0, n) off a shared atomic
/// cursor and call fn(wid, b, e) until the range is exhausted.  Chunks are
/// claimed in ascending order but executed by whichever worker gets there
/// first, so load balances itself when per-index cost is skewed — use grain
/// 1 for heavy-tailed work (PODEM faults: microseconds for easy detections
/// vs. a full backtrack-limit search for aborts), larger grains to amortize
/// cursor traffic when items are uniform and cheap.  The work *content* of
/// each index is fixed by the caller, so index-addressed results are
/// independent of the worker/chunk assignment.
///
/// If fn throws, the throwing worker stops claiming chunks (its claimed
/// chunk may be partially done and later chunks may be skipped entirely);
/// the other workers drain the remaining range, and the first exception is
/// rethrown on the calling thread per WorkerPool::run's contract.  Callers
/// that need completeness must treat a throwing parallel_for as a failed
/// region, not a partial result.
template <class Fn>
void parallel_for(WorkerPool& pool, std::size_t n, std::size_t grain,
                  Fn&& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  std::atomic<std::size_t> cursor{0};
  pool.run([&](unsigned wid) {
    for (;;) {
      const std::size_t b = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (b >= n) break;
      fn(wid, b, std::min(b + grain, n));
    }
  });
}

}  // namespace bist
