#include "util/deadline.hpp"

namespace bist {

std::string_view stage_code_name(StageCode c) {
  switch (c) {
    case StageCode::Ok: return "ok";
    case StageCode::DeadlineExceeded: return "deadline_exceeded";
    case StageCode::Cancelled: return "cancelled";
    case StageCode::Error: return "error";
    case StageCode::Rejected: return "rejected";
  }
  return "?";
}

Deadline Deadline::after(double seconds) {
  Deadline d;
  d.has_expiry_ = true;
  d.expiry_ = WallClock::now() +
              std::chrono::duration_cast<WallClock::duration>(
                  std::chrono::duration<double>(seconds < 0 ? 0 : seconds));
  return d;
}

Deadline Deadline::after_checks(std::uint64_t polls) {
  Deadline d;
  d.polls_left_ = std::make_shared<std::atomic<std::uint64_t>>(polls);
  return d;
}

bool Deadline::expired() const {
  if (hb_)
    hb_->store(WallClock::now().time_since_epoch().count(),
               std::memory_order_relaxed);
  if (polls_left_) {
    // fetch_sub with saturation: once the budget is gone every further poll
    // reports expired without wrapping the counter.
    std::uint64_t left = polls_left_->load(std::memory_order_relaxed);
    while (left > 0) {
      if (polls_left_->compare_exchange_weak(left, left - 1,
                                             std::memory_order_relaxed))
        return false;
    }
    return true;
  }
  return has_expiry_ && WallClock::now() >= expiry_;
}

StageCode Deadline::stop_code() const {
  if (cancelled()) return StageCode::Cancelled;
  if (expired()) return StageCode::DeadlineExceeded;
  return StageCode::Ok;
}

StageStatus Deadline::stop_status(std::string_view where) const {
  const StageCode c = stop_code();
  if (c == StageCode::Ok) return {};
  std::string msg{where};
  msg += c == StageCode::Cancelled ? ": cancelled" : ": deadline exceeded";
  return {c, std::move(msg)};
}

}  // namespace bist
