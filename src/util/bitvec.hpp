#pragma once
// Fixed-size packed bit vector used for test patterns, fault masks and
// LFSROM bit-streams.  64-bit word granularity to match the bit-parallel
// simulator (one pattern per lane).

#include <cstdint>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace bist {

/// Packed vector of bits with word-level access for bit-parallel algorithms.
///
/// Invariant: bits beyond size() in the last word are always zero, so
/// popcount(), words() and operator== never see stale tail bits.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t n, bool value = false);

  /// Parse from a string of '0'/'1' characters, index 0 = first character.
  static BitVec from_string(std::string_view s);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i, bool v) {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (v) words_[i >> 6] |= mask; else words_[i >> 6] &= ~mask;
  }
  void flip(std::size_t i) { words_[i >> 6] ^= std::uint64_t{1} << (i & 63); }

  void resize(std::size_t n, bool value = false);
  void push_back(bool v);
  void clear() { words_.clear(); size_ = 0; }

  /// Number of set bits.
  std::size_t popcount() const;
  /// True iff no bit is set.
  bool none() const;
  /// True iff at least one bit is set.
  bool any() const { return !none(); }

  /// Word-level access (for the bit-parallel simulator).
  std::size_t word_count() const { return words_.size(); }
  std::uint64_t word(std::size_t w) const { return words_[w]; }
  std::uint64_t& word(std::size_t w) { return words_[w]; }

  void set_all();
  void reset_all();

  BitVec& operator&=(const BitVec& o);
  BitVec& operator|=(const BitVec& o);
  BitVec& operator^=(const BitVec& o);

  bool operator==(const BitVec& o) const = default;

  /// Render as '0'/'1' string, index 0 first.
  std::string to_string() const;

  /// FNV-1a hash over the payload words (used by pattern dedup).
  std::size_t hash() const;

 private:
  void trim_tail();
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace bist
