#include "util/fileio.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace bist {
namespace {

namespace fs = std::filesystem;

// Full-buffer write loop (write(2) may be short without error).
bool write_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool write_fd_sync(const std::string& path, std::span<const std::uint8_t> data,
                   int flags) {
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return false;
  bool ok = write_all(fd, data.data(), data.size());
  ok = ok && ::fsync(fd) == 0;
  ok = (::close(fd) == 0) && ok;
  return ok;
}

}  // namespace

bool FileOps::write_file(const std::string& path,
                         std::span<const std::uint8_t> data) {
  return write_fd_sync(path, data, O_WRONLY | O_CREAT | O_TRUNC);
}

bool FileOps::append_file(const std::string& path,
                          std::span<const std::uint8_t> data) {
  return write_fd_sync(path, data, O_WRONLY | O_CREAT | O_APPEND);
}

bool FileOps::read_file(const std::string& path,
                        std::vector<std::uint8_t>& out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out.clear();
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (r == 0) break;
    out.insert(out.end(), buf, buf + r);
  }
  ::close(fd);
  return true;
}

bool FileOps::rename_file(const std::string& from, const std::string& to) {
  return ::rename(from.c_str(), to.c_str()) == 0;
}

bool FileOps::remove_file(const std::string& path) {
  return ::unlink(path.c_str()) == 0;
}

bool FileOps::make_dirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  return !ec && fs::is_directory(path, ec);
}

bool FileOps::exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

bool FileOps::sync_parent_dir(const std::string& path) {
  const fs::path parent = fs::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

FileOps& FileOps::real() {
  static FileOps ops;
  return ops;
}

bool atomic_write_file(FileOps& ops, const std::string& path,
                       std::span<const std::uint8_t> data) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  if (!ops.write_file(tmp, data)) {
    ops.remove_file(tmp);  // best effort: a short write leaves a stub behind
    return false;
  }
  if (!ops.rename_file(tmp, path)) {
    ops.remove_file(tmp);
    return false;
  }
  ops.sync_parent_dir(path);  // advisory: rename already happened
  return true;
}

}  // namespace bist
