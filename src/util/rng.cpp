#include "util/rng.hpp"

namespace bist {

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1) | 1) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Rng::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ull + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
  const auto rot = static_cast<std::uint32_t>(old >> 59);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

std::uint64_t Rng::next_u64() {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

std::uint32_t Rng::next_below(std::uint32_t bound) {
  if (bound == 0) return 0;
  // Lemire-style rejection to avoid modulo bias.
  const std::uint32_t threshold = static_cast<std::uint32_t>(-bound) % bound;
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 random bits -> uniform in [0,1).
  const std::uint64_t hi = next_u32() >> 5;   // 27 bits
  const std::uint64_t lo = next_u32() >> 6;   // 26 bits
  return static_cast<double>((hi << 26) | lo) * (1.0 / 9007199254740992.0);
}

bool Rng::next_bool(double p) { return next_double() < p; }

}  // namespace bist
