#pragma once
// Small string helpers shared by the .bench parser and the report writers.

#include <string>
#include <string_view>
#include <vector>

namespace bist {

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on any character in `seps`, dropping empty tokens.
std::vector<std::string_view> split(std::string_view s, std::string_view seps);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

/// Upper-case an ASCII string.
std::string to_upper(std::string_view s);

/// printf-style number formatting helpers used by report tables.
std::string format_fixed(double v, int decimals);

}  // namespace bist
