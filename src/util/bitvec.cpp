#include "util/bitvec.hpp"

#include <bit>
#include <stdexcept>

namespace bist {

BitVec::BitVec(std::size_t n, bool value) { resize(n, value); }

BitVec BitVec::from_string(std::string_view s) {
  BitVec v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    switch (s[i]) {
      case '0': break;
      case '1': v.set(i, true); break;
      default: throw std::invalid_argument("BitVec::from_string: bad char");
    }
  }
  return v;
}

void BitVec::resize(std::size_t n, bool value) {
  const std::size_t old = size_;
  words_.resize((n + 63) / 64, value ? ~std::uint64_t{0} : 0);
  if (value && n > old && old % 64 != 0 && !words_.empty()) {
    // Fill the gap bits in the word that straddles the old size.
    words_[old >> 6] |= ~std::uint64_t{0} << (old & 63);
  }
  size_ = n;
  trim_tail();
}

void BitVec::push_back(bool v) {
  if (size_ % 64 == 0) words_.push_back(0);
  ++size_;
  if (v) set(size_ - 1, true);
}

std::size_t BitVec::popcount() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVec::none() const {
  for (auto w : words_)
    if (w != 0) return false;
  return true;
}

void BitVec::set_all() {
  for (auto& w : words_) w = ~std::uint64_t{0};
  trim_tail();
}

void BitVec::reset_all() {
  for (auto& w : words_) w = 0;
}

BitVec& BitVec::operator&=(const BitVec& o) {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& o) {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

BitVec& BitVec::operator^=(const BitVec& o) {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
  trim_tail();
  return *this;
}

std::string BitVec::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i)) s[i] = '1';
  return s;
}

std::size_t BitVec::hash() const {
  std::uint64_t h = 1469598103934665603ull;
  for (auto w : words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  h ^= size_;
  h *= 1099511628211ull;
  return static_cast<std::size_t>(h);
}

void BitVec::trim_tail() {
  if (size_ % 64 != 0 && !words_.empty())
    words_.back() &= (std::uint64_t{1} << (size_ & 63)) - 1;
}

}  // namespace bist
