#pragma once
// Shared steady-clock timing shorthand for the phase-timed sections (mixed
// scheme, sweep engine, bench harness).

#include <chrono>

namespace bist {

using WallClock = std::chrono::steady_clock;

inline double seconds_since(WallClock::time_point t0) {
  return std::chrono::duration<double>(WallClock::now() - t0).count();
}

}  // namespace bist
