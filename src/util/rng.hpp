#pragma once
// Deterministic, seedable PRNG (PCG32) so every experiment in the benches is
// reproducible bit-for-bit across runs and platforms.  <random> engines are
// not guaranteed identical across standard libraries; PCG32 is.

#include <cstdint>

namespace bist {

/// PCG32 (O'Neill). 64-bit state, 32-bit output, period 2^64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull,
               std::uint64_t stream = 0xda3e39cb94b95bdbull);

  std::uint32_t next_u32();
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias.
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli with probability p.
  bool next_bool(double p = 0.5);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace bist
