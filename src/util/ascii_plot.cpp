#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace bist {

std::string ascii_plot(const std::vector<Series>& series, const PlotOptions& opt) {
  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = std::numeric_limits<double>::infinity(), ymax = -ymin;
  for (const auto& s : series) {
    for (double v : s.x) { xmin = std::min(xmin, v); xmax = std::max(xmax, v); }
    for (double v : s.y) { ymin = std::min(ymin, v); ymax = std::max(ymax, v); }
  }
  if (!(xmin <= xmax) || !(ymin <= ymax)) return "(empty plot)\n";
  if (opt.y_from_zero) ymin = std::min(ymin, 0.0);
  if (xmax == xmin) xmax = xmin + 1;
  if (ymax == ymin) ymax = ymin + 1;

  const int W = std::max(opt.width, 16), H = std::max(opt.height, 6);
  std::vector<std::string> grid(H, std::string(W, ' '));

  for (const auto& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      int cx = static_cast<int>(std::lround((s.x[i] - xmin) / (xmax - xmin) * (W - 1)));
      int cy = static_cast<int>(std::lround((s.y[i] - ymin) / (ymax - ymin) * (H - 1)));
      cx = std::clamp(cx, 0, W - 1);
      cy = std::clamp(cy, 0, H - 1);
      grid[H - 1 - cy][cx] = s.marker;
    }
  }

  std::ostringstream os;
  if (!opt.title.empty()) os << "  " << opt.title << "\n";
  char buf[64];
  for (int r = 0; r < H; ++r) {
    const double yv = ymax - (ymax - ymin) * r / (H - 1);
    std::snprintf(buf, sizeof buf, "%10.2f |", yv);
    os << buf << grid[r] << "\n";
  }
  os << std::string(12, ' ') << std::string(W, '-') << "\n";
  std::snprintf(buf, sizeof buf, "%12s%-10.1f", " ", xmin);
  os << buf << std::string(W > 30 ? W - 20 : 1, ' ');
  std::snprintf(buf, sizeof buf, "%10.1f", xmax);
  os << buf << "\n";
  if (!opt.x_label.empty())
    os << std::string(12 + W / 2 - static_cast<int>(opt.x_label.size() / 2), ' ')
       << opt.x_label << "\n";
  for (const auto& s : series)
    os << "    [" << s.marker << "] " << s.name << "\n";
  return os.str();
}

}  // namespace bist
