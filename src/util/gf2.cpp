#include "util/gf2.hpp"

#include <bit>

namespace bist {

Gf2Matrix Gf2Matrix::identity(unsigned n) {
  Gf2Matrix m(n);
  for (unsigned i = 0; i < n; ++i) m.rows_[i] = std::uint64_t{1} << i;
  return m;
}

std::uint64_t Gf2Matrix::apply(std::uint64_t v) const {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < n_; ++i)
    r |= std::uint64_t(std::popcount(rows_[i] & v) & 1) << i;
  return r;
}

Gf2Matrix Gf2Matrix::operator*(const Gf2Matrix& o) const {
  // (this * o) row i: combine the rows of o selected by this->rows_[i].
  Gf2Matrix r(n_);
  for (unsigned i = 0; i < n_; ++i) {
    std::uint64_t acc = 0;
    std::uint64_t sel = rows_[i];
    while (sel) {
      const unsigned j = std::countr_zero(sel);
      sel &= sel - 1;
      acc ^= o.rows_[j];
    }
    r.rows_[i] = acc;
  }
  return r;
}

Gf2Matrix Gf2Matrix::pow(std::uint64_t e) const {
  Gf2Matrix r = identity(n_);
  Gf2Matrix b = *this;
  while (e) {
    if (e & 1) r = r * b;
    b = b * b;
    e >>= 1;
  }
  return r;
}

Gf2Matrix lfsr_transition(unsigned degree, std::uint64_t taps) {
  Gf2Matrix m(degree);
  m.set_row(0, taps);  // fb = parity(state & taps)
  for (unsigned j = 1; j < degree; ++j)
    m.set_row(j, std::uint64_t{1} << (j - 1));  // shift up
  return m;
}

Gf2Add Gf2Solver::add(std::uint64_t coeffs, bool rhs) {
  std::uint8_t r = rhs;
  while (coeffs) {
    const unsigned lead = 63 - std::countl_zero(coeffs);
    if (!has_[lead]) {
      pivot_[lead] = coeffs;
      rhs_[lead] = r;
      has_[lead] = 1;
      ++rank_;
      return Gf2Add::Inserted;
    }
    coeffs ^= pivot_[lead];
    r ^= rhs_[lead];
  }
  return r ? Gf2Add::Inconsistent : Gf2Add::Redundant;
}

bool Gf2Solver::conflicts(std::uint64_t coeffs, bool rhs) const {
  std::uint8_t r = rhs;
  while (coeffs) {
    const unsigned lead = 63 - std::countl_zero(coeffs);
    if (!has_[lead]) return false;  // would insert
    coeffs ^= pivot_[lead];
    r ^= rhs_[lead];
  }
  return r != 0;
}

std::uint64_t Gf2Solver::solve(std::uint64_t free_values) const {
  // Non-leading bits of a pivot row are strictly below its leading bit, so
  // assigning variables from bit 0 upward sees every dependency resolved.
  std::uint64_t x = 0;
  for (unsigned i = 0; i < vars_; ++i) {
    if (!has_[i]) {
      x |= free_values & (std::uint64_t{1} << i);
      continue;
    }
    const std::uint64_t below = pivot_[i] & ((std::uint64_t{1} << i) - 1);
    const unsigned bit = rhs_[i] ^ (std::popcount(below & x) & 1);
    x |= std::uint64_t(bit) << i;
  }
  return x;
}

}  // namespace bist
