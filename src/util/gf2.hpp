#pragma once
// GF(2) linear algebra over machine words — the substrate of the LFSR
// reseeding compression layer (bist/compress).  Everything here works on
// n <= 64 variables packed into one std::uint64_t per row, which covers the
// repo's LFSR degrees (2..64) with no allocation in the hot paths.
//
// Three pieces:
//
//   Gf2Matrix        square bit matrix (row-major words) with multiply and
//                    square-and-multiply exponentiation — used to expand the
//                    LFSR tap polynomial's transition matrix M so that the
//                    state after t steps is M^t * seed without stepping.
//   lfsr_transition  the companion matrix of Lfsr::step() for a given
//                    (degree, taps), in the same bit convention as the Lfsr
//                    class: state bit j of the product equals bit j of the
//                    stepped register.
//   Gf2Solver        incremental Gaussian elimination over (coeffs, rhs)
//                    equations: add() reduces a new equation against the
//                    pivot basis and reports Inserted / Redundant /
//                    Inconsistent, solve() back-substitutes a particular
//                    solution with caller-chosen free-variable values.
//                    Snapshots (plain copies) make the reseeding solver's
//                    windowed rollback trivial.
//
// The reseeding solve in bist/compress leans on one structural fact proved
// by test_gf2: for the first `degree` stream bits after a seed load the
// equations are the identity rows (stream bit t = seed bit degree-1-t), so
// a care bit never conflicts inside the load window and segmentation always
// terminates.

#include <cstdint>
#include <vector>

namespace bist {

/// Dense square bit matrix over GF(2); row i is a packed word, column j is
/// bit j.  (M * v)[i] = parity(row[i] & v).
class Gf2Matrix {
 public:
  Gf2Matrix() = default;
  explicit Gf2Matrix(unsigned n) : n_(n), rows_(n, 0) {}

  static Gf2Matrix identity(unsigned n);

  unsigned size() const { return n_; }
  std::uint64_t row(unsigned i) const { return rows_[i]; }
  void set_row(unsigned i, std::uint64_t r) { rows_[i] = r; }
  bool get(unsigned i, unsigned j) const { return (rows_[i] >> j) & 1; }
  void set(unsigned i, unsigned j, bool v) {
    rows_[i] = v ? rows_[i] | (std::uint64_t{1} << j)
                 : rows_[i] & ~(std::uint64_t{1} << j);
  }

  /// Matrix-vector product (vector packed LSB-first).
  std::uint64_t apply(std::uint64_t v) const;
  Gf2Matrix operator*(const Gf2Matrix& o) const;
  /// M^e by square-and-multiply; M^0 = identity.
  Gf2Matrix pow(std::uint64_t e) const;

  bool operator==(const Gf2Matrix& o) const {
    return n_ == o.n_ && rows_ == o.rows_;
  }

 private:
  unsigned n_ = 0;
  std::vector<std::uint64_t> rows_;
};

/// One-step transition matrix of Lfsr::step() for (degree, taps): if s is
/// the packed register before the step and s' after, then s' = M * s.
/// Row 0 is the taps mask (feedback parity), row j>0 is e_{j-1} (shift).
Gf2Matrix lfsr_transition(unsigned degree, std::uint64_t taps);

/// Verdict of adding one equation to a Gf2Solver.
enum class Gf2Add : std::uint8_t {
  Inserted,      ///< new pivot created; rank grew by one
  Redundant,     ///< linear combination of existing equations, same rhs
  Inconsistent,  ///< linear combination of existing equations, rhs differs
};

/// Incremental GF(2) Gaussian elimination over up to `vars` variables.
/// Equations are (coefficient mask, rhs bit); the pivot basis keeps one row
/// per leading (highest set) bit.  Copyable: a plain copy is a snapshot.
class Gf2Solver {
 public:
  Gf2Solver() = default;
  explicit Gf2Solver(unsigned vars) : vars_(vars), pivot_(vars, 0),
                                      rhs_(vars, 0), has_(vars, 0) {}

  unsigned vars() const { return vars_; }
  unsigned rank() const { return rank_; }

  /// Reduce (coeffs, rhs) against the basis and insert if independent.
  /// An Inconsistent equation leaves the solver unchanged.
  Gf2Add add(std::uint64_t coeffs, bool rhs);

  /// True iff adding (coeffs, rhs) would return Inconsistent (no mutation).
  bool conflicts(std::uint64_t coeffs, bool rhs) const;

  /// Particular solution with every free (pivot-less) variable taken from
  /// the matching bit of `free_values`.  The basis is kept reduced (each
  /// pivot row's trailing bits only involve free variables or lower pivots),
  /// so one pass from low to high bits back-substitutes exactly.
  std::uint64_t solve(std::uint64_t free_values = 0) const;

 private:
  unsigned vars_ = 0;
  unsigned rank_ = 0;
  std::vector<std::uint64_t> pivot_;  ///< row with leading bit i (0 if none)
  std::vector<std::uint8_t> rhs_;     ///< rhs of pivot row i
  std::vector<std::uint8_t> has_;     ///< pivot row i present
};

}  // namespace bist
