#pragma once
// Cooperative deadlines and cancellation for the compute pipeline.
//
// Every long-running stage (fault simulation, PODEM, the mixed-scheme
// sweep) accepts an optional `const Deadline*` through its options struct
// and polls it at a bounded cadence — per pattern-block group, per PODEM
// decision, per sweep point — so cancellation latency is bounded by one
// unit of that granularity and a stage never has to be killed from
// outside.  A stage that stops early reports how far it got through a
// StageStatus carried in its result; the work it *did* complete is
// bit-identical to the same prefix of an uninterrupted run (the checks
// read the clock and a flag, never any state the computation depends on).
//
// Deadline is a value type: a monotonic-clock expiry (steady_clock, so
// wall-clock adjustments cannot fire or un-fire it) plus an optional
// CancelToken to observe.  A default-constructed Deadline never stops
// anything, so `const Deadline* = nullptr` and `&Deadline{}` behave the
// same and callers can thread one pointer through unconditionally.
//
// For deterministic tests there is a third trigger: after_checks(n)
// expires on the (n+1)-th poll regardless of elapsed time, which lets a
// test fire a deadline at an exact cooperative check without racing the
// clock.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/wallclock.hpp"

namespace bist {

/// Outcome of one pipeline stage, carried in results instead of thrown.
enum class StageCode : std::uint8_t {
  Ok,                ///< ran to completion
  DeadlineExceeded,  ///< stopped at a cooperative check: deadline expired
  Cancelled,         ///< stopped at a cooperative check: token cancelled
  Error,             ///< threw; message carries what()
  Rejected,          ///< never ran: shed at admission (overload/quarantine).
                     ///< Distinct from Error so shed load is distinguishable
                     ///< from failed work in every report.
};

std::string_view stage_code_name(StageCode c);  // "ok", "deadline_exceeded", ...

struct StageStatus {
  StageCode code = StageCode::Ok;
  std::string message;  ///< empty unless the code wants context

  bool ok() const { return code == StageCode::Ok; }
  static StageStatus error(std::string msg) {
    return {StageCode::Error, std::move(msg)};
  }
  static StageStatus deadline_exceeded(std::string msg = {}) {
    return {StageCode::DeadlineExceeded, std::move(msg)};
  }
  static StageStatus cancelled(std::string msg = {}) {
    return {StageCode::Cancelled, std::move(msg)};
  }
  static StageStatus rejected(std::string msg = {}) {
    return {StageCode::Rejected, std::move(msg)};
  }
};

/// Sticky cooperative cancel flag, safe to set from any thread while
/// workers poll it.  cancel() is one-way; reset() re-arms for reuse.
class CancelToken {
 public:
  void cancel() { flag_.store(true, std::memory_order_release); }
  void reset() { flag_.store(false, std::memory_order_release); }
  bool cancelled() const { return flag_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> flag_{false};
};

class Deadline {
 public:
  /// Never expires and observes no token.
  Deadline() = default;

  /// Expires `seconds` of monotonic time from now (<= 0 = already expired).
  static Deadline after(double seconds);
  /// Already expired; every poll reports DeadlineExceeded.
  static Deadline immediate() { return after(0); }
  /// Test hook: expires once expired() has been polled more than `polls`
  /// times (across all threads — the counter is atomic), independent of the
  /// clock.  Fires at an exact cooperative check, so tests of mid-flight
  /// degradation are deterministic in *whether* they fire, without racing
  /// real time.
  static Deadline after_checks(std::uint64_t polls);

  /// Observe `token` (may be nullptr to detach); the token must outlive
  /// every poll.  Returns *this for chaining.
  Deadline& observe(const CancelToken* token) {
    token_ = token;
    return *this;
  }

  /// Publish a liveness heartbeat to `hb` (steady-clock nanoseconds) on every
  /// cooperative poll.  The job-service watchdog reads it to tell "past its
  /// deadline but still polling" (the job's own deadline will stop it within
  /// one poll interval) from "stopped polling" (wedged — cancel now).  May be
  /// nullptr to detach; the atomic must outlive every poll.
  Deadline& heartbeat(std::atomic<std::int64_t>* hb) {
    hb_ = hb;
    return *this;
  }

  bool cancelled() const { return token_ && token_->cancelled(); }
  /// Clock/poll-count expiry only (cancellation is separate).
  bool expired() const;
  /// The one hot-loop predicate: cancelled or expired.
  bool should_stop() const { return cancelled() || expired(); }

  /// Cancelled wins over DeadlineExceeded (an explicit cancel is the
  /// stronger signal); Ok when neither fired.
  StageCode stop_code() const;
  /// StageStatus form of stop_code(), tagged with the stage that stopped.
  StageStatus stop_status(std::string_view where) const;

 private:
  bool has_expiry_ = false;
  WallClock::time_point expiry_{};
  /// Poll-count trigger (test hook); shared so Deadline stays copyable with
  /// all copies counting against the same budget.
  std::shared_ptr<std::atomic<std::uint64_t>> polls_left_;
  const CancelToken* token_ = nullptr;
  std::atomic<std::int64_t>* hb_ = nullptr;  ///< liveness sink, see heartbeat()
};

}  // namespace bist
