#pragma once
// Content hashing for the persistence layer: a streaming 128-bit digest used
// to key the result store (canonical hashes of netlists, option structs and
// sweep-length lists) and a plain FNV-1a 64 used as the record checksum.
//
// Non-cryptographic by design — the store defends against corruption and
// version skew, not adversaries.  What matters here is (a) the digest is a
// pure function of the *fields fed in*, independent of process, pointer or
// platform state, and (b) field boundaries are unambiguous: every variable-
// length item is length-prefixed before its bytes, so ("ab","c") and
// ("a","bc") hash differently.  All integers are folded in little-endian
// byte order explicitly, so the digest is stable across hosts.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace bist {

/// FNV-1a 64-bit over a byte span (record checksums, quick content tags).
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                      std::uint64_t basis = 0xcbf29ce484222325ull);

struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Digest128&) const = default;
  /// 32 lowercase hex characters, hi first — stable file-name material.
  std::string hex() const;
};

/// Streaming two-lane FNV-1a/splitmix hasher producing a Digest128.  The two
/// lanes start from distinct bases and the second perturbs each byte, so a
/// single-lane collision does not collide the pair; digest() applies a
/// splitmix64 finalizer per lane for avalanche.
class Hasher {
 public:
  Hasher& bytes(const void* data, std::size_t n);
  Hasher& u8(std::uint8_t v);
  Hasher& u16(std::uint16_t v);
  Hasher& u32(std::uint32_t v);
  Hasher& u64(std::uint64_t v);
  Hasher& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  /// Doubles fold their IEEE-754 bit pattern (bit-identical inputs only —
  /// exactly the determinism contract the engines already provide).
  Hasher& f64(double v);
  /// Length-prefixed string (the prefix keeps field boundaries unambiguous).
  Hasher& str(std::string_view s);

  Digest128 digest() const;

 private:
  std::uint64_t a_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  std::uint64_t b_ = 0x6c62272e07bb0142ull;  // distinct basis, perturbed lane
};

}  // namespace bist
