#pragma once
// Durable file I/O for the result store: a small virtual FileOps surface so
// tests can inject failures (short writes, ENOSPC, refused renames) under
// the exact code paths production uses, plus the atomic-publish primitive
// the store is built on.
//
// Durability contract of atomic_write_file():
//
//   1. the payload is written to `<path>.tmp.<pid>` in full and fsync'd;
//   2. the temp file is rename(2)'d onto the final path — atomic on POSIX,
//      so a reader (or a crash) sees either the old file or the complete new
//      one, never a partial write;
//   3. the parent directory is fsync'd so the rename itself survives a
//      crash.
//
// Every operation reports failure by return value, never by exception — the
// store treats a failed publish as "not cached" and a failed read as a miss,
// so I/O trouble can degrade performance but never correctness.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace bist {

/// Overridable file-system operations.  The default implementation is the
/// real POSIX one; tests subclass it to simulate short writes, full disks
/// and rename failures at exact byte counts.
class FileOps {
 public:
  virtual ~FileOps() = default;

  /// Create/truncate `path`, write all bytes, fsync, close.  False on any
  /// failure (the partial file, if any, is left for the caller to clean).
  virtual bool write_file(const std::string& path,
                          std::span<const std::uint8_t> data);
  /// Append all bytes to `path` (creating it if needed), fsync, close.
  virtual bool append_file(const std::string& path,
                           std::span<const std::uint8_t> data);
  /// Read the whole file into `out`; false if missing or unreadable.
  virtual bool read_file(const std::string& path,
                         std::vector<std::uint8_t>& out);
  virtual bool rename_file(const std::string& from, const std::string& to);
  virtual bool remove_file(const std::string& path);
  /// mkdir -p; true if the directory exists afterwards.
  virtual bool make_dirs(const std::string& path);
  virtual bool exists(const std::string& path);
  /// fsync the directory containing `path` (durability of renames/creates).
  virtual bool sync_parent_dir(const std::string& path);

  /// Process-wide real-POSIX instance.
  static FileOps& real();
};

/// Atomic durable publish: temp file + fsync + rename + parent-dir fsync as
/// described above.  On failure the temp file is removed (best effort) and
/// the final path is untouched.
bool atomic_write_file(FileOps& ops, const std::string& path,
                       std::span<const std::uint8_t> data);

}  // namespace bist
