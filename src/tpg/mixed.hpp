#pragma once
// The paper's mixed test scheme, end to end for one circuit:
//
//   LFSR phase        maximal-length LFSR patterns through the PPSFP fault
//                     simulator -> coverage curve + undetected tail
//   top-off phase     PODEM test cube per tail fault (redundant and aborted
//                     faults classified separately), X bits random-filled
//   compaction        reverse-order fault simulation drops patterns whose
//                     targets are covered by later patterns
//   verification      every emitted pattern re-checked by the PPSFP
//                     propagate against its target fault
//
// MixedSchemeResult carries the quantities the scheduler and area model
// trade off: LFSR length vs. deterministic pattern count (ROM bits) and the
// achieved coverage under both fault-accounting conventions.

#include <cstdint>
#include <vector>

#include "bist/compress.hpp"
#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "fault/podem.hpp"
#include "sim/kernel.hpp"
#include "util/bitvec.hpp"
#include "util/deadline.hpp"

namespace bist {

struct MixedTpgOptions {
  std::size_t lfsr_patterns = 4096;  ///< pseudo-random phase length
  unsigned lfsr_degree = 32;
  std::uint64_t lfsr_seed = 0xBADC0FFEu;
  /// Fault-simulation engine knobs (threads, word width) for the LFSR phase
  /// and the final tail accounting; detection results are engine-invariant,
  /// so these only change speed.
  FaultSimOptions fsim;
  PodemOptions podem;
  /// Worker count for the PODEM top-off phase (resolve_threads semantics:
  /// 0 = hardware concurrency).  Verdicts are reduced in fixed fault order,
  /// so results are bit-identical for every value; this only changes speed.
  unsigned podem_threads = 1;
  std::uint64_t fill_seed = 0x5EEDF111;  ///< X-fill RNG seed for test cubes
  /// Compressed test-data architecture (the default): each detected cube is
  /// solved into an LFSR reseeding schedule (bist/compress), the stored
  /// top-off pattern is DEFINED as the seed expansion (free seed variables
  /// take the X-fill stream's bits), and a MISR spec + golden signature over
  /// the applied stream is attached to the result.  false selects the legacy
  /// fully decoded ROM path — bit-identical to the pre-compression pipeline.
  bool compress = true;
  /// MISR degree override; 0 = misr_degree_for(CUT output count).  Only
  /// meaningful when `compress` is set.
  unsigned misr_degree = 0;
  /// MISR output-to-stage assignment override (size = CUT output count,
  /// values < degree).  Empty = audited automatic selection, per point:
  /// once a point's applied stream is final (pseudo-random prefix plus kept
  /// top-off set), choose_misr_fold() picks an assignment with zero
  /// empirical aliasing escapes over everything that stream detects (the
  /// natural o mod K fold when it is already clean).  The audit must see
  /// the top-off patterns: the random-pattern-resistant faults they target
  /// are exactly the ones a pseudo-random-only audit can never check.
  std::vector<std::uint16_t> misr_fold;
  bool compact = true;           ///< reverse-order compaction of the top-off set
  bool verify_patterns = true;   ///< fault-sim check of every emitted pattern
  /// Cooperative deadline/cancel for the whole scheme, threaded into the
  /// fault-sim pass (per block group) and PODEM (per decision, per fault).
  /// When it fires, the run degrades instead of failing: see
  /// MixedSchemeResult::state.  nullptr = never stops.
  const Deadline* deadline = nullptr;
};

/// How much of a mixed-scheme evaluation actually ran — the anytime ladder
/// the scheduler selects over when a deadline cuts a sweep short.
enum class PointState : std::uint8_t {
  Complete,  ///< full pipeline: LFSR phase + PODEM top-off + compaction
  LfsrOnly,  ///< LFSR phase finished but the top-off did not: coverage and
             ///< tail are exact for the pseudo-random phase alone, topoff
             ///< is empty — a valid (degraded) hardware point
  Skipped,   ///< nothing usable ran; every data field is meaningless
};

std::string_view point_state_name(PointState s);

struct MixedSchemeResult {
  std::size_t lfsr_patterns = 0;
  std::size_t tail_faults = 0;     ///< undetected after the LFSR phase
  std::size_t podem_detected = 0;  ///< tail faults with a generated test
  std::size_t redundant = 0;
  std::size_t aborted = 0;
  std::uint64_t podem_backtracks = 0;
  std::uint64_t podem_decisions = 0;
  std::size_t topoff_before_compaction = 0;
  std::size_t topoff_patterns = 0;  ///< |topoff| after compaction
  /// Deterministic top-off set in application order.
  std::vector<BitVec> topoff;
  /// Compression artifacts (comp.enabled iff opt.compress and the point ran
  /// far enough to define an applied stream): per-row seed schedules and
  /// fallback flags aligned with `topoff`, MISR spec, golden signature over
  /// the LFSR phase + top-off stream.  LfsrOnly points carry the MISR and
  /// golden for their (possibly truncated) pseudo-random prefix with no
  /// seeds; Skipped points leave it disabled.
  CompressedTopoff comp;
  std::vector<Fault> redundant_faults;
  std::vector<Fault> aborted_faults;
  /// Coverage after the LFSR phase alone / after LFSR + top-off, collapsed
  /// convention (denominator = collapsed faults) and total-enumerated
  /// convention (class-size weighted, denominator = uncollapsed faults).
  double lfsr_coverage = 0.0;
  double lfsr_coverage_weighted = 0.0;
  double final_coverage = 0.0;
  double final_coverage_weighted = 0.0;
  /// True iff every emitted pattern was confirmed to detect its target fault
  /// (trivially true when verification is disabled).
  bool all_verified = true;
  /// Full LFSR-phase result (coverage curves for the scheduler).
  FaultSimResult lfsr_result;
  /// Wall-clock phase breakdown: pseudo-random phase (LFSR stream + fault
  /// simulation; 0 when a precomputed result was supplied), deterministic
  /// phase (PODEM generation + X-fill + pattern verification), and back end
  /// (compaction + final tail accounting).  Sweep points report only the
  /// work actually done for that point (cache hits cost no PODEM time).
  double lfsr_seconds = 0.0;
  double podem_seconds = 0.0;
  double compact_seconds = 0.0;
  /// Compression-layer wall-clock (GF(2) reseeding solves + golden-signature
  /// simulation); a sub-measure of the phases above, not additional time.
  double solve_seconds = 0.0;
  /// Anytime ladder position (Complete unless a deadline/cancel fired) and
  /// why a non-Complete state was reached.  For a Complete point `status`
  /// is Ok and every field is bit-identical to an undeadlined run; for
  /// LfsrOnly the lfsr_* fields and final_coverage (== lfsr_coverage) are
  /// exact and topoff is empty; for Skipped nothing is valid.
  PointState state = PointState::Complete;
  StageStatus status;
};

/// Run the mixed scheme on a compiled circuit.  Deterministic for a given
/// kernel + options.
MixedSchemeResult run_mixed_tpg(const SimKernel& k,
                                const MixedTpgOptions& opt = {});

/// Same, reusing a prebuilt FaultSimulator (skips fault re-enumeration) and,
/// when `lfsr_result` is non-null, a precomputed LFSR-phase result — the
/// caller vouches that it came from `fsim` with the LFSR stream `opt`
/// describes.  Used by the bench, which has already run the LFSR phase.
MixedSchemeResult run_mixed_tpg(const SimKernel& k, FaultSimulator& fsim,
                                const MixedTpgOptions& opt,
                                const FaultSimResult* lfsr_result = nullptr);

}  // namespace bist
