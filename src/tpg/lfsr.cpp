#include "tpg/lfsr.hpp"

#include <bit>
#include <stdexcept>

namespace bist {
namespace {

// Maximal-length tap masks, degrees 2..32 (the standard XOR-form tables;
// comments list the tapped stages, 1-based from the feedback end, so
// [4,3] = taps mask bits {3,2}).  Each primitive polynomial's reciprocal is
// also primitive, so either stage-numbering convention yields full period.
constexpr std::uint64_t kPrimitiveTaps[33] = {
    0, 0,
    /* 2: [2,1]        */ 0x3,
    /* 3: [3,2]        */ 0x6,
    /* 4: [4,3]        */ 0xC,
    /* 5: [5,3]        */ 0x14,
    /* 6: [6,5]        */ 0x30,
    /* 7: [7,6]        */ 0x60,
    /* 8: [8,6,5,4]    */ 0xB8,
    /* 9: [9,5]        */ 0x110,
    /*10: [10,7]       */ 0x240,
    /*11: [11,9]       */ 0x500,
    /*12: [12,6,4,1]   */ 0x829,
    /*13: [13,4,3,1]   */ 0x100D,
    /*14: [14,5,3,1]   */ 0x2015,
    /*15: [15,14]      */ 0x6000,
    /*16: [16,15,13,4] */ 0xD008,
    /*17: [17,14]      */ 0x12000,
    /*18: [18,11]      */ 0x20400,
    /*19: [19,6,2,1]   */ 0x40023,
    /*20: [20,17]      */ 0x90000,
    /*21: [21,19]      */ 0x140000,
    /*22: [22,21]      */ 0x300000,
    /*23: [23,18]      */ 0x420000,
    /*24: [24,23,22,17]*/ 0xE10000,
    /*25: [25,22]      */ 0x1200000,
    /*26: [26,6,2,1]   */ 0x2000023,
    /*27: [27,5,2,1]   */ 0x4000013,
    /*28: [28,25]      */ 0x9000000,
    /*29: [29,27]      */ 0x14000000,
    /*30: [30,6,4,1]   */ 0x20000029,
    /*31: [31,28]      */ 0x48000000,
    /*32: [32,22,2,1]  */ 0x80200003,
};

}  // namespace

Lfsr::Lfsr(unsigned degree, std::uint64_t taps, std::uint64_t seed)
    : degree_(degree), taps_(taps) {
  if (degree < 2 || degree > 64)
    throw std::invalid_argument("Lfsr: degree must be in [2, 64]");
  mask_ = degree == 64 ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << degree) - 1);
  taps_ &= mask_;
  if (taps_ == 0) throw std::invalid_argument("Lfsr: empty tap set");
  if (!((taps_ >> (degree - 1)) & 1))
    throw std::invalid_argument("Lfsr: output stage (bit degree-1) must be tapped");
  state_ = seed & mask_;
  if (state_ == 0)
    throw std::invalid_argument("Lfsr: all-zero seed is a fixed point");
}

std::uint64_t Lfsr::primitive_taps(unsigned degree) {
  if (degree < 2 || degree > 32)
    throw std::invalid_argument("Lfsr::primitive_taps: degree must be in [2, 32]");
  return kPrimitiveTaps[degree];
}

Lfsr Lfsr::maximal(unsigned degree, std::uint64_t seed) {
  return Lfsr(degree, primitive_taps(degree), seed);
}

bool Lfsr::step() {
  const bool out = (state_ >> (degree_ - 1)) & 1;
  const std::uint64_t fb = std::popcount(state_ & taps_) & 1u;
  state_ = ((state_ << 1) | fb) & mask_;
  return out;
}

void Lfsr::fill(BitVec& bv) {
  for (std::size_t i = 0; i < bv.size(); ++i) bv.set(i, step());
}

BitVec Lfsr::next_pattern(std::size_t width) {
  BitVec bv(width);
  fill(bv);
  return bv;
}

PatternBlock Lfsr::next_block(std::size_t width, std::size_t count) {
  if (count > 64) throw std::invalid_argument("Lfsr::next_block: count > 64");
  PatternBlock b;
  b.width = width;
  b.count = count;
  b.input_words.assign(width, 0);
  for (std::size_t lane = 0; lane < count; ++lane)
    for (std::size_t i = 0; i < width; ++i)
      if (step()) b.input_words[i] |= std::uint64_t{1} << lane;
  return b;
}

std::vector<PatternBlock> Lfsr::blocks(std::size_t width, std::size_t total) {
  std::vector<PatternBlock> out;
  out.reserve((total + 63) / 64);
  for (std::size_t off = 0; off < total; off += 64)
    out.push_back(next_block(width, std::min<std::size_t>(64, total - off)));
  return out;
}

}  // namespace bist
