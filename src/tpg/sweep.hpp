#pragma once
// Incremental mixed-scheme sweep: evaluate the paper's central trade-off —
// LFSR test length vs. stored deterministic patterns (ROM bits) — at many
// candidate lengths for the cost of little more than one evaluation at the
// longest.  Three stacked optimizations over the naive per-point
// run_mixed_tpg loop:
//
//   one LFSR pass      the fault simulator runs once, at max(lengths); a
//                      fault is in the tail at length L iff its
//                      first_detected index is >= L or it was never
//                      detected, so every point's tail and coverage prefix
//                      is derived from that single pass
//                      (FaultSimResult::tail_at / prefix_result) — the
//                      pseudo-random phase is never re-simulated
//   parallel PODEM     tail faults are partitioned across a persistent
//                      PodemBatch (per-worker engines, dynamic grain-1
//                      chunking, fixed-fault-order reduction), so verdicts
//                      are bit-identical for every thread count
//   cube caching       lengths are swept descending, so the tail only grows
//                      from point to point; a cube, redundancy proof, or
//                      aborted verdict generated when a fault first enters
//                      the tail is reused at every shorter length (a PODEM
//                      cube is valid regardless of the LFSR phase — only
//                      tail membership changes), making total PODEM work
//                      equal to ONE run at min(lengths)
//
// Per-point X-fill, verification, compaction, and tail accounting still run
// on the reused cubes (the fill stream replays per point, so the emitted
// pattern sets match an independent run exactly).  Every per-point
// MixedSchemeResult is bit-identical to run_mixed_tpg at that length —
// tails, cube sets, verdicts, top-off patterns, and both coverage
// conventions — at every thread count; the differential guarantee is
// enforced by tests/test_mixed_sweep.cpp and the bench's naive-vs-sweep
// cross-check.

#include <cstdint>
#include <span>
#include <vector>

#include "tpg/mixed.hpp"

namespace bist {

/// Sweep-level counters and timings (per-point fields live in each
/// MixedSchemeResult).
struct MixedSweepStats {
  std::size_t podem_calls = 0;       ///< engine invocations (cache misses)
  std::size_t podem_cache_hits = 0;  ///< verdicts served by the cube cache
  unsigned podem_threads = 1;        ///< resolved PODEM worker count
  double lfsr_seconds = 0.0;     ///< the one shared max-length fault-sim pass
  double podem_seconds = 0.0;    ///< all points: generation + fill + verify
  double compact_seconds = 0.0;  ///< all points: compaction + accounting
  /// All points: GF(2) reseeding solves + golden-signature simulation (a
  /// sub-measure of the two above, not additional wall-clock).
  double solve_seconds = 0.0;
};

struct MixedSweepResult {
  std::vector<std::size_t> lengths;      ///< as given, order preserved
  std::vector<MixedSchemeResult> points; ///< parallel to `lengths`
  std::size_t width = 0;  ///< pattern width (= circuit PI count) of the run
  MixedSweepStats stats;
  /// Ok when every point ran to completion; otherwise the first stop reason
  /// (deadline/cancel) encountered.  Individual points carry their own
  /// state/status — a non-Ok sweep still holds every Complete point computed
  /// before the stop, bit-identical to an uninterrupted run.
  StageStatus status;
};

/// Evaluate the mixed scheme at every length in `lengths` (any order,
/// duplicates allowed; opt.lfsr_patterns is ignored — the lengths drive the
/// stream).  When `full` is non-null the caller vouches it is a run() result
/// of `fsim` over the LFSR stream `opt` describes covering at least
/// max(lengths) patterns, and the shared pass is skipped (stats.lfsr_seconds
/// stays 0).  Deterministic for a given kernel + options at every thread
/// count.
///
/// Anytime contract under opt.deadline: the deadline is polled per sweep
/// point and threaded into the shared LFSR pass and every PODEM batch.  When
/// it fires, points already finished stay Complete (bit-identical to an
/// uninterrupted sweep), the in-flight and remaining points degrade to
/// LfsrOnly where their exact LFSR prefix is available and Skipped where it
/// is not, and if NOTHING usable survived (deadline beat even the shared
/// pass) a bounded undeadlined fault-sim floor at min(lengths) produces one
/// exact LfsrOnly point — the sweep always returns at least one point a
/// scheduler can select and a wrapper can prove.
MixedSweepResult run_mixed_sweep(const SimKernel& k, FaultSimulator& fsim,
                                 std::span<const std::size_t> lengths,
                                 const MixedTpgOptions& opt = {},
                                 const FaultSimResult* full = nullptr);

/// Convenience overload owning its FaultSimulator.
MixedSweepResult run_mixed_sweep(const SimKernel& k,
                                 std::span<const std::size_t> lengths,
                                 const MixedTpgOptions& opt = {});

}  // namespace bist
