#pragma once
// External-XOR (Fibonacci) LFSR pseudo-random pattern source — the paper's
// pseudo-random phase generator.  Parameterized by its characteristic
// polynomial; with a primitive polynomial the state sequence is maximal
// length (period 2^degree - 1, the all-zero state excluded).
//
// Bit-stream convention: the register shifts left one position per step and
// emits its former MSB; a test pattern for a `width`-input circuit is
// `width` consecutive stream bits (test-per-clock, as in the BIST TPG).
// Patterns are packed straight into 64-lane PatternBlocks for the
// bit-parallel simulators.

#include <cstdint>

#include "sim/bitpar_sim.hpp"
#include "util/bitvec.hpp"

namespace bist {

class Lfsr {
 public:
  /// `degree` in [2, 64].  Bit i of `taps` set means state bit i feeds the
  /// XOR network; since stage i holds the feedback bit from i+1 steps ago,
  /// the output stream obeys f(t) = XOR(f(t-i-1) : bit i set), i.e. the
  /// characteristic polynomial is x^degree + sum(x^(degree-1-i)).  Bit
  /// degree-1 (the output stage) must be set or the recurrence degenerates.
  /// `seed` must be non-zero in its low `degree` bits (the all-zero state is
  /// a fixed point); high bits are masked off.  Throws std::invalid_argument
  /// on any violation.
  Lfsr(unsigned degree, std::uint64_t taps, std::uint64_t seed = 1);

  /// Known-primitive polynomial for this degree (maximal-length sequence).
  /// Supported for every degree in [2, 32]; throws outside that range.
  static std::uint64_t primitive_taps(unsigned degree);
  /// Convenience: maximal-length LFSR of the given degree.
  static Lfsr maximal(unsigned degree, std::uint64_t seed = 1);

  unsigned degree() const { return degree_; }
  std::uint64_t taps() const { return taps_; }
  std::uint64_t state() const { return state_; }

  /// Shift one position; returns the bit shifted out (former MSB).
  bool step();

  /// Next `bv.size()` stream bits into an existing BitVec (index 0 first).
  void fill(BitVec& bv);
  /// Next `width` stream bits as a fresh pattern.
  BitVec next_pattern(std::size_t width);

  /// Pack the next `count` (<= 64) patterns of `width` bits each directly
  /// into a PatternBlock (lane L = L-th pattern generated).
  PatternBlock next_block(std::size_t width, std::size_t count = 64);
  /// `total` patterns split into consecutive blocks.
  std::vector<PatternBlock> blocks(std::size_t width, std::size_t total);

 private:
  unsigned degree_;
  std::uint64_t taps_;
  std::uint64_t mask_;
  std::uint64_t state_;
};

}  // namespace bist
