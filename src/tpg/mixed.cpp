#include "tpg/mixed.hpp"

#include <algorithm>

#include "tpg/lfsr.hpp"
#include "tpg/mixed_phases.hpp"
#include "util/wallclock.hpp"

namespace bist {
namespace mixed_phase {

BitVec fill_cube(std::span<const Ternary> cube, FillBits& bits) {
  BitVec p(cube.size());
  for (std::size_t i = 0; i < cube.size(); ++i) {
    const bool bit =
        cube[i] == Ternary::VX ? bits.next() : cube[i] == Ternary::V1;
    p.set(i, bit);
  }
  return p;
}

bool verify_batched(const SimKernel& k, FaultSimulator& fsim,
                    std::span<const BitVec> patterns,
                    std::span<const std::uint32_t> target) {
  const std::size_t width = k.inputs().size();
  KernelSim sim(k);
  bool ok = true;
  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const std::size_t cnt = std::min<std::size_t>(64, patterns.size() - base);
    const PatternBlock blk = pack_patterns({patterns.data() + base, cnt}, width);
    sim.simulate(blk);
    for (std::size_t j = 0; j < cnt; ++j) {
      const Fault& f = fsim.faults()[target[base + j]];
      if (!(fsim.detect_lanes(f, sim.values(), blk.lane_mask()) >> j & 1))
        ok = false;
    }
  }
  return ok;
}

namespace {

// Reverse-order compaction: simulate the top-off set backwards; a pattern
// survives only if it detects a target fault not covered by a later
// (already kept) pattern.  Runs 64 patterns per pass through the PPSFP
// propagate.  Returns the survivors in application order.
std::vector<BitVec> compact_reverse(const SimKernel& k, FaultSimulator& fsim,
                                    std::vector<BitVec> topoff,
                                    std::span<const std::uint32_t> target) {
  const std::size_t width = k.inputs().size();
  std::vector<BitVec> rev(topoff.rbegin(), topoff.rend());
  std::vector<char> covered(target.size(), 0);
  std::vector<char> keep(rev.size(), 0);
  KernelSim good(k);
  std::size_t remaining = target.size();
  std::vector<std::uint64_t> det(target.size(), 0);
  for (std::size_t base = 0; base < rev.size() && remaining; base += 64) {
    const std::size_t cnt = std::min<std::size_t>(64, rev.size() - base);
    const PatternBlock blk = pack_patterns({rev.data() + base, cnt}, width);
    good.simulate(blk);
    for (std::size_t t = 0; t < target.size(); ++t)
      det[t] = covered[t] ? 0
                          : fsim.detect_lanes(fsim.faults()[target[t]],
                                              good.values(), blk.lane_mask());
    for (std::size_t lane = 0; lane < cnt; ++lane) {
      bool newly = false;
      for (std::size_t t = 0; t < target.size(); ++t)
        if (!covered[t] && ((det[t] >> lane) & 1)) {
          covered[t] = 1;
          --remaining;
          newly = true;
        }
      if (newly) keep[base + lane] = 1;
    }
  }
  std::vector<BitVec> kept;
  for (std::size_t i = rev.size(); i-- > 0;)  // back to application order
    if (keep[i]) kept.push_back(std::move(rev[i]));
  return kept;
}

}  // namespace

void topoff_phases(const SimKernel& k, FaultSimulator& fsim,
                   std::span<const std::uint32_t> tail,
                   std::span<const PodemResult* const> verdicts,
                   const MixedTpgOptions& opt, MixedSchemeResult& r) {
  const auto t0 = WallClock::now();
  r.tail_faults = tail.size();

  // X-fill the detected cubes in tail order from a fresh fill stream — the
  // stream position a cube sees depends only on the X counts of the detected
  // cubes before it in this point's tail, so a sweep replays it exactly.
  FillBits bits(opt.fill_seed);
  std::vector<std::uint32_t> target;  // per top-off pattern: its tail fault
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const PodemResult& pr = *verdicts[i];
    r.podem_backtracks += pr.backtracks;
    r.podem_decisions += pr.decisions;
    switch (pr.status) {
      case PodemStatus::Detected:
        r.topoff.push_back(fill_cube(pr.cube, bits));
        target.push_back(tail[i]);
        ++r.podem_detected;
        break;
      case PodemStatus::Redundant:
        ++r.redundant;
        r.redundant_faults.push_back(fsim.faults()[tail[i]]);
        break;
      case PodemStatus::Aborted:
        ++r.aborted;
        r.aborted_faults.push_back(fsim.faults()[tail[i]]);
        break;
    }
  }
  r.topoff_before_compaction = r.topoff.size();
  if (opt.verify_patterns && !r.topoff.empty())
    r.all_verified = verify_batched(k, fsim, r.topoff, target);
  r.podem_seconds += seconds_since(t0);

  const auto t1 = WallClock::now();
  if (opt.compact && !r.topoff.empty())
    r.topoff = compact_reverse(k, fsim, std::move(r.topoff), target);
  r.topoff_patterns = r.topoff.size();

  // Final accounting: fault-sim the emitted set against the whole tail, so
  // incidental detections (random fill catching aborted faults) count.
  std::size_t topoff_detected = 0;
  std::uint64_t topoff_detected_weight = 0;
  if (!r.topoff.empty()) {
    std::vector<Fault> tail_faults;
    std::vector<std::uint32_t> tail_w;
    for (const std::uint32_t idx : tail) {
      tail_faults.push_back(fsim.faults()[idx]);
      tail_w.push_back(fsim.weights()[idx]);
    }
    FaultSimulator tailsim(k, std::move(tail_faults),
                           r.lfsr_result.total_faults, std::move(tail_w));
    const FaultSimResult tr =
        tailsim.run(pack_all(r.topoff, k.inputs().size()), opt.fsim);
    topoff_detected = tr.detected;
    topoff_detected_weight = tr.detected_weight;
  }
  const FaultSimResult& lr = r.lfsr_result;
  r.final_coverage =
      lr.sim_faults
          ? double(lr.detected + topoff_detected) / double(lr.sim_faults)
          : 0.0;
  r.final_coverage_weighted =
      lr.total_weight
          ? double(lr.detected_weight + topoff_detected_weight) /
                double(lr.total_weight)
          : 0.0;
  r.compact_seconds += seconds_since(t1);
}

}  // namespace mixed_phase

MixedSchemeResult run_mixed_tpg(const SimKernel& k, const MixedTpgOptions& opt) {
  FaultSimulator fsim(k);
  return run_mixed_tpg(k, fsim, opt);
}

MixedSchemeResult run_mixed_tpg(const SimKernel& k, FaultSimulator& fsim,
                                const MixedTpgOptions& opt,
                                const FaultSimResult* lfsr_result) {
  MixedSchemeResult r;
  const std::size_t width = k.inputs().size();

  // --- Phase 1: pseudo-random LFSR patterns -------------------------------
  const auto t0 = WallClock::now();
  if (lfsr_result) {
    r.lfsr_result = *lfsr_result;
  } else {
    Lfsr lfsr = Lfsr::maximal(opt.lfsr_degree, opt.lfsr_seed);
    r.lfsr_result = fsim.run(lfsr.blocks(width, opt.lfsr_patterns), opt.fsim);
    r.lfsr_seconds = seconds_since(t0);
  }
  r.lfsr_patterns = r.lfsr_result.patterns;
  r.lfsr_coverage = r.lfsr_result.final_coverage();
  r.lfsr_coverage_weighted = r.lfsr_result.final_coverage_weighted();

  // LFSR-resistant faults, ascending sim-fault indices.
  const std::vector<std::uint32_t> tail =
      r.lfsr_result.tail_at(r.lfsr_result.patterns);

  // --- Phase 2: PODEM per tail fault --------------------------------------
  const auto t1 = WallClock::now();
  std::vector<Fault> tail_faults;
  tail_faults.reserve(tail.size());
  for (const std::uint32_t idx : tail) tail_faults.push_back(fsim.faults()[idx]);
  PodemBatch batch(k, opt.podem_threads);
  const std::vector<PodemResult> verdicts =
      batch.generate(tail_faults, opt.podem);
  r.podem_seconds = seconds_since(t1);

  // --- Phases 3+: fill, verify, compact, account --------------------------
  std::vector<const PodemResult*> vp(verdicts.size());
  for (std::size_t i = 0; i < verdicts.size(); ++i) vp[i] = &verdicts[i];
  mixed_phase::topoff_phases(k, fsim, tail, vp, opt, r);
  return r;
}

}  // namespace bist
