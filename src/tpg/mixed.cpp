#include "tpg/mixed.hpp"

#include <algorithm>
#include <stdexcept>

#include "tpg/lfsr.hpp"
#include "tpg/mixed_phases.hpp"
#include "util/wallclock.hpp"

namespace bist {

std::string_view point_state_name(PointState s) {
  switch (s) {
    case PointState::Complete: return "complete";
    case PointState::LfsrOnly: return "lfsr_only";
    case PointState::Skipped: return "skipped";
  }
  return "?";
}

namespace mixed_phase {

BitVec fill_cube(std::span<const Ternary> cube, FillBits& bits) {
  BitVec p(cube.size());
  for (std::size_t i = 0; i < cube.size(); ++i) {
    const bool bit =
        cube[i] == Ternary::VX ? bits.next() : cube[i] == Ternary::V1;
    p.set(i, bit);
  }
  return p;
}

bool verify_batched(const SimKernel& k, FaultSimulator& fsim,
                    std::span<const BitVec> patterns,
                    std::span<const std::uint32_t> target) {
  const std::size_t width = k.inputs().size();
  KernelSim sim(k);
  bool ok = true;
  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const std::size_t cnt = std::min<std::size_t>(64, patterns.size() - base);
    const PatternBlock blk = pack_patterns({patterns.data() + base, cnt}, width);
    sim.simulate(blk);
    for (std::size_t j = 0; j < cnt; ++j) {
      const Fault& f = fsim.faults()[target[base + j]];
      if (!(fsim.detect_lanes(f, sim.values(), blk.lane_mask()) >> j & 1))
        ok = false;
    }
  }
  return ok;
}

namespace {

// Reverse-order compaction: simulate the top-off set backwards; a pattern
// survives only if it detects a target fault not covered by a later
// (already kept) pattern.  Runs 64 patterns per pass through the PPSFP
// propagate.  Returns the surviving row indices in application order, so
// the caller can select any per-row payload (patterns, seed schedules)
// alongside the patterns themselves.
std::vector<std::uint32_t> compact_reverse(
    const SimKernel& k, FaultSimulator& fsim,
    std::span<const BitVec> topoff, std::span<const std::uint32_t> target) {
  const std::size_t width = k.inputs().size();
  std::vector<BitVec> rev(topoff.rbegin(), topoff.rend());
  std::vector<char> covered(target.size(), 0);
  std::vector<char> keep(rev.size(), 0);
  KernelSim good(k);
  std::size_t remaining = target.size();
  std::vector<std::uint64_t> det(target.size(), 0);
  for (std::size_t base = 0; base < rev.size() && remaining; base += 64) {
    const std::size_t cnt = std::min<std::size_t>(64, rev.size() - base);
    const PatternBlock blk = pack_patterns({rev.data() + base, cnt}, width);
    good.simulate(blk);
    for (std::size_t t = 0; t < target.size(); ++t)
      det[t] = covered[t] ? 0
                          : fsim.detect_lanes(fsim.faults()[target[t]],
                                              good.values(), blk.lane_mask());
    for (std::size_t lane = 0; lane < cnt; ++lane) {
      bool newly = false;
      for (std::size_t t = 0; t < target.size(); ++t)
        if (!covered[t] && ((det[t] >> lane) & 1)) {
          covered[t] = 1;
          --remaining;
          newly = true;
        }
      if (newly) keep[base + lane] = 1;
    }
  }
  std::vector<std::uint32_t> kept;
  for (std::size_t i = rev.size(); i-- > 0;)  // back to application order
    if (keep[i])
      kept.push_back(static_cast<std::uint32_t>(rev.size() - 1 - i));
  return kept;
}

/// Resolve the point's MISR configuration from the options.
MisrSpec misr_for(const SimKernel& k, const MixedTpgOptions& opt) {
  MisrSpec m = opt.misr_degree
                   ? MisrSpec{opt.misr_degree,
                              Lfsr::primitive_taps(opt.misr_degree),
                              {}}
                   : misr_spec_for(k.outputs().size());
  if (!opt.misr_fold.empty()) {
    if (opt.misr_fold.size() != k.outputs().size())
      throw std::invalid_argument(
          "mixed tpg: misr_fold size does not match the CUT output count");
    m.fold = opt.misr_fold;
  }
  return m;
}

}  // namespace

void topoff_phases(const SimKernel& k, FaultSimulator& fsim,
                   std::span<const std::uint32_t> tail,
                   std::span<const PodemResult* const> verdicts,
                   const MixedTpgOptions& opt, MixedSchemeResult& r) {
  const auto t0 = WallClock::now();
  r.tail_faults = tail.size();
  const std::size_t width = k.inputs().size();
  const std::uint64_t taps = Lfsr::primitive_taps(opt.lfsr_degree);

  // X-fill the detected cubes in tail order from a fresh fill stream — the
  // stream position a cube sees depends only on the X counts of the detected
  // cubes before it in this point's tail, so a sweep replays it exactly.
  // Under opt.compress the same stream instead feeds the free seed variables
  // of the GF(2) reseeding solve (and the raw X bits of fallback rows), so
  // the stored pattern IS the seed expansion by construction.
  FillBits bits(opt.fill_seed);
  std::vector<std::uint32_t> target;  // per top-off pattern: its tail fault
  std::vector<RowCompression> rows;   // aligned with r.topoff (compress mode)
  double solve = 0.0;
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const PodemResult& pr = *verdicts[i];
    r.podem_backtracks += pr.backtracks;
    r.podem_decisions += pr.decisions;
    switch (pr.status) {
      case PodemStatus::Detected:
        if (opt.compress) {
          const auto s0 = WallClock::now();
          RowCompression rc = compress_cube(pr.cube, opt.lfsr_degree, taps,
                                            [&bits] { return bits.next(); });
          solve += seconds_since(s0);
          r.topoff.push_back(std::move(rc.pattern));
          rc.pattern = BitVec();
          rows.push_back(std::move(rc));
        } else {
          r.topoff.push_back(fill_cube(pr.cube, bits));
        }
        target.push_back(tail[i]);
        ++r.podem_detected;
        break;
      case PodemStatus::Redundant:
        ++r.redundant;
        r.redundant_faults.push_back(fsim.faults()[tail[i]]);
        break;
      case PodemStatus::Aborted:
        ++r.aborted;
        r.aborted_faults.push_back(fsim.faults()[tail[i]]);
        break;
      case PodemStatus::Cancelled:
        // Callers must downgrade the point (LfsrOnly) instead of handing a
        // cut-off search to the back end — a Cancelled slot carries no
        // verdict and must not be counted under any bucket.
        throw std::logic_error(
            "topoff_phases: cancelled PODEM verdict reached the back end");
    }
  }
  r.topoff_before_compaction = r.topoff.size();
  if (opt.verify_patterns && !r.topoff.empty())
    r.all_verified = verify_batched(k, fsim, r.topoff, target);
  r.podem_seconds += seconds_since(t0);

  const auto t1 = WallClock::now();
  if (opt.compact && !r.topoff.empty()) {
    const std::vector<std::uint32_t> kept =
        compact_reverse(k, fsim, r.topoff, target);
    std::vector<BitVec> sel;
    sel.reserve(kept.size());
    std::vector<RowCompression> sel_rows;
    sel_rows.reserve(opt.compress ? kept.size() : 0);
    for (const std::uint32_t i : kept) {
      sel.push_back(std::move(r.topoff[i]));
      if (opt.compress) sel_rows.push_back(std::move(rows[i]));
    }
    r.topoff = std::move(sel);
    rows = std::move(sel_rows);
  }
  r.topoff_patterns = r.topoff.size();

  // Final accounting: fault-sim the emitted set against the whole tail, so
  // incidental detections (random fill catching aborted faults) count.
  std::size_t topoff_detected = 0;
  std::uint64_t topoff_detected_weight = 0;
  std::vector<std::int64_t> topoff_fd;  // per tail fault, over r.topoff
  if (!r.topoff.empty()) {
    std::vector<Fault> tail_faults;
    std::vector<std::uint32_t> tail_w;
    for (const std::uint32_t idx : tail) {
      tail_faults.push_back(fsim.faults()[idx]);
      tail_w.push_back(fsim.weights()[idx]);
    }
    FaultSimulator tailsim(k, std::move(tail_faults),
                           r.lfsr_result.total_faults, std::move(tail_w));
    // The back end always runs to completion (its work is bounded by the
    // top-off set): a deadline on opt.fsim must not silently truncate the
    // accounting pass, or the point would claim a coverage it cannot prove.
    FaultSimOptions acct = opt.fsim;
    acct.deadline = nullptr;
    FaultSimResult tr =
        tailsim.run(pack_all(r.topoff, k.inputs().size()), acct);
    topoff_detected = tr.detected;
    topoff_detected_weight = tr.detected_weight;
    topoff_fd = std::move(tr.first_detected);
  }
  const FaultSimResult& lr = r.lfsr_result;
  r.final_coverage =
      lr.sim_faults
          ? double(lr.detected + topoff_detected) / double(lr.sim_faults)
          : 0.0;
  r.final_coverage_weighted =
      lr.total_weight
          ? double(lr.detected_weight + topoff_detected_weight) /
                double(lr.total_weight)
          : 0.0;

  // Compression artifacts: seed schedules renumbered to the kept rows, MISR
  // spec, and the golden signature over the exact applied stream (the LFSR
  // phase the point claims, then the kept top-off set in application order).
  if (opt.compress) {
    const auto s1 = WallClock::now();
    CompressedTopoff& c = r.comp;
    c.enabled = true;
    c.degree = opt.lfsr_degree;
    c.fallback.assign(r.topoff.size(), 0);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      c.fallback[i] = rows[i].fallback;
      for (SeedEvent e : rows[i].seeds) {
        e.row = static_cast<std::uint32_t>(i);
        c.seeds.push_back(e);
      }
    }
    c.misr = misr_for(k, opt);
    c.cut_outputs = k.outputs().size();

    // The point's exact applied stream, as one packed block sequence: the
    // fold audit and the golden signature both walk it.
    std::vector<BitVec> applied;
    applied.reserve(r.lfsr_patterns + r.topoff.size());
    Lfsr lfsr = Lfsr::maximal(opt.lfsr_degree, opt.lfsr_seed);
    for (std::size_t t = 0; t < r.lfsr_patterns; ++t)
      applied.push_back(lfsr.next_pattern(width));
    applied.insert(applied.end(), r.topoff.begin(), r.topoff.end());
    const std::vector<PatternBlock> blocks = pack_all(applied, width);

    // Audited fold selection, per point, over everything this point's
    // stream detects — the LFSR phase's faults plus the top-off accounting
    // pass's (which alone sees the random-pattern-resistant faults whose
    // bus-aligned output cones defeat the natural fold).
    if (c.misr.enabled() && opt.misr_fold.empty() && !applied.empty()) {
      std::vector<std::int64_t> fd(fsim.faults().size(), -1);
      const std::vector<std::int64_t>& lfd = r.lfsr_result.first_detected;
      for (std::size_t f = 0; f < fd.size(); ++f)
        if (lfd[f] >= 0 && lfd[f] < std::int64_t(r.lfsr_patterns))
          fd[f] = lfd[f];
      for (std::size_t j = 0; j < topoff_fd.size(); ++j)
        if (fd[tail[j]] < 0 && topoff_fd[j] >= 0)
          fd[tail[j]] = std::int64_t(r.lfsr_patterns) + topoff_fd[j];
      c.misr = choose_misr_fold(fsim, k, blocks, applied.size(), fd, c.misr);
    }
    c.golden = misr_signature(k, blocks, c.misr, 0);
    solve += seconds_since(s1);
    c.solve_seconds = solve;
    r.solve_seconds = solve;
  }
  r.compact_seconds += seconds_since(t1);
}

void finish_lfsr_only(const SimKernel& k, FaultSimulator& fsim,
                      const MixedTpgOptions& opt, MixedSchemeResult& r,
                      StageStatus why) {
  const FaultSimResult& lr = r.lfsr_result;
  r.tail_faults = lr.sim_faults - lr.detected;
  r.final_coverage = r.lfsr_coverage;
  r.final_coverage_weighted = r.lfsr_coverage_weighted;
  if (opt.compress) {
    // The degraded point still signs off: MISR over the exact prefix that
    // ran, no seeds (there is no top-off to compress).
    const auto s0 = WallClock::now();
    CompressedTopoff& c = r.comp;
    c.enabled = true;
    c.degree = opt.lfsr_degree;
    c.misr = misr_for(k, opt);
    c.cut_outputs = k.outputs().size();
    Lfsr lfsr = Lfsr::maximal(opt.lfsr_degree, opt.lfsr_seed);
    const std::vector<PatternBlock> blocks =
        lfsr.blocks(k.inputs().size(), lr.patterns);
    // Fold audit over the prefix's detected faults (the audit core skips
    // first_detected entries at or beyond lr.patterns, so the prefix
    // result's kept-later detections are excluded automatically).
    if (c.misr.enabled() && opt.misr_fold.empty() && lr.patterns > 0)
      c.misr = choose_misr_fold(fsim, k, blocks, lr.patterns,
                                lr.first_detected, c.misr);
    c.golden = misr_signature(k, blocks, c.misr, 0);
    c.solve_seconds = seconds_since(s0);
    r.solve_seconds = c.solve_seconds;
  }
  r.state = PointState::LfsrOnly;
  r.status = std::move(why);
}

}  // namespace mixed_phase

MixedSchemeResult run_mixed_tpg(const SimKernel& k, const MixedTpgOptions& opt) {
  FaultSimulator fsim(k);
  return run_mixed_tpg(k, fsim, opt);
}

MixedSchemeResult run_mixed_tpg(const SimKernel& k, FaultSimulator& fsim,
                                const MixedTpgOptions& opt,
                                const FaultSimResult* lfsr_result) {
  MixedSchemeResult r;
  const std::size_t width = k.inputs().size();
  const Deadline* dl = opt.deadline;

  // --- Phase 1: pseudo-random LFSR patterns -------------------------------
  const auto t0 = WallClock::now();
  if (lfsr_result) {
    r.lfsr_result = *lfsr_result;
  } else {
    FaultSimOptions fo = opt.fsim;
    if (dl) fo.deadline = dl;  // scheme-level deadline reaches the hot loop
    Lfsr lfsr = Lfsr::maximal(opt.lfsr_degree, opt.lfsr_seed);
    r.lfsr_result = fsim.run(lfsr.blocks(width, opt.lfsr_patterns), fo);
    r.lfsr_seconds = seconds_since(t0);
  }
  r.lfsr_patterns = r.lfsr_result.patterns;
  r.lfsr_coverage = r.lfsr_result.final_coverage();
  r.lfsr_coverage_weighted = r.lfsr_result.final_coverage_weighted();
  if (!r.lfsr_result.status.ok()) {
    // Truncated pseudo-random phase: everything computed so far is the
    // exact prefix run; stop here as a degraded LFSR-only point at the
    // length that actually ran.
    mixed_phase::finish_lfsr_only(k, fsim, opt, r, r.lfsr_result.status);
    return r;
  }

  // LFSR-resistant faults, ascending sim-fault indices.
  const std::vector<std::uint32_t> tail =
      r.lfsr_result.tail_at(r.lfsr_result.patterns);

  // --- Phase 2: PODEM per tail fault --------------------------------------
  const auto t1 = WallClock::now();
  std::vector<Fault> tail_faults;
  tail_faults.reserve(tail.size());
  for (const std::uint32_t idx : tail) tail_faults.push_back(fsim.faults()[idx]);
  PodemBatch batch(k, opt.podem_threads);
  PodemOptions po = opt.podem;
  if (dl) po.deadline = dl;
  const std::vector<PodemResult> verdicts = batch.generate(tail_faults, po);
  r.podem_seconds = seconds_since(t1);
  const bool podem_cut =
      std::any_of(verdicts.begin(), verdicts.end(), [](const PodemResult& v) {
        return v.status == PodemStatus::Cancelled;
      });
  if (podem_cut) {
    // Some searches were cut off mid-flight: their slots carry no verdict,
    // so the whole top-off phase is withdrawn rather than emitted partially
    // (a partial top-off could not reproduce an independent run anyway).
    mixed_phase::finish_lfsr_only(
        k, fsim, opt, r,
        dl ? dl->stop_status("podem")
           : StageStatus::cancelled("podem: verdicts cancelled"));
    return r;
  }

  // --- Phases 3+: fill, verify, compact, account --------------------------
  // Once every verdict is in, the back end runs to completion: its work is
  // bounded by the top-off set and the emitted point must be able to prove
  // the coverage it claims.
  std::vector<const PodemResult*> vp(verdicts.size());
  for (std::size_t i = 0; i < verdicts.size(); ++i) vp[i] = &verdicts[i];
  mixed_phase::topoff_phases(k, fsim, tail, vp, opt, r);
  return r;
}

}  // namespace bist
