#include "tpg/mixed.hpp"

#include <algorithm>

#include "tpg/lfsr.hpp"
#include "util/rng.hpp"

namespace bist {
namespace {

// A PODEM cube guarantees detection for every completion of its X bits, so
// the fill is free to chase incidental detections; random fill is the
// standard choice.
BitVec fill_cube(const std::vector<Ternary>& cube, Rng& rng) {
  BitVec p(cube.size());
  for (std::size_t i = 0; i < cube.size(); ++i) {
    const bool bit = cube[i] == Ternary::VX ? rng.next_bool()
                                            : cube[i] == Ternary::V1;
    p.set(i, bit);
  }
  return p;
}

}  // namespace

MixedSchemeResult run_mixed_tpg(const SimKernel& k, const MixedTpgOptions& opt) {
  FaultSimulator fsim(k);
  return run_mixed_tpg(k, fsim, opt);
}

MixedSchemeResult run_mixed_tpg(const SimKernel& k, FaultSimulator& fsim,
                                const MixedTpgOptions& opt,
                                const FaultSimResult* lfsr_result) {
  MixedSchemeResult r;
  const std::size_t width = k.inputs().size();

  // --- Phase 1: pseudo-random LFSR patterns -------------------------------
  if (lfsr_result) {
    r.lfsr_result = *lfsr_result;
  } else {
    Lfsr lfsr = Lfsr::maximal(opt.lfsr_degree, opt.lfsr_seed);
    r.lfsr_result = fsim.run(lfsr.blocks(width, opt.lfsr_patterns), opt.fsim);
  }
  r.lfsr_patterns = r.lfsr_result.patterns;
  r.lfsr_coverage = r.lfsr_result.final_coverage();
  r.lfsr_coverage_weighted = r.lfsr_result.final_coverage_weighted();

  std::vector<std::uint32_t> tail;  // LFSR-resistant faults, sim-fault indices
  for (std::size_t i = 0; i < r.lfsr_result.first_detected.size(); ++i)
    if (r.lfsr_result.first_detected[i] < 0)
      tail.push_back(static_cast<std::uint32_t>(i));
  r.tail_faults = tail.size();

  // --- Phase 2: PODEM per tail fault --------------------------------------
  Podem podem(k);
  Rng fill_rng(opt.fill_seed);
  KernelSim verify_sim(k);
  std::vector<std::uint32_t> target;  // per top-off pattern: its tail fault
  for (const std::uint32_t idx : tail) {
    const Fault& f = fsim.faults()[idx];
    const PodemResult pr = podem.generate(f, opt.podem);
    r.podem_backtracks += pr.backtracks;
    r.podem_decisions += pr.decisions;
    switch (pr.status) {
      case PodemStatus::Detected: {
        BitVec p = fill_cube(pr.cube, fill_rng);
        if (opt.verify_patterns) {
          const PatternBlock blk = pack_patterns({&p, 1}, width);
          verify_sim.simulate(blk);
          if (!(fsim.detect_lanes(f, verify_sim.values(), blk.lane_mask()) & 1))
            r.all_verified = false;
        }
        r.topoff.push_back(std::move(p));
        target.push_back(idx);
        ++r.podem_detected;
        break;
      }
      case PodemStatus::Redundant:
        ++r.redundant;
        r.redundant_faults.push_back(f);
        break;
      case PodemStatus::Aborted:
        ++r.aborted;
        r.aborted_faults.push_back(f);
        break;
    }
  }
  r.topoff_before_compaction = r.topoff.size();

  // --- Phase 3: reverse-order compaction -----------------------------------
  // Simulate the top-off set backwards; a pattern survives only if it
  // detects a target fault not covered by a later (already kept) pattern.
  // Runs 64 patterns per pass through the PPSFP propagate.
  if (opt.compact && !r.topoff.empty()) {
    std::vector<BitVec> rev(r.topoff.rbegin(), r.topoff.rend());
    std::vector<char> covered(target.size(), 0);
    std::vector<char> keep(rev.size(), 0);
    KernelSim good(k);
    std::size_t remaining = target.size();
    std::vector<std::uint64_t> det(target.size(), 0);
    for (std::size_t base = 0; base < rev.size() && remaining; base += 64) {
      const std::size_t cnt = std::min<std::size_t>(64, rev.size() - base);
      const PatternBlock blk =
          pack_patterns({rev.data() + base, cnt}, width);
      good.simulate(blk);
      for (std::size_t t = 0; t < target.size(); ++t)
        det[t] = covered[t] ? 0
                            : fsim.detect_lanes(fsim.faults()[target[t]],
                                                good.values(), blk.lane_mask());
      for (std::size_t lane = 0; lane < cnt; ++lane) {
        bool newly = false;
        for (std::size_t t = 0; t < target.size(); ++t)
          if (!covered[t] && ((det[t] >> lane) & 1)) {
            covered[t] = 1;
            --remaining;
            newly = true;
          }
        if (newly) keep[base + lane] = 1;
      }
    }
    std::vector<BitVec> kept;
    for (std::size_t i = rev.size(); i-- > 0;)  // back to application order
      if (keep[i]) kept.push_back(std::move(rev[i]));
    r.topoff = std::move(kept);
  }
  r.topoff_patterns = r.topoff.size();

  // --- Final accounting: fault-sim the emitted set against the whole tail,
  // so incidental detections (random fill catching aborted faults) count.
  std::size_t topoff_detected = 0;
  std::uint64_t topoff_detected_weight = 0;
  if (!r.topoff.empty()) {
    std::vector<Fault> tail_faults;
    std::vector<std::uint32_t> tail_w;
    for (const std::uint32_t idx : tail) {
      tail_faults.push_back(fsim.faults()[idx]);
      tail_w.push_back(fsim.weights()[idx]);
    }
    FaultSimulator tailsim(k, std::move(tail_faults),
                           r.lfsr_result.total_faults, std::move(tail_w));
    const FaultSimResult tr = tailsim.run(pack_all(r.topoff, width), opt.fsim);
    topoff_detected = tr.detected;
    topoff_detected_weight = tr.detected_weight;
  }
  const FaultSimResult& lr = r.lfsr_result;
  r.final_coverage =
      lr.sim_faults
          ? double(lr.detected + topoff_detected) / double(lr.sim_faults)
          : 0.0;
  r.final_coverage_weighted =
      lr.total_weight
          ? double(lr.detected_weight + topoff_detected_weight) /
                double(lr.total_weight)
          : 0.0;
  return r;
}

}  // namespace bist
