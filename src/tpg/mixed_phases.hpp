#pragma once
// Internal building blocks of the mixed scheme's deterministic back end,
// shared between run_mixed_tpg (one LFSR length) and run_mixed_sweep (many
// candidate lengths over one LFSR pass).  Everything here is a pure function
// of its inputs, which is what makes the sweep's reuse of cached PODEM
// verdicts bit-identical to an independent per-length run: only the tail
// membership and the fill-stream replay depend on the LFSR length.
//
// Not part of the public surface; subject to change with the sweep engine.

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault_sim.hpp"
#include "fault/podem.hpp"
#include "sim/kernel.hpp"
#include "tpg/mixed.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace bist::mixed_phase {

/// Deterministic X-fill bit source: 64-bit PCG words sliced LSB-first, one
/// bit consumed per X.  Word-granular draws cost 1/64th the RNG work of the
/// former one-draw-per-bit scheme; the emitted stream is a fixed function of
/// the seed alone, so replaying a point's fill is just re-walking its tail.
class FillBits {
 public:
  explicit FillBits(std::uint64_t seed) : rng_(seed) {}

  bool next() {
    if (left_ == 0) {
      word_ = rng_.next_u64();
      left_ = 64;
    }
    const bool b = word_ & 1;
    word_ >>= 1;
    --left_;
    return b;
  }

 private:
  Rng rng_;
  std::uint64_t word_ = 0;
  unsigned left_ = 0;
};

/// Complete a PODEM cube into a fully-specified pattern: specified bits are
/// copied, X bits drawn from `bits` in cube order.  A PODEM cube guarantees
/// detection for every completion of its X bits, so the fill is free to
/// chase incidental detections; random fill is the standard choice.
BitVec fill_cube(std::span<const Ternary> cube, FillBits& bits);

/// Fault-sim check of every pattern against its target fault
/// (`fsim.faults()[target[i]]` for patterns[i]), batched 64 patterns per
/// KernelSim pass instead of one pass per pattern.  Returns true iff every
/// pattern detects its target.
bool verify_batched(const SimKernel& k, FaultSimulator& fsim,
                    std::span<const BitVec> patterns,
                    std::span<const std::uint32_t> target);

/// Everything after the PODEM verdicts for one LFSR length: X-fill the
/// detected cubes (fresh fill stream from opt.fill_seed, tail order),
/// verification, reverse-order compaction, and the final tail accounting.
/// `tail` holds the point's sim-fault indices ascending and `verdicts[i]`
/// the PODEM outcome for tail[i].  Requires r.lfsr_result (plus the
/// lfsr_patterns/lfsr_coverage fields) to be filled in already; completes
/// every remaining field of r and adds the fill+verify wall-clock to
/// r.podem_seconds and the compaction+accounting wall-clock to
/// r.compact_seconds.
void topoff_phases(const SimKernel& k, FaultSimulator& fsim,
                   std::span<const std::uint32_t> tail,
                   std::span<const PodemResult* const> verdicts,
                   const MixedTpgOptions& opt, MixedSchemeResult& r);

/// Downgrade a result whose pseudo-random phase ran (possibly truncated) but
/// whose top-off did not: requires the lfsr_* fields to be filled in; sets
/// tail_faults, copies the LFSR coverage into the final coverage (an empty
/// top-off adds nothing), and marks the point LfsrOnly with `why` as the
/// reason.  The result is a valid degraded hardware point — the coverage it
/// claims is exactly what the pseudo-random phase proved.  Under
/// opt.compress the point still gets its MISR spec (fold audited against the
/// prefix's detected faults, like a complete point) and the golden signature
/// of the prefix stream that ran (no seeds — there is no top-off), so a
/// degraded wrapper signs off exactly like a complete one.
void finish_lfsr_only(const SimKernel& k, FaultSimulator& fsim,
                      const MixedTpgOptions& opt, MixedSchemeResult& r,
                      StageStatus why);

}  // namespace bist::mixed_phase
