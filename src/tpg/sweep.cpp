#include "tpg/sweep.hpp"

#include <algorithm>
#include <stdexcept>

#include "tpg/lfsr.hpp"
#include "tpg/mixed_phases.hpp"
#include "util/wallclock.hpp"

namespace bist {

MixedSweepResult run_mixed_sweep(const SimKernel& k,
                                 std::span<const std::size_t> lengths,
                                 const MixedTpgOptions& opt) {
  FaultSimulator fsim(k);
  return run_mixed_sweep(k, fsim, lengths, opt);
}

MixedSweepResult run_mixed_sweep(const SimKernel& k, FaultSimulator& fsim,
                                 std::span<const std::size_t> lengths,
                                 const MixedTpgOptions& opt,
                                 const FaultSimResult* full) {
  MixedSweepResult sr;
  sr.lengths.assign(lengths.begin(), lengths.end());
  sr.width = k.inputs().size();
  if (lengths.empty()) return sr;
  const std::size_t width = sr.width;
  const std::size_t lmax = *std::max_element(lengths.begin(), lengths.end());

  // --- One LFSR fault-sim pass amortized over every candidate length ------
  const Deadline* dl = opt.deadline;
  FaultSimResult own_full;
  if (full) {
    if (full->patterns < lmax || full->first_detected.size() != fsim.faults().size())
      throw std::invalid_argument(
          "run_mixed_sweep: supplied LFSR result does not cover the sweep");
  } else {
    const auto t0 = WallClock::now();
    FaultSimOptions fo = opt.fsim;
    if (dl) fo.deadline = dl;
    Lfsr lfsr = Lfsr::maximal(opt.lfsr_degree, opt.lfsr_seed);
    own_full = fsim.run(lfsr.blocks(width, lmax), fo);
    sr.stats.lfsr_seconds = seconds_since(t0);
    full = &own_full;
  }

  // Distinct lengths descending: the tail only grows from point to point, so
  // a verdict cached when a fault first enters the tail serves every
  // subsequent (shorter) length.
  std::vector<std::size_t> order(sr.lengths);
  std::sort(order.begin(), order.end(), std::greater<>());
  order.erase(std::unique(order.begin(), order.end()), order.end());

  // Cross-point verdict cache, one slot per sim fault.
  std::vector<char> cached(fsim.faults().size(), 0);
  std::vector<PodemResult> cache(fsim.faults().size());
  PodemBatch batch(k, opt.podem_threads);
  sr.stats.podem_threads = batch.workers();

  std::vector<MixedSchemeResult> by_order;
  by_order.reserve(order.size());
  for (const std::size_t len : order) {
    MixedSchemeResult r;
    r.lfsr_patterns = len;

    // Anytime check, once per sweep point.  A point whose exact LFSR prefix
    // exists (len within the patterns the shared pass actually simulated)
    // degrades to LfsrOnly — its pseudo-random data is bit-identical to an
    // uninterrupted run; a point beyond the truncated pass has no valid data
    // at all and is Skipped.
    if ((dl && dl->should_stop()) || !full->status.ok()) {
      const StageStatus why =
          dl ? dl->stop_status("mixed_sweep") : full->status;
      if (len <= full->patterns) {
        r.lfsr_result = fsim.prefix_result(*full, len);
        r.lfsr_result.status = StageStatus{};  // the prefix itself is exact
        r.lfsr_coverage = r.lfsr_result.final_coverage();
        r.lfsr_coverage_weighted = r.lfsr_result.final_coverage_weighted();
        mixed_phase::finish_lfsr_only(k, fsim, opt, r, why);
      } else {
        r.state = PointState::Skipped;
        r.status = why;
      }
      by_order.push_back(std::move(r));
      continue;
    }

    r.lfsr_result = fsim.prefix_result(*full, len);
    r.lfsr_coverage = r.lfsr_result.final_coverage();
    r.lfsr_coverage_weighted = r.lfsr_result.final_coverage_weighted();
    const std::vector<std::uint32_t> tail = full->tail_at(len);

    // PODEM only the faults that just entered the tail; everything else is
    // a cache hit.
    const auto t1 = WallClock::now();
    std::vector<std::uint32_t> miss;
    std::vector<Fault> miss_faults;
    for (const std::uint32_t idx : tail)
      if (!cached[idx]) {
        miss.push_back(idx);
        miss_faults.push_back(fsim.faults()[idx]);
      }
    PodemOptions po = opt.podem;
    if (dl) po.deadline = dl;
    std::vector<PodemResult> fresh = batch.generate(miss_faults, po);
    bool cut = false;
    for (std::size_t j = 0; j < miss.size(); ++j) {
      // A Cancelled slot carries no verdict: never cache it — a later
      // (shorter) point must not inherit a hole where a real verdict
      // belongs.
      if (fresh[j].status == PodemStatus::Cancelled) {
        cut = true;
        continue;
      }
      cache[miss[j]] = std::move(fresh[j]);
      cached[miss[j]] = 1;
    }
    sr.stats.podem_calls += miss.size();
    sr.stats.podem_cache_hits += tail.size() - miss.size();
    r.podem_seconds = seconds_since(t1);
    if (cut) {
      mixed_phase::finish_lfsr_only(
          k, fsim, opt, r,
          dl ? dl->stop_status("mixed_sweep")
             : StageStatus::cancelled("mixed_sweep: podem cancelled"));
      by_order.push_back(std::move(r));
      continue;
    }

    std::vector<const PodemResult*> vp(tail.size());
    for (std::size_t i = 0; i < tail.size(); ++i) vp[i] = &cache[tail[i]];
    mixed_phase::topoff_phases(k, fsim, tail, vp, opt, r);
    sr.stats.podem_seconds += r.podem_seconds;
    sr.stats.compact_seconds += r.compact_seconds;
    sr.stats.solve_seconds += r.solve_seconds;
    by_order.push_back(std::move(r));
  }

  // --- Anytime floor -------------------------------------------------------
  // If the deadline beat even the shared pass (every point Skipped), run a
  // bounded undeadlined fault-sim at the SMALLEST candidate length so the
  // sweep still returns one exact LfsrOnly point — a scheduler can select it
  // and a wrapper built from it passes verification.  This floor costs one
  // fault-sim pass of min(lengths) patterns, the cheapest point requested.
  const bool any_usable =
      std::any_of(by_order.begin(), by_order.end(),
                  [](const MixedSchemeResult& p) {
                    return p.state != PointState::Skipped;
                  });
  if (!any_usable) {
    const std::size_t lmin = order.back();  // descending order -> min length
    MixedSchemeResult& r = by_order.back();
    const StageStatus why = r.status;
    r = MixedSchemeResult{};
    r.lfsr_patterns = lmin;
    FaultSimOptions fo = opt.fsim;
    fo.deadline = nullptr;
    Lfsr lfsr = Lfsr::maximal(opt.lfsr_degree, opt.lfsr_seed);
    const auto t0 = WallClock::now();
    r.lfsr_result = fsim.run(lfsr.blocks(width, lmin), fo);
    r.lfsr_seconds = seconds_since(t0);
    r.lfsr_coverage = r.lfsr_result.final_coverage();
    r.lfsr_coverage_weighted = r.lfsr_result.final_coverage_weighted();
    mixed_phase::finish_lfsr_only(k, fsim, opt, r, why);
  }

  // Sweep-level verdict: the first non-Complete point's reason (points
  // before it are bit-identical to an uninterrupted sweep).
  for (const MixedSchemeResult& p : by_order)
    if (p.state != PointState::Complete) {
      sr.status = p.status;
      break;
    }

  // Hand results back in the caller's length order (duplicates share a copy).
  sr.points.reserve(sr.lengths.size());
  for (const std::size_t len : sr.lengths) {
    const std::size_t pos =
        std::lower_bound(order.begin(), order.end(), len, std::greater<>()) -
        order.begin();
    sr.points.push_back(by_order[pos]);
  }
  return sr;
}

}  // namespace bist
