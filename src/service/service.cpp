#include "service/service.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

#include "store/manifest.hpp"

namespace bist {

namespace {

using dsec = std::chrono::duration<double>;

double seconds_between(WallClock::time_point a, WallClock::time_point b) {
  return std::chrono::duration_cast<dsec>(b - a).count();
}

}  // namespace

// ---------------------------------------------------------------------------
// FairQueue

void FairQueue::push(QueuedJob j) {
  auto& ring = tiers_[j.priority];
  for (auto& cq : ring) {
    if (cq.client == j.client) {
      cq.jobs.push_back(std::move(j));
      ++size_;
      return;
    }
  }
  ring.push_back(ClientQ{j.client, {}});
  ring.back().jobs.push_back(std::move(j));
  ++size_;
}

bool FairQueue::pop(QueuedJob& out) {
  if (tiers_.empty()) return false;
  const auto tier = tiers_.begin();  // highest priority (std::greater order)
  auto& ring = tier->second;
  ClientQ& cq = ring.front();
  out = std::move(cq.jobs.front());
  cq.jobs.pop_front();
  --size_;
  if (cq.jobs.empty()) {
    ring.pop_front();
  } else {
    // Round-robin: the served client yields the front of its tier.
    ring.splice(ring.end(), ring, ring.begin());
  }
  if (ring.empty()) tiers_.erase(tier);
  return true;
}

std::vector<QueuedJob> FairQueue::drain_all() {
  std::vector<QueuedJob> out;
  out.reserve(size_);
  QueuedJob j;
  while (pop(j)) out.push_back(std::move(j));
  return out;
}

// ---------------------------------------------------------------------------
// Health rendering

std::string_view submit_code_name(SubmitCode c) {
  switch (c) {
    case SubmitCode::Accepted: return "accepted";
    case SubmitCode::Replayed: return "replayed";
    case SubmitCode::Overloaded: return "overloaded";
    case SubmitCode::Quarantined: return "quarantined";
    case SubmitCode::NotAccepting: return "not_accepting";
  }
  return "?";
}

namespace {

void json_kv(std::string& out, const char* key, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += '"';
  out += key;
  out += "\":";
  out += buf;
  out += ',';
}

void json_kv(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += '"';
  out += key;
  out += "\":";
  out += buf;
  out += ',';
}

}  // namespace

std::string health_json(const ServiceHealth& h) {
  std::string s = "{\"state\":\"";
  s += h.state;  // fixed token set, never needs escaping
  s += "\",";
  json_kv(s, "uptime_s", h.uptime_s);
  json_kv(s, "queue_depth", static_cast<std::uint64_t>(h.queue_depth));
  json_kv(s, "in_flight", static_cast<std::uint64_t>(h.in_flight));
  json_kv(s, "submitted", h.submitted);
  json_kv(s, "accepted", h.accepted);
  json_kv(s, "replayed", h.replayed);
  json_kv(s, "completed_ok", h.completed_ok);
  json_kv(s, "completed_error", h.completed_error);
  json_kv(s, "completed_stopped", h.completed_stopped);
  json_kv(s, "drain_dropped", h.drain_dropped);
  json_kv(s, "rejected_overload", h.rejected_overload);
  json_kv(s, "rejected_quarantine", h.rejected_quarantine);
  json_kv(s, "rejected_stopping", h.rejected_stopping);
  json_kv(s, "retried_jobs", h.retried_jobs);
  json_kv(s, "watchdog_kills", h.watchdog_kills);
  json_kv(s, "quarantined_names", h.quarantined_names);
  if (h.has_store) {
    s += "\"store\":{";
    json_kv(s, "hits", h.store.hits);
    json_kv(s, "misses", h.store.misses);
    json_kv(s, "stores", h.store.stores);
    json_kv(s, "store_failures", h.store.store_failures);
    json_kv(s, "quarantined", h.store.quarantined);
    const std::uint64_t looked = h.store.hits + h.store.misses;
    json_kv(s, "hit_rate",
            looked ? static_cast<double>(h.store.hits) / looked : 0.0);
    s.pop_back();  // trailing comma
    s += "},";
  }
  s.pop_back();  // trailing comma
  s += "}\n";
  return s;
}

// ---------------------------------------------------------------------------
// JobService

JobService::JobService(ServiceOptions opt, Sink sink)
    : opt_(std::move(opt)),
      sink_(std::move(sink)),
      ops_(opt_.ops ? opt_.ops : &FileOps::real()),
      start_(WallClock::now()),
      pool_(resolve_threads(opt_.threads)) {
  if (!opt_.manifest_path.empty()) {
    manifest_ = std::make_unique<BatchManifest>(opt_.manifest_path, ops_);
    if (opt_.resume) {
      manifest_->load();
    } else if (ops_->exists(opt_.manifest_path)) {
      // Fresh run: a stale journal would replay another corpus's results.
      ops_->remove_file(opt_.manifest_path);
    }
  }
  runner_ = std::thread([this] {
    pool_.run([this](unsigned) { worker_loop(); });
  });
  monitor_ = std::thread([this] { monitor_loop(); });
}

JobService::~JobService() { drain(0); }

JobReport JobService::rejection_report(const std::string& name,
                                       SubmitCode code) const {
  JobReport r;
  r.name = name;
  std::string msg = "admission: ";
  switch (code) {
    case SubmitCode::Overloaded:
      msg += "queue at high-water mark (limit " +
             std::to_string(opt_.queue_limit) + ")";
      break;
    case SubmitCode::Quarantined:
      msg += "job name quarantined after repeated watchdog kills";
      break;
    default:
      msg += "service is not accepting work";
      break;
  }
  r.status = StageStatus::rejected(std::move(msg));
  return r;
}

SubmitResult JobService::submit(JobSpec spec, std::string client,
                                int priority) {
  // The manifest key hashes the bench text — compute it outside the lock.
  const bool check_manifest = manifest_ && opt_.resume;
  Digest128 key{};
  if (check_manifest) key = job_key(spec);

  SubmitResult res;
  JobReport replay;
  {
    std::lock_guard<std::mutex> lk(mu_);
    res.ticket = ++submitted_;
    const JobReport* found = nullptr;
    if (state_ != State::Running) {
      res.code = SubmitCode::NotAccepting;
      ++rejected_stopping_;
    } else if (quarantined_.count(spec.name)) {
      res.code = SubmitCode::Quarantined;
      ++rejected_quarantine_;
    } else if (queue_.size() >= opt_.queue_limit) {
      res.code = SubmitCode::Overloaded;
      ++rejected_overload_;
    } else if (check_manifest && (found = manifest_->find(key)) != nullptr) {
      res.code = SubmitCode::Replayed;
      ++replayed_;
      replay = *found;
    } else {
      res.code = SubmitCode::Accepted;
      ++accepted_;
      queue_.push({std::move(spec), std::move(client), priority, res.ticket});
      cv_work_.notify_one();
    }
  }
  if (res.code == SubmitCode::Replayed) {
    replay.cache.consulted = true;
    replay.cache.manifest = true;
    if (!replay.cache.note.empty()) replay.cache.note += "; ";
    replay.cache.note += "replayed from manifest at admission";
    emit(replay);
  } else if (res.code != SubmitCode::Accepted) {
    emit(rejection_report(spec.name, res.code));
  }
  return res;
}

void JobService::worker_loop() {
  for (;;) {
    QueuedJob qj;
    std::shared_ptr<Inflight> slot;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] {
        return state_ != State::Running || queue_.size() > 0;
      });
      if (state_ == State::Stopping) return;
      if (!queue_.pop(qj)) {
        if (state_ != State::Running) return;  // draining, queue run down
        continue;                              // spurious wakeup
      }
      // Register the in-flight slot under the SAME critical section as the
      // pop, so a drain that cancels "everything in flight" can never miss
      // a job that was popped but not yet registered.
      slot = std::make_shared<Inflight>();
      slot->name = qj.spec.name;
      slot->start = WallClock::now();
      slot->heartbeat.store(slot->start.time_since_epoch().count(),
                            std::memory_order_relaxed);
      slot->timeout_s = qj.spec.job_timeout_s > 0 ? qj.spec.job_timeout_s
                                                  : opt_.watchdog_timeout_s;
      inflight_[qj.ticket] = slot;
    }
    // The service owns liveness and cancellation for jobs it runs.
    qj.spec.cancel = &slot->token;
    qj.spec.heartbeat = &slot->heartbeat;
    if (!qj.spec.store) qj.spec.store = opt_.store;

    const Digest128 key = manifest_ ? job_key(qj.spec) : Digest128{};
    JobReport rep = run_plan_job(qj.spec);

    // Journal BEFORE streaming: a report a consumer has seen is durable.
    if (manifest_ && rep.status.code == StageCode::Ok)
      manifest_->append(key, rep);
    {
      std::lock_guard<std::mutex> lk(mu_);
      inflight_.erase(qj.ticket);
      switch (rep.status.code) {
        case StageCode::Ok: ++completed_ok_; break;
        case StageCode::Error: ++completed_error_; break;
        default: ++completed_stopped_; break;
      }
      for (const auto& sr : rep.stages) {
        if (sr.attempts > 1) {
          ++retried_jobs_;
          break;
        }
      }
      cv_drain_.notify_all();
    }
    emit(rep);
  }
}

void JobService::monitor_loop() {
  const double period = opt_.health_period_s;
  auto next_health = WallClock::now() + std::chrono::duration_cast<
      WallClock::duration>(dsec(period > 0 ? period : 1.0));
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mon_mu_);
      if (cv_monitor_.wait_for(lk, dsec(opt_.watchdog_poll_s),
                               [&] { return monitor_stop_; }))
        return;  // drain writes the final snapshot after the join
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      const auto now = WallClock::now();
      for (auto& [ticket, slot] : inflight_) {
        (void)ticket;
        if (slot->killed || slot->timeout_s <= 0) continue;
        const double elapsed = seconds_between(slot->start, now);
        const auto hb_tp = WallClock::time_point(WallClock::duration(
            slot->heartbeat.load(std::memory_order_relaxed)));
        const double hb_age = seconds_between(hb_tp, now);
        const double T = slot->timeout_s;
        const double G = opt_.stuck_grace_s;
        // Past the timeout and silent for the grace window => wedged (its
        // own deadline would have stopped it within one poll otherwise);
        // past timeout + grace => overdue regardless (belt and braces for
        // a job that beats but never honors its deadline).
        if (elapsed > T + G || (elapsed > T && hb_age > G)) {
          slot->killed = true;
          slot->token.cancel();
          ++watchdog_kills_;
          if (opt_.quarantine_after > 0 &&
              ++offenses_[slot->name] >= opt_.quarantine_after)
            quarantined_.insert(slot->name);
        }
      }
    }
    if (!opt_.health_path.empty() && period > 0 &&
        WallClock::now() >= next_health) {
      write_health_file();
      next_health = WallClock::now() +
                    std::chrono::duration_cast<WallClock::duration>(
                        dsec(period));
    }
  }
}

void JobService::drain(double deadline_s) {
  std::lock_guard<std::mutex> dguard(drain_mu_);
  std::vector<QueuedJob> dropped;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (state_ == State::Stopped) return;
    state_ = State::Draining;
    cv_work_.notify_all();
    const auto idle = [&] { return queue_.size() == 0 && inflight_.empty(); };
    bool clean = true;
    if (deadline_s < 0) {
      cv_drain_.wait(lk, idle);
    } else {
      clean = cv_drain_.wait_for(lk, dsec(deadline_s), idle);
    }
    state_ = State::Stopping;
    cv_work_.notify_all();
    if (!clean) {
      // Deadline passed: cancel in-flight work, drop the queue.  The wait
      // below is bounded by the pipeline's cooperative cancel latency.
      for (auto& [ticket, slot] : inflight_) {
        (void)ticket;
        slot->token.cancel();
      }
      dropped = queue_.drain_all();
      drain_dropped_ += dropped.size();
      cv_drain_.wait(lk, [&] { return inflight_.empty(); });
    }
  }
  // Accepted work is never silently lost: every dropped job still reports.
  for (const auto& qj : dropped) {
    JobReport r;
    r.name = qj.spec.name;
    r.status = StageStatus::cancelled("drain: dropped at drain deadline");
    emit(r);
  }
  if (runner_.joinable()) runner_.join();
  {
    std::lock_guard<std::mutex> lk(mon_mu_);
    monitor_stop_ = true;
    cv_monitor_.notify_all();
  }
  if (monitor_.joinable()) monitor_.join();
  {
    std::lock_guard<std::mutex> lk(mu_);
    state_ = State::Stopped;
  }
  write_health_file();  // final snapshot, state "stopped"
}

void JobService::emit(const JobReport& rep) {
  std::lock_guard<std::mutex> lk(emit_mu_);
  if (!sink_) return;
  try {
    sink_(rep);
  } catch (...) {
    ++sink_errors_;  // a bad consumer must not take a worker down
  }
}

ServiceHealth JobService::health_locked() const {
  ServiceHealth h;
  switch (state_) {
    case State::Running: h.state = "running"; break;
    case State::Draining: h.state = "draining"; break;
    case State::Stopping: h.state = "stopping"; break;
    case State::Stopped: h.state = "stopped"; break;
  }
  h.uptime_s = seconds_between(start_, WallClock::now());
  h.queue_depth = queue_.size();
  h.in_flight = inflight_.size();
  h.submitted = submitted_;
  h.accepted = accepted_;
  h.replayed = replayed_;
  h.completed_ok = completed_ok_;
  h.completed_error = completed_error_;
  h.completed_stopped = completed_stopped_;
  h.drain_dropped = drain_dropped_;
  h.rejected_overload = rejected_overload_;
  h.rejected_quarantine = rejected_quarantine_;
  h.rejected_stopping = rejected_stopping_;
  h.retried_jobs = retried_jobs_;
  h.watchdog_kills = watchdog_kills_;
  h.quarantined_names = quarantined_.size();
  if (opt_.store) {
    h.has_store = true;
    h.store = opt_.store->stats();
  }
  return h;
}

ServiceHealth JobService::health() const {
  std::lock_guard<std::mutex> lk(mu_);
  return health_locked();
}

bool JobService::accepting() const {
  std::lock_guard<std::mutex> lk(mu_);
  return state_ == State::Running;
}

std::vector<std::string> JobService::quarantined() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {quarantined_.begin(), quarantined_.end()};
}

void JobService::write_health_file() {
  if (opt_.health_path.empty()) return;
  const std::string body = health_json(health());
  atomic_write_file(*ops_, opt_.health_path,
                    {reinterpret_cast<const std::uint8_t*>(body.data()),
                     body.size()});
}

}  // namespace bist
