#pragma once
// Resilient long-lived job service over run_plan_job: bounded intake with
// backpressure, deterministic fairness, a liveness watchdog, graceful drain,
// and restart recovery from the batch manifest.
//
// Where run_job_batch (pipeline/job) takes a frozen corpus and runs it to
// completion, JobService accepts work forever: submissions arrive from any
// thread, are admitted against a bounded queue, and execute on a persistent
// WorkerPool while the caller moves on.  The design goal is that NOTHING a
// client submits — malformed netlists, poisoned stages, wedged jobs, floods
// far past capacity — can take the service down or silently lose an accepted
// job.  Every submission produces exactly ONE report through the sink:
//
//   accepted  -> runs on a worker; report streamed on completion (Ok, Error,
//                DeadlineExceeded, or Cancelled — including watchdog kills
//                and jobs dropped at the drain deadline);
//   replayed  -> key found in the resume manifest; the journaled report is
//                streamed immediately with cache.manifest set (no execution);
//   rejected  -> shed at admission with StageCode::Rejected and a message
//                saying why (overloaded / quarantined / not accepting), so
//                shed load is distinguishable from failed work everywhere.
//
// Backpressure.  The queue has a high-water mark (ServiceOptions::
// queue_limit); a submission that would exceed it is rejected FAST — no
// blocking, no buffering — and the caller learns immediately via
// SubmitCode::Overloaded.  Within the queue, scheduling is deterministically
// fair (FairQueue below): strict priority tiers, round-robin across clients
// inside a tier, FIFO per client.  A flood from one client delays only that
// client once the tiers interleave.
//
// Watchdog.  Every running job carries a heartbeat atomic that the pipeline
// beats at stage boundaries and at every cooperative deadline poll (see
// JobSpec::heartbeat).  A monitor thread watches in-flight jobs and fires
// the job's CancelToken when it is past its timeout AND has stopped beating
// for the stuck-grace window — or unconditionally once the grace window
// itself is exhausted past the timeout.  Jobs whose name accumulates
// quarantine_after watchdog kills are quarantined: further submissions of
// that name are rejected at admission (SubmitCode::Quarantined).
//
// Drain.  drain(deadline_s) stops intake, lets queued + in-flight work
// finish, and — if the deadline passes first — cancels in-flight jobs and
// drops the remaining queue, emitting a Cancelled report for every dropped
// job so accepted work is never silently lost.  Drain always terminates:
// the wait after the deadline is bounded by the pipeline's cooperative
// cancellation latency, not by job length.  A final health snapshot is
// written before the service reports Stopped.
//
// Recovery.  With a manifest path, every Ok job is journaled (append-only,
// fsync'd, torn-tail tolerant) BEFORE its report is streamed; with resume,
// admissions whose job_key is already journaled replay instantly.  A killed
// service restarted with resume therefore re-serves completed work without
// re-running it — the kill-and-restart differential in CI proves the union
// of streamed reports matches a cold batch run byte for byte (volatile
// fields stripped).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "pipeline/job.hpp"
#include "store/result_store.hpp"
#include "util/fileio.hpp"
#include "util/parallel.hpp"
#include "util/wallclock.hpp"

namespace bist {

class BatchManifest;

/// One queued submission with its fairness coordinates.
struct QueuedJob {
  JobSpec spec;
  std::string client;       ///< fairness identity; "" is a client like any
  int priority = 0;         ///< higher runs first (strict tiers)
  std::uint64_t ticket = 0; ///< admission order, unique per service lifetime
};

/// Deterministic fair scheduler: strict priority tiers (higher first);
/// round-robin across clients within a tier (a client goes to the back of
/// its tier after every pop, so one flooding client cannot starve the
/// others); FIFO within a client.  Pop order is a pure function of the push
/// sequence — no clocks, no randomness — so fairness is unit-testable
/// exactly.  Not thread-safe; JobService guards it with its own mutex.
class FairQueue {
 public:
  void push(QueuedJob j);
  /// Pop the next job per the fairness policy; false when empty.
  bool pop(QueuedJob& out);
  std::size_t size() const { return size_; }
  /// Remove and return everything, in the exact order pop() would have
  /// yielded it (drain-deadline drop path).
  std::vector<QueuedJob> drain_all();

 private:
  struct ClientQ {
    std::string client;
    std::deque<QueuedJob> jobs;
  };
  /// priority -> round-robin ring of per-client FIFOs, highest tier first.
  std::map<int, std::list<ClientQ>, std::greater<int>> tiers_;
  std::size_t size_ = 0;
};

/// Admission verdict, returned synchronously from submit().
enum class SubmitCode : std::uint8_t {
  Accepted,     ///< queued; report arrives through the sink on completion
  Replayed,     ///< served from the resume manifest; report already emitted
  Overloaded,   ///< queue at high-water mark; rejected fast (backpressure)
  Quarantined,  ///< job name exceeded the watchdog offense budget
  NotAccepting, ///< service is draining or stopped
};

std::string_view submit_code_name(SubmitCode c);

struct SubmitResult {
  SubmitCode code = SubmitCode::NotAccepting;
  std::uint64_t ticket = 0;  ///< admission sequence number (all outcomes)
};

struct ServiceOptions {
  unsigned threads = 0;        ///< worker count; resolve_threads semantics
  std::size_t queue_limit = 64;///< queue high-water mark (bounded intake)
  /// Watchdog timeout for jobs whose spec carries no job_timeout_s; <= 0
  /// leaves such jobs unwatched (they can still be cancelled by drain).
  double watchdog_timeout_s = 0;
  double stuck_grace_s = 0.25; ///< heartbeat-silence window past the timeout
  double watchdog_poll_s = 0.02;  ///< monitor scan cadence
  /// Watchdog kills of the same job name before it is quarantined; <= 0
  /// disables quarantine.
  int quarantine_after = 3;
  ResultStore* store = nullptr;  ///< sweep cache for jobs without one
  std::string manifest_path;     ///< completed-Ok journal; empty = none
  bool resume = false;           ///< replay journaled keys at admission
  FileOps* ops = nullptr;        ///< manifest/health I/O; nullptr = real
  std::string health_path;       ///< periodic health snapshot; empty = none
  double health_period_s = 0;    ///< <= 0: final snapshot only
};

/// Counter snapshot; every submission is accounted for exactly once:
///   submitted == accepted + replayed + rejected_*            (admission)
///   accepted  == completed_* + drain_dropped + in_flight + queue_depth
struct ServiceHealth {
  std::string state;           ///< running | draining | stopping | stopped
  double uptime_s = 0;
  std::size_t queue_depth = 0;
  std::size_t in_flight = 0;
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t replayed = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t completed_error = 0;
  std::uint64_t completed_stopped = 0;  ///< deadline/cancel-shaped outcomes
  std::uint64_t drain_dropped = 0;      ///< accepted, dropped at drain deadline
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_quarantine = 0;
  std::uint64_t rejected_stopping = 0;
  std::uint64_t retried_jobs = 0;    ///< jobs where any stage took > 1 attempt
  std::uint64_t watchdog_kills = 0;
  std::uint64_t quarantined_names = 0;
  bool has_store = false;
  StoreStats store;  ///< valid when has_store
};

/// One-line JSON rendering of a health snapshot (the health-file schema).
std::string health_json(const ServiceHealth& h);

class JobService {
 public:
  /// Streamed-report sink, called exactly once per submission (see header
  /// notes), serialized under an internal mutex so concurrent completions
  /// never interleave.  Must not throw; a throwing sink is contained and
  /// counted, not propagated.
  using Sink = std::function<void(const JobReport&)>;

  JobService(ServiceOptions opt, Sink sink);
  /// Hard-drains (deadline 0: cancel in-flight, drop the queue) if the
  /// service was not drained explicitly.
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Admit one job (thread-safe, non-blocking).  The service owns the job's
  /// cancellation and heartbeat: spec.cancel / spec.heartbeat are replaced
  /// with service-managed instances, and spec.store defaults to the service
  /// store when unset.  Rejected and replayed submissions emit their report
  /// through the sink before this returns.
  SubmitResult submit(JobSpec spec, std::string client = {}, int priority = 0);

  /// Stop intake and run down the queue.  deadline_s < 0 waits forever;
  /// otherwise, when the deadline passes, in-flight jobs are cancelled and
  /// the remaining queue is dropped (each dropped job emits a Cancelled
  /// report).  Terminates in bounded time for deadline_s >= 0; idempotent.
  void drain(double deadline_s);

  ServiceHealth health() const;
  bool accepting() const;
  /// Names currently refused at admission (watchdog offense budget spent).
  std::vector<std::string> quarantined() const;

 private:
  enum class State : std::uint8_t { Running, Draining, Stopping, Stopped };

  struct Inflight {
    std::string name;
    CancelToken token;
    std::atomic<std::int64_t> heartbeat{0};
    WallClock::time_point start{};
    double timeout_s = 0;  ///< effective watchdog timeout; <= 0 unwatched
    bool killed = false;   ///< watchdog fired (once per job)
  };

  void worker_loop();
  void monitor_loop();
  void emit(const JobReport& rep);
  JobReport rejection_report(const std::string& name, SubmitCode code) const;
  ServiceHealth health_locked() const;  ///< callers hold mu_
  void write_health_file();

  ServiceOptions opt_;
  Sink sink_;
  FileOps* ops_;
  std::unique_ptr<BatchManifest> manifest_;
  const WallClock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   ///< workers: queue / state changes
  std::condition_variable cv_drain_;  ///< drain: completions
  State state_ = State::Running;
  FairQueue queue_;
  std::map<std::uint64_t, std::shared_ptr<Inflight>> inflight_;
  std::map<std::string, int> offenses_;  ///< watchdog kills per job name
  std::set<std::string> quarantined_;
  std::uint64_t submitted_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t replayed_ = 0;
  std::uint64_t completed_ok_ = 0;
  std::uint64_t completed_error_ = 0;
  std::uint64_t completed_stopped_ = 0;
  std::uint64_t drain_dropped_ = 0;
  std::uint64_t rejected_overload_ = 0;
  std::uint64_t rejected_quarantine_ = 0;
  std::uint64_t rejected_stopping_ = 0;
  std::uint64_t retried_jobs_ = 0;
  std::uint64_t watchdog_kills_ = 0;

  std::mutex emit_mu_;   ///< serializes sink calls (no interleaved streams)
  std::uint64_t sink_errors_ = 0;  ///< guarded by emit_mu_

  std::mutex mon_mu_;    ///< monitor wakeup only
  std::condition_variable cv_monitor_;
  bool monitor_stop_ = false;  ///< guarded by mon_mu_

  std::mutex drain_mu_;  ///< serializes concurrent drain() calls

  WorkerPool pool_;
  std::thread runner_;   ///< hosts pool_.run(worker_loop) for the lifetime
  std::thread monitor_;
};

}  // namespace bist
