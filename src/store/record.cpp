#include "store/record.hpp"

namespace bist {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::string_view record_check_name(RecordCheck c) {
  switch (c) {
    case RecordCheck::Ok: return "ok";
    case RecordCheck::TooShort: return "too_short";
    case RecordCheck::BadMagic: return "bad_magic";
    case RecordCheck::BadVersion: return "bad_version";
    case RecordCheck::BadLength: return "bad_length";
    case RecordCheck::BadKey: return "bad_key";
    case RecordCheck::BadChecksum: return "bad_checksum";
  }
  return "unknown";
}

std::vector<std::uint8_t> frame_record(const Digest128& key,
                                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kRecordHeaderSize + payload.size());
  put_u32(out, kStoreMagic);
  put_u32(out, kStoreFormatVersion);
  put_u64(out, payload.size());
  put_u64(out, fnv1a64(payload));
  put_u64(out, key.hi);
  put_u64(out, key.lo);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

ParsedRecord parse_record(std::span<const std::uint8_t> bytes,
                          const Digest128* expect_key) {
  ParsedRecord r;
  if (bytes.size() < kRecordHeaderSize) {
    r.check = RecordCheck::TooShort;
    return r;
  }
  const std::uint8_t* p = bytes.data();
  if (get_u32(p) != kStoreMagic) {
    r.check = RecordCheck::BadMagic;
    return r;
  }
  r.version = get_u32(p + 4);
  const std::uint64_t len = get_u64(p + 8);
  const std::uint64_t checksum = get_u64(p + 16);
  r.key = Digest128{get_u64(p + 24), get_u64(p + 32)};
  if (r.version != kStoreFormatVersion) {
    r.check = RecordCheck::BadVersion;
    return r;
  }
  if (len > bytes.size() - kRecordHeaderSize) {
    r.check = RecordCheck::BadLength;
    return r;
  }
  if (expect_key && !(r.key == *expect_key)) {
    r.check = RecordCheck::BadKey;
    return r;
  }
  const auto payload = bytes.subspan(kRecordHeaderSize, len);
  if (fnv1a64(payload) != checksum) {
    r.check = RecordCheck::BadChecksum;
    return r;
  }
  r.check = RecordCheck::Ok;
  r.payload = payload;
  r.frame_size = kRecordHeaderSize + static_cast<std::size_t>(len);
  return r;
}

}  // namespace bist
