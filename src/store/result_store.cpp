#include "store/result_store.hpp"

#include "netlist/fingerprint.hpp"
#include "store/serialize.hpp"

namespace bist {

Digest128 sweep_cache_key(const Netlist& n,
                          std::span<const std::size_t> lengths,
                          const MixedTpgOptions& opt) {
  Hasher h;
  h.str("bist-sweep-key");
  h.u32(kStoreFormatVersion);
  const Digest128 fp = netlist_fingerprint(n);
  h.u64(fp.hi).u64(fp.lo);
  h.u64(lengths.size());
  for (const std::size_t l : lengths) h.u64(l);
  // Result-affecting MixedTpgOptions fields only.  lfsr_patterns is skipped
  // (the sweep's lengths drive the stream); fsim/podem_threads are skipped
  // (engine-invariant results); deadline is skipped (only Complete Ok sweeps
  // are published, so deadline shaping can never reach a record).
  h.u32(opt.lfsr_degree);
  h.u64(opt.lfsr_seed);
  h.u32(opt.podem.backtrack_limit);
  h.u64(opt.fill_seed);
  h.u8(opt.compress ? 1 : 0);
  h.u32(opt.misr_degree);
  h.u64(opt.misr_fold.size());
  for (const std::uint16_t f : opt.misr_fold) h.u16(f);
  h.u8(opt.compact ? 1 : 0);
  h.u8(opt.verify_patterns ? 1 : 0);
  return h.digest();
}

ResultStore::ResultStore(StoreOptions opt)
    : dir_(std::move(opt.dir)), ops_(opt.ops ? opt.ops : &FileOps::real()) {
  ops_->make_dirs(dir_);
}

std::string ResultStore::sweep_path(const Digest128& key) const {
  return dir_ + "/sweep_" + key.hex() + ".bin";
}

void ResultStore::quarantine(const std::string& path,
                             std::string_view verdict) {
  quarantined_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t slash = path.find_last_of('/');
  const std::string file =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::string qdir = dir_ + "/quarantine";
  const std::string qpath =
      qdir + "/" + file + "." + std::string(verdict);
  if (!ops_->make_dirs(qdir) || !ops_->rename_file(path, qpath))
    ops_->remove_file(path);
}

ResultStore::SweepLookup ResultStore::load_sweep(const Digest128& key) {
  SweepLookup out;
  const std::string path = sweep_path(key);
  std::vector<std::uint8_t> bytes;
  if (!ops_->read_file(path, bytes)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    out.outcome = SweepLookup::Outcome::Miss;
    return out;
  }
  const ParsedRecord rec = parse_record(bytes, &key);
  if (rec.check != RecordCheck::Ok || rec.frame_size != bytes.size()) {
    const std::string_view verdict = rec.check == RecordCheck::Ok
                                         ? std::string_view("trailing_bytes")
                                         : record_check_name(rec.check);
    quarantine(path, verdict);
    out.outcome = SweepLookup::Outcome::Quarantined;
    out.note = "cache record quarantined (" + std::string(verdict) + ")";
    return out;
  }
  try {
    out.sweep = deserialize_sweep(rec.payload);
  } catch (const std::exception& e) {
    // Checksum-valid but undecodable: a buggy producer, not bit rot.  Same
    // treatment — set it aside and recompute.
    quarantine(path, "undecodable");
    out.outcome = SweepLookup::Outcome::Quarantined;
    out.note = std::string("cache record quarantined (undecodable: ") +
               e.what() + ")";
    return out;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  out.outcome = SweepLookup::Outcome::Hit;
  out.note = "cache hit";
  return out;
}

bool ResultStore::store_sweep(const Digest128& key,
                              const MixedSweepResult& sweep,
                              std::string* note) {
  std::vector<std::uint8_t> frame;
  try {
    frame = frame_record(key, serialize_sweep(sweep));
  } catch (const std::exception& e) {
    store_failures_.fetch_add(1, std::memory_order_relaxed);
    if (note) *note = std::string("cache store failed (serialize: ") +
                      e.what() + ")";
    return false;
  }
  ops_->make_dirs(dir_);
  if (!atomic_write_file(*ops_, sweep_path(key), frame)) {
    store_failures_.fetch_add(1, std::memory_order_relaxed);
    if (note) *note = "cache store failed (write)";
    return false;
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

StoreStats ResultStore::stats() const {
  StoreStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.store_failures = store_failures_.load(std::memory_order_relaxed);
  s.quarantined = quarantined_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace bist
