#pragma once
// Binary serialization of pipeline result payloads for the persistence
// layer: MixedSweepResult (the store's cache unit) and JobReport (the batch
// manifest's checkpoint unit).
//
// The format is a straight little-endian field walk — no schema, no
// varints — because the record framing (store/record) already carries the
// format version and a checksum: a layout change bumps
// kStoreFormatVersion and old records quarantine as BadVersion before a
// byte of payload is decoded.  Deserialization is nevertheless fully
// bounds-checked (a checksum-valid record could still have been written by
// a buggy producer): ByteReader throws std::runtime_error on any overrun,
// count that exceeds the remaining bytes, or out-of-range enum, and the
// store converts that throw into a quarantine + miss.
//
// Serialization is deterministic: the same in-memory value always produces
// the same bytes.  Combined with the pipeline's bit-identical determinism
// contract this makes serialized equality a usable differential oracle —
// strip_volatile() zeroes the wall-clock/attempt/cache fields and the
// kill-and-resume test compares resumed and cold batches byte for byte.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "pipeline/job.hpp"
#include "tpg/sweep.hpp"

namespace bist {

std::vector<std::uint8_t> serialize_sweep(const MixedSweepResult& r);
/// Throws std::runtime_error on malformed bytes.
MixedSweepResult deserialize_sweep(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> serialize_job_report(const JobReport& r);
/// Throws std::runtime_error on malformed bytes.
JobReport deserialize_job_report(std::span<const std::uint8_t> bytes);

/// Zero every wall-clock-shaped field (stage/job seconds, solve breakdowns,
/// retry attempt counts, cache outcomes) so two reports that did the same
/// *work* serialize identically regardless of how fast they ran or where
/// their data came from.  The kill-and-resume differential and the manifest
/// equality checks compare serialize_job_report(strip_volatile(...)) bytes.
void strip_volatile(JobReport& r);

}  // namespace bist
