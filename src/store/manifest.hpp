#pragma once
// Batch manifest checkpoint: an append-only journal of completed JobReports
// keyed by job hash, so a run_job_batch killed mid-corpus resumes from the
// jobs that finished instead of starting over.
//
// The file is a sequence of framed records (store/record) written with a
// single fsync'd append each — appends are whole frames, so a crash can
// only truncate the TAIL.  load() is therefore tolerant by design: it walks
// records front to back and stops at the first bad frame (a torn tail is
// expected after SIGKILL, not corruption worth quarantining); everything
// before the tear replays.  Duplicate keys keep the last occurrence.
//
// Thread safety: append() serializes under a mutex (many worker threads
// finish jobs concurrently); load()/find() are for the single-threaded
// setup phase before the batch fans out.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "pipeline/job.hpp"
#include "util/fileio.hpp"
#include "util/hash.hpp"

namespace bist {

class BatchManifest {
 public:
  explicit BatchManifest(std::string path, FileOps* ops = nullptr);

  /// Replay the journal; returns the number of reports recovered (torn or
  /// corrupt tails are silently dropped — see header notes).  Never throws.
  std::size_t load();

  /// Report recovered for `key`, or nullptr.  Valid until the next load().
  const JobReport* find(const Digest128& key) const;

  /// Append one completed job (serialized, framed, fsync'd) under a mutex.
  /// False on I/O failure — the batch keeps running, resume just loses this
  /// checkpoint.  Never throws.
  bool append(const Digest128& key, const JobReport& rep);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  FileOps* ops_;
  std::mutex mu_;
  std::vector<std::pair<Digest128, JobReport>> entries_;
};

}  // namespace bist
