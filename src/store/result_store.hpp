#pragma once
// Content-addressed, integrity-checked result store for mixed-scheme sweep
// results — the durability layer of the corpus pipeline.
//
// Keying.  sweep_cache_key() folds exactly the inputs that determine a
// sweep's result payload: the store format version, the canonical netlist
// fingerprint, the sweep lengths, and every result-affecting MixedTpgOptions
// field.  Engine knobs that only change speed (fault-sim threads/word
// width, PODEM worker count) are deliberately EXCLUDED — the pipeline's
// bit-identical determinism contract makes their results interchangeable,
// so a record computed at 8 threads serves a 1-thread request.  Deadlines
// are excluded too, but that is safe for a different reason: only fully
// Complete, status-Ok sweeps are ever published (a deadline-shaped result
// is wall-clock-shaped, not canonical, and must not be served as one).
//
// Integrity.  Records are framed (store/record) and written atomically
// (util/fileio), so a reader sees an old record or a complete new one,
// never a torn write.  Every load re-verifies the frame; anything wrong —
// truncation, bit rot, version skew, a key mismatch, an undecodable
// payload — quarantines the file (renamed into quarantine/ with the
// verdict in its name, removed if even the rename fails) and reports a
// miss.  A corrupt store can cost recomputation, never correctness, and
// never a crash: no method of this class throws.

#include <atomic>
#include <cstdint>
#include <span>
#include <string>

#include "netlist/netlist.hpp"
#include "store/record.hpp"
#include "tpg/sweep.hpp"
#include "util/fileio.hpp"
#include "util/hash.hpp"

namespace bist {

/// Cache key for run_mixed_sweep over a frozen netlist (see keying notes
/// above).  Pure function of its arguments; stable across hosts and runs.
Digest128 sweep_cache_key(const Netlist& n,
                          std::span<const std::size_t> lengths,
                          const MixedTpgOptions& opt);

struct StoreOptions {
  std::string dir;         ///< store root; created on first use
  FileOps* ops = nullptr;  ///< nullptr = FileOps::real(); tests inject shims
};

/// Counter snapshot for bench/CI reporting.
struct StoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;          ///< absent records (clean misses)
  std::uint64_t stores = 0;          ///< successful publishes
  std::uint64_t store_failures = 0;  ///< failed publishes (ENOSPC, ...)
  std::uint64_t quarantined = 0;     ///< corrupt records set aside
};

class ResultStore {
 public:
  explicit ResultStore(StoreOptions opt);

  struct SweepLookup {
    enum class Outcome : std::uint8_t { Hit, Miss, Quarantined };
    Outcome outcome = Outcome::Miss;
    MixedSweepResult sweep;  ///< valid only on Hit
    std::string note;        ///< human-readable verdict for StageReport
  };

  /// Look up a sweep by key.  Never throws; corruption quarantines and
  /// degrades to a miss (outcome tells the caller which, for reporting).
  /// Thread-safe: distinct keys never touch the same file and same-key
  /// publishes are atomic renames.
  SweepLookup load_sweep(const Digest128& key);

  /// Publish a sweep under `key` (atomic write; see fileio).  Returns false
  /// on I/O failure — the store simply stays cold for that key.  Never
  /// throws.  `note` receives a failure description when non-null.
  bool store_sweep(const Digest128& key, const MixedSweepResult& sweep,
                   std::string* note = nullptr);

  StoreStats stats() const;
  const std::string& dir() const { return dir_; }
  /// Record file path for a key ("<dir>/sweep_<32 hex>.bin").
  std::string sweep_path(const Digest128& key) const;

 private:
  /// Move a bad record aside (quarantine/<file>.<verdict>); remove on
  /// rename failure so the poison cannot be re-read forever.
  void quarantine(const std::string& path, std::string_view verdict);

  std::string dir_;
  FileOps* ops_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> store_failures_{0};
  std::atomic<std::uint64_t> quarantined_{0};
};

}  // namespace bist
