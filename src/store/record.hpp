#pragma once
// On-disk record framing for the result store and the batch manifest.
//
// A record is a fixed 40-byte little-endian header followed by the payload:
//
//   offset  size  field
//        0     4  magic      "BSTR" (0x42535452)
//        4     4  version    kStoreFormatVersion
//        8     8  payload_len
//       16     8  checksum   FNV-1a 64 over the payload bytes
//       24     8  key.hi     content-address the payload was stored under
//       32     8  key.lo
//
// The key lives in the header so a record that was misfiled (or a file whose
// name was tampered with) can never be returned for the wrong request — a
// key mismatch is a corruption verdict like any other.  parse_record() never
// throws; every way a frame can be bad maps to a RecordCheck value, and the
// store turns anything but Ok into a quarantine + miss.

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/hash.hpp"

namespace bist {

inline constexpr std::uint32_t kStoreMagic = 0x42535452u;  // "BSTR"
/// Bump whenever the serialized payload layout changes; old records then
/// read as BadVersion and are quarantined rather than misdecoded.
/// v2: StageCode gained the Rejected terminal status (widens the valid
/// enum range the payload decoder accepts).
inline constexpr std::uint32_t kStoreFormatVersion = 2;
inline constexpr std::size_t kRecordHeaderSize = 40;

enum class RecordCheck : std::uint8_t {
  Ok,
  TooShort,     ///< fewer bytes than a header (truncated at/inside header)
  BadMagic,     ///< not a store record at all
  BadVersion,   ///< written by a different code-format version
  BadLength,    ///< payload_len exceeds the bytes actually present
  BadKey,       ///< header key differs from the key the caller expected
  BadChecksum,  ///< payload bytes fail the checksum (bit rot, torn write)
};

std::string_view record_check_name(RecordCheck c);

/// Header + payload, ready for atomic_write_file / append_file.
std::vector<std::uint8_t> frame_record(const Digest128& key,
                                       std::span<const std::uint8_t> payload);

struct ParsedRecord {
  RecordCheck check = RecordCheck::TooShort;
  std::uint32_t version = 0;
  Digest128 key;
  std::span<const std::uint8_t> payload;  ///< valid only when check == Ok
  std::size_t frame_size = 0;  ///< header + payload bytes consumed when Ok
};

/// Validate one record at the front of `bytes`.  When `expect_key` is given,
/// a header key mismatch yields BadKey.  Trailing bytes after the frame are
/// legal (the manifest stores records back to back); the store itself
/// additionally requires frame_size == file size.
ParsedRecord parse_record(std::span<const std::uint8_t> bytes,
                          const Digest128* expect_key = nullptr);

}  // namespace bist
