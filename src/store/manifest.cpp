#include "store/manifest.hpp"

#include "store/record.hpp"
#include "store/serialize.hpp"

namespace bist {

BatchManifest::BatchManifest(std::string path, FileOps* ops)
    : path_(std::move(path)), ops_(ops ? ops : &FileOps::real()) {}

std::size_t BatchManifest::load() {
  entries_.clear();
  std::vector<std::uint8_t> bytes;
  if (!ops_->read_file(path_, bytes)) return 0;
  std::span<const std::uint8_t> rest(bytes);
  while (!rest.empty()) {
    const ParsedRecord rec = parse_record(rest);
    if (rec.check != RecordCheck::Ok) break;  // torn tail: keep the prefix
    JobReport rep;
    try {
      rep = deserialize_job_report(rec.payload);
    } catch (const std::exception&) {
      break;  // undecodable frame poisons everything after it too
    }
    bool replaced = false;
    for (auto& [key, existing] : entries_)
      if (key == rec.key) {
        existing = std::move(rep);
        replaced = true;
        break;
      }
    if (!replaced) entries_.emplace_back(rec.key, std::move(rep));
    rest = rest.subspan(rec.frame_size);
  }
  return entries_.size();
}

const JobReport* BatchManifest::find(const Digest128& key) const {
  for (const auto& [k, rep] : entries_)
    if (k == key) return &rep;
  return nullptr;
}

bool BatchManifest::append(const Digest128& key, const JobReport& rep) {
  std::vector<std::uint8_t> frame;
  try {
    frame = frame_record(key, serialize_job_report(rep));
  } catch (const std::exception&) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return ops_->append_file(path_, frame);
}

}  // namespace bist
