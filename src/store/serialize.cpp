#include "store/serialize.hpp"

#include <bit>
#include <cstring>

namespace bist {
namespace {

// ---------------------------------------------------------------------------
// Primitive writer / bounds-checked reader
// ---------------------------------------------------------------------------

class ByteWriter {
 public:
  std::vector<std::uint8_t> take() { return std::move(out_); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
  void sz(std::size_t v) { u64(v); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    sz(s.size());
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void bitvec(const BitVec& v) {
    sz(v.size());
    for (std::size_t w = 0; w < v.word_count(); ++w) u64(v.word(w));
  }

 private:
  std::vector<std::uint8_t> out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error(std::string("store payload: ") + what);
  }
  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return pos_ == bytes_.size(); }

  void need(std::size_t n) const {
    if (remaining() < n) fail("truncated payload");
  }

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }
  bool b() {
    const std::uint8_t v = u8();
    if (v > 1) fail("bad bool");
    return v != 0;
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= std::uint16_t(bytes_[pos_++]) << (8 * i);
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(bytes_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(bytes_[pos_++]) << (8 * i);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::size_t sz() {
    const std::uint64_t v = u64();
    if (v > std::size_t(-1)) fail("size overflow");
    return static_cast<std::size_t>(v);
  }
  /// Element count for a vector whose elements take >= `elem_bytes` each —
  /// bounded by the bytes actually present, so a corrupted count can never
  /// drive a huge allocation.
  std::size_t count(std::size_t elem_bytes) {
    const std::size_t n = sz();
    if (elem_bytes > 0 && n > remaining() / elem_bytes) fail("bad count");
    return n;
  }
  std::string str() {
    const std::size_t n = count(1);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  BitVec bitvec() {
    const std::size_t n = sz();
    const std::size_t words = (n + 63) / 64;
    if (words > remaining() / 8) fail("bad bitvec");
    BitVec v(n);
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t word = u64();
      if (w + 1 == words && n % 64 != 0 &&
          (word >> (n % 64)) != 0)
        fail("bitvec tail bits set");
      v.word(w) = word;
    }
    return v;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Field walks (writer and reader kept adjacent per type)
// ---------------------------------------------------------------------------

void put_status(ByteWriter& w, const StageStatus& s) {
  w.u8(static_cast<std::uint8_t>(s.code));
  w.str(s.message);
}

StageStatus get_status(ByteReader& r) {
  StageStatus s;
  const std::uint8_t code = r.u8();
  if (code > static_cast<std::uint8_t>(StageCode::Rejected)) r.fail("bad code");
  s.code = static_cast<StageCode>(code);
  s.message = r.str();
  return s;
}

void put_misr(ByteWriter& w, const MisrSpec& m) {
  w.u32(m.degree);
  w.u64(m.taps);
  w.sz(m.fold.size());
  for (const std::uint16_t f : m.fold) w.u16(f);
}

MisrSpec get_misr(ByteReader& r) {
  MisrSpec m;
  m.degree = r.u32();
  m.taps = r.u64();
  m.fold.resize(r.count(2));
  for (auto& f : m.fold) f = r.u16();
  return m;
}

void put_comp(ByteWriter& w, const CompressedTopoff& c) {
  w.b(c.enabled);
  w.u32(c.degree);
  w.sz(c.seeds.size());
  for (const SeedEvent& e : c.seeds) {
    w.u32(e.row);
    w.u32(e.offset);
    w.u64(e.seed);
  }
  w.sz(c.fallback.size());
  for (const std::uint8_t f : c.fallback) w.u8(f);
  put_misr(w, c.misr);
  w.u64(c.golden);
  w.sz(c.cut_outputs);
  w.f64(c.solve_seconds);
}

CompressedTopoff get_comp(ByteReader& r) {
  CompressedTopoff c;
  c.enabled = r.b();
  c.degree = r.u32();
  c.seeds.resize(r.count(16));
  for (auto& e : c.seeds) {
    e.row = r.u32();
    e.offset = r.u32();
    e.seed = r.u64();
  }
  c.fallback.resize(r.count(1));
  for (auto& f : c.fallback) f = r.u8();
  c.misr = get_misr(r);
  c.golden = r.u64();
  c.cut_outputs = r.sz();
  c.solve_seconds = r.f64();
  return c;
}

void put_faults(ByteWriter& w, const std::vector<Fault>& fs) {
  w.sz(fs.size());
  for (const Fault& f : fs) {
    w.u32(f.gate);
    w.i16(f.pin);
    w.u8(f.stuck);
  }
}

std::vector<Fault> get_faults(ByteReader& r) {
  std::vector<Fault> fs(r.count(7));
  for (auto& f : fs) {
    f.gate = r.u32();
    f.pin = r.i16();
    f.stuck = r.u8();
  }
  return fs;
}

void put_fsim(ByteWriter& w, const FaultSimResult& f) {
  w.sz(f.total_faults);
  w.sz(f.sim_faults);
  w.sz(f.detected);
  w.u64(f.detected_weight);
  w.u64(f.total_weight);
  w.sz(f.patterns);
  put_status(w, f.status);
  w.u32(f.threads);
  w.u32(f.word_width);
  w.sz(f.first_detected.size());
  for (const std::int64_t v : f.first_detected) w.i64(v);
  w.sz(f.coverage.size());
  for (const double v : f.coverage) w.f64(v);
  w.sz(f.coverage_weighted.size());
  for (const double v : f.coverage_weighted) w.f64(v);
  w.u64(f.faulty_gate_evals);
}

FaultSimResult get_fsim(ByteReader& r) {
  FaultSimResult f;
  f.total_faults = r.sz();
  f.sim_faults = r.sz();
  f.detected = r.sz();
  f.detected_weight = r.u64();
  f.total_weight = r.u64();
  f.patterns = r.sz();
  f.status = get_status(r);
  f.threads = r.u32();
  f.word_width = r.u32();
  f.first_detected.resize(r.count(8));
  for (auto& v : f.first_detected) v = r.i64();
  f.coverage.resize(r.count(8));
  for (auto& v : f.coverage) v = r.f64();
  f.coverage_weighted.resize(r.count(8));
  for (auto& v : f.coverage_weighted) v = r.f64();
  f.faulty_gate_evals = r.u64();
  return f;
}

void put_point(ByteWriter& w, const MixedSchemeResult& p) {
  w.sz(p.lfsr_patterns);
  w.sz(p.tail_faults);
  w.sz(p.podem_detected);
  w.sz(p.redundant);
  w.sz(p.aborted);
  w.u64(p.podem_backtracks);
  w.u64(p.podem_decisions);
  w.sz(p.topoff_before_compaction);
  w.sz(p.topoff_patterns);
  w.sz(p.topoff.size());
  for (const BitVec& t : p.topoff) w.bitvec(t);
  put_comp(w, p.comp);
  put_faults(w, p.redundant_faults);
  put_faults(w, p.aborted_faults);
  w.f64(p.lfsr_coverage);
  w.f64(p.lfsr_coverage_weighted);
  w.f64(p.final_coverage);
  w.f64(p.final_coverage_weighted);
  w.b(p.all_verified);
  put_fsim(w, p.lfsr_result);
  w.f64(p.lfsr_seconds);
  w.f64(p.podem_seconds);
  w.f64(p.compact_seconds);
  w.f64(p.solve_seconds);
  w.u8(static_cast<std::uint8_t>(p.state));
  put_status(w, p.status);
}

MixedSchemeResult get_point(ByteReader& r) {
  MixedSchemeResult p;
  p.lfsr_patterns = r.sz();
  p.tail_faults = r.sz();
  p.podem_detected = r.sz();
  p.redundant = r.sz();
  p.aborted = r.sz();
  p.podem_backtracks = r.u64();
  p.podem_decisions = r.u64();
  p.topoff_before_compaction = r.sz();
  p.topoff_patterns = r.sz();
  p.topoff.resize(r.count(8));
  for (auto& t : p.topoff) t = r.bitvec();
  p.comp = get_comp(r);
  p.redundant_faults = get_faults(r);
  p.aborted_faults = get_faults(r);
  p.lfsr_coverage = r.f64();
  p.lfsr_coverage_weighted = r.f64();
  p.final_coverage = r.f64();
  p.final_coverage_weighted = r.f64();
  p.all_verified = r.b();
  p.lfsr_result = get_fsim(r);
  p.lfsr_seconds = r.f64();
  p.podem_seconds = r.f64();
  p.compact_seconds = r.f64();
  p.solve_seconds = r.f64();
  const std::uint8_t state = r.u8();
  if (state > static_cast<std::uint8_t>(PointState::Skipped))
    r.fail("bad point state");
  p.state = static_cast<PointState>(state);
  p.status = get_status(r);
  return p;
}

void put_sweep(ByteWriter& w, const MixedSweepResult& s) {
  w.sz(s.lengths.size());
  for (const std::size_t l : s.lengths) w.sz(l);
  w.sz(s.width);
  w.sz(s.stats.podem_calls);
  w.sz(s.stats.podem_cache_hits);
  w.u32(s.stats.podem_threads);
  w.f64(s.stats.lfsr_seconds);
  w.f64(s.stats.podem_seconds);
  w.f64(s.stats.compact_seconds);
  w.f64(s.stats.solve_seconds);
  put_status(w, s.status);
  w.sz(s.points.size());
  for (const MixedSchemeResult& p : s.points) put_point(w, p);
}

MixedSweepResult get_sweep(ByteReader& r) {
  MixedSweepResult s;
  s.lengths.resize(r.count(8));
  for (auto& l : s.lengths) l = r.sz();
  s.width = r.sz();
  s.stats.podem_calls = r.sz();
  s.stats.podem_cache_hits = r.sz();
  s.stats.podem_threads = r.u32();
  s.stats.lfsr_seconds = r.f64();
  s.stats.podem_seconds = r.f64();
  s.stats.compact_seconds = r.f64();
  s.stats.solve_seconds = r.f64();
  s.status = get_status(r);
  const std::size_t n = r.count(1);
  s.points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) s.points.push_back(get_point(r));
  return s;
}

void put_area(ByteWriter& w, const BistArea& a) {
  w.f64(a.lfsr);
  w.f64(a.rom);
  w.f64(a.seed_rom);
  w.f64(a.controller);
  w.f64(a.mux);
  w.f64(a.misr);
  w.sz(a.rom_bits);
  w.sz(a.seed_rom_bits);
  w.sz(a.misr_bits);
  w.sz(a.state_bits);
}

BistArea get_area(ByteReader& r) {
  BistArea a;
  a.lfsr = r.f64();
  a.rom = r.f64();
  a.seed_rom = r.f64();
  a.controller = r.f64();
  a.mux = r.f64();
  a.misr = r.f64();
  a.rom_bits = r.sz();
  a.seed_rom_bits = r.sz();
  a.misr_bits = r.sz();
  a.state_bits = r.sz();
  return a;
}

void put_plan(ByteWriter& w, const BistPlan& p) {
  w.sz(p.point_index);
  w.sz(p.lfsr_patterns);
  w.sz(p.topoff_patterns);
  w.sz(p.test_time);
  w.sz(p.rom_bits);
  w.f64(p.cost);
  w.f64(p.knee_distance);
  put_area(w, p.area);
  w.f64(p.area_model.and2);
  w.f64(p.area_model.xor2);
  w.f64(p.area_model.not1);
  w.f64(p.area_model.buf1);
  w.f64(p.area_model.flipflop);
  w.u32(p.lfsr_degree);
  w.u64(p.lfsr_taps);
  w.u64(p.lfsr_seed);
  w.sz(p.width);
  w.sz(p.topoff.size());
  for (const BitVec& t : p.topoff) w.bitvec(t);
  put_comp(w, p.comp);
  w.f64(p.lfsr_coverage);
  w.f64(p.final_coverage);
  w.f64(p.final_coverage_weighted);
  w.b(p.degraded);
  w.sz(p.candidates.size());
  for (const SchedulePoint& c : p.candidates) {
    w.sz(c.point_index);
    w.sz(c.length);
    w.sz(c.topoff_patterns);
    w.sz(c.test_time);
    w.sz(c.rom_bits);
    w.sz(c.seed_rom_bits);
    w.sz(c.misr_bits);
    w.sz(c.fallback_rows);
    w.sz(c.area_bits);
    w.f64(c.cost);
    w.f64(c.knee_distance);
    w.b(c.within_budget);
    w.f64(c.final_coverage);
  }
}

BistPlan get_plan(ByteReader& r) {
  BistPlan p;
  p.point_index = r.sz();
  p.lfsr_patterns = r.sz();
  p.topoff_patterns = r.sz();
  p.test_time = r.sz();
  p.rom_bits = r.sz();
  p.cost = r.f64();
  p.knee_distance = r.f64();
  p.area = get_area(r);
  p.area_model.and2 = r.f64();
  p.area_model.xor2 = r.f64();
  p.area_model.not1 = r.f64();
  p.area_model.buf1 = r.f64();
  p.area_model.flipflop = r.f64();
  p.lfsr_degree = r.u32();
  p.lfsr_taps = r.u64();
  p.lfsr_seed = r.u64();
  p.width = r.sz();
  p.topoff.resize(r.count(8));
  for (auto& t : p.topoff) t = r.bitvec();
  p.comp = get_comp(r);
  p.lfsr_coverage = r.f64();
  p.final_coverage = r.f64();
  p.final_coverage_weighted = r.f64();
  p.degraded = r.b();
  p.candidates.resize(r.count(8 * 9 + 8 * 3 + 1));
  for (auto& c : p.candidates) {
    c.point_index = r.sz();
    c.length = r.sz();
    c.topoff_patterns = r.sz();
    c.test_time = r.sz();
    c.rom_bits = r.sz();
    c.seed_rom_bits = r.sz();
    c.misr_bits = r.sz();
    c.fallback_rows = r.sz();
    c.area_bits = r.sz();
    c.cost = r.f64();
    c.knee_distance = r.f64();
    c.within_budget = r.b();
    c.final_coverage = r.f64();
  }
  return p;
}

void put_verification(ByteWriter& w, const WrapperVerification& v) {
  w.b(v.lfsr_phase_identical);
  w.b(v.topoff_identical);
  w.b(v.coverage_identical);
  w.b(v.seeds_identical);
  w.b(v.signature_identical);
  w.sz(v.cycles);
  w.f64(v.achieved_coverage);
  w.f64(v.achieved_coverage_weighted);
  w.u64(v.misr_signature);
  w.sz(v.aliasing.detected_checked);
  w.sz(v.aliasing.escapes);
  w.f64(v.aliasing.bound);
  put_status(w, v.status);
}

WrapperVerification get_verification(ByteReader& r) {
  WrapperVerification v;
  v.lfsr_phase_identical = r.b();
  v.topoff_identical = r.b();
  v.coverage_identical = r.b();
  v.seeds_identical = r.b();
  v.signature_identical = r.b();
  v.cycles = r.sz();
  v.achieved_coverage = r.f64();
  v.achieved_coverage_weighted = r.f64();
  v.misr_signature = r.u64();
  v.aliasing.detected_checked = r.sz();
  v.aliasing.escapes = r.sz();
  v.aliasing.bound = r.f64();
  v.status = get_status(r);
  return v;
}

void put_report(ByteWriter& w, const JobReport& rep) {
  w.str(rep.name);
  put_status(w, rep.status);
  w.b(rep.degraded);
  w.b(rep.wrapper_ok);
  w.sz(rep.stages.size());
  for (const StageReport& s : rep.stages) {
    w.str(s.name);
    put_status(w, s.status);
    w.f64(s.seconds);
    w.u32(s.attempts);
    w.str(s.note);
  }
  put_sweep(w, rep.sweep);
  put_plan(w, rep.plan);
  put_verification(w, rep.verification);
  w.f64(rep.solve_seconds);
  w.str(rep.wrapper_bench);
  w.f64(rep.seconds);
  w.b(rep.cache.consulted);
  w.b(rep.cache.hit);
  w.b(rep.cache.stored);
  w.b(rep.cache.quarantined);
  w.b(rep.cache.manifest);
  w.str(rep.cache.note);
}

JobReport get_report(ByteReader& r) {
  JobReport rep;
  rep.name = r.str();
  rep.status = get_status(r);
  rep.degraded = r.b();
  rep.wrapper_ok = r.b();
  rep.stages.resize(r.count(1));
  for (auto& s : rep.stages) {
    s.name = r.str();
    s.status = get_status(r);
    s.seconds = r.f64();
    s.attempts = r.u32();
    s.note = r.str();
  }
  rep.sweep = get_sweep(r);
  rep.plan = get_plan(r);
  rep.verification = get_verification(r);
  rep.solve_seconds = r.f64();
  rep.wrapper_bench = r.str();
  rep.seconds = r.f64();
  rep.cache.consulted = r.b();
  rep.cache.hit = r.b();
  rep.cache.stored = r.b();
  rep.cache.quarantined = r.b();
  rep.cache.manifest = r.b();
  rep.cache.note = r.str();
  return rep;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> serialize_sweep(const MixedSweepResult& r) {
  ByteWriter w;
  put_sweep(w, r);
  return w.take();
}

MixedSweepResult deserialize_sweep(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  MixedSweepResult s = get_sweep(r);
  if (!r.done()) r.fail("trailing bytes");
  return s;
}

std::vector<std::uint8_t> serialize_job_report(const JobReport& r) {
  ByteWriter w;
  put_report(w, r);
  return w.take();
}

JobReport deserialize_job_report(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  JobReport rep = get_report(r);
  if (!r.done()) r.fail("trailing bytes");
  return rep;
}

void strip_volatile(JobReport& r) {
  r.seconds = 0;
  r.solve_seconds = 0;
  for (StageReport& s : r.stages) {
    s.seconds = 0;
    s.attempts = 1;
    s.note.clear();
  }
  r.cache = {};
  r.sweep.stats.lfsr_seconds = 0;
  r.sweep.stats.podem_seconds = 0;
  r.sweep.stats.compact_seconds = 0;
  r.sweep.stats.solve_seconds = 0;
  for (MixedSchemeResult& p : r.sweep.points) {
    p.lfsr_seconds = 0;
    p.podem_seconds = 0;
    p.compact_seconds = 0;
    p.solve_seconds = 0;
    p.comp.solve_seconds = 0;
  }
  r.plan.comp.solve_seconds = 0;
}

}  // namespace bist
