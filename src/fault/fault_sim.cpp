#include "fault/fault_sim.hpp"

#include <bit>
#include <numeric>
#include <stdexcept>

namespace bist {

FaultSimulator::FaultSimulator(const SimKernel& k) : k_(&k) {
  const auto all = enumerate_faults(k.netlist());
  total_faults_ = all.size();
  CollapsedFaults c = collapse_faults_sized(k.netlist(), all);
  faults_ = std::move(c.faults);
  weights_ = std::move(c.class_size);
  total_weight_ = std::accumulate(weights_.begin(), weights_.end(),
                                  std::uint64_t{0});
  init_scratch();
}

FaultSimulator::FaultSimulator(const SimKernel& k, std::vector<Fault> faults,
                               std::size_t total_faults,
                               std::vector<std::uint32_t> weights)
    : k_(&k), faults_(std::move(faults)), weights_(std::move(weights)),
      total_faults_(total_faults) {
  if (weights_.empty()) weights_.assign(faults_.size(), 1);
  if (weights_.size() != faults_.size())
    throw std::invalid_argument("FaultSimulator: weights/faults size mismatch");
  total_weight_ = std::accumulate(weights_.begin(), weights_.end(),
                                  std::uint64_t{0});
  init_scratch();
}

void FaultSimulator::init_scratch() {
  fval_.assign(k_->gate_count(), 0);
  touched_.assign(k_->gate_count(), 0);
  level_queues_.resize(k_->max_level() + 1);
  queued_.assign(k_->gate_count(), 0);
}

std::uint64_t FaultSimulator::propagate_fault(const Fault& f,
                                              const std::uint64_t* good,
                                              std::uint64_t lanes,
                                              std::uint64_t* evals) {
  const KIndex site = k_->index_of(f.gate);
  const std::uint64_t stuck_word = f.stuck ? ~std::uint64_t{0} : 0;
  const MicroOp* op = k_->op_data();
  const std::uint64_t* inv = k_->invert_data();
  const std::uint32_t* off = k_->fanin_offset_data();
  const KIndex* fi = k_->fanin_data();

  std::uint64_t site_val;
  if (f.is_output_fault()) {
    site_val = stuck_word;
  } else {
    // Branch fault: re-evaluate the site gate with the faulted pin forced.
    const std::uint32_t b = off[site];
    const std::uint32_t forced = b + static_cast<std::uint32_t>(f.pin);
    // Fanin order is preserved by the kernel renumbering, so pin j of the
    // netlist gate is slot b+j of the kernel CSR row.
    site_val = eval_reduce(op[site], inv[site], b, off[site + 1],
                           [&](std::uint32_t i) {
                             return i == forced ? stuck_word : good[fi[i]];
                           });
    ++*evals;
  }
  const std::uint64_t site_diff = (site_val ^ good[site]) & lanes;
  if (!site_diff) return 0;  // fault not activated by any lane

  std::uint64_t det = 0;
  fval_[site] = site_val;
  touched_[site] = 1;
  touched_list_.push_back(site);
  if (k_->is_output(site)) det |= site_diff;

  unsigned lo_level = k_->max_level() + 1;
  for (KIndex u : k_->fanouts(site)) {
    if (!queued_[u]) {
      queued_[u] = 1;
      level_queues_[k_->level(u)].push_back(u);
      lo_level = std::min(lo_level, k_->level(u));
    }
  }
  for (unsigned lv = lo_level; lv <= k_->max_level(); ++lv) {
    auto& q = level_queues_[lv];
    for (KIndex u : q) {
      queued_[u] = 0;
      const std::uint64_t v =
          eval_reduce(op[u], inv[u], off[u], off[u + 1], [&](std::uint32_t i) {
            const KIndex w = fi[i];
            return touched_[w] ? fval_[w] : good[w];
          });
      ++*evals;
      if (((v ^ good[u]) & lanes) == 0) continue;  // divergence dies here
      fval_[u] = v;
      touched_[u] = 1;
      touched_list_.push_back(u);
      if (k_->is_output(u)) det |= (v ^ good[u]) & lanes;
      for (KIndex w : k_->fanouts(u)) {
        if (!queued_[w]) {
          queued_[w] = 1;
          level_queues_[k_->level(w)].push_back(w);
        }
      }
    }
    q.clear();
  }

  for (KIndex u : touched_list_) touched_[u] = 0;
  touched_list_.clear();
  return det;
}

FaultSimResult FaultSimulator::run(std::span<const PatternBlock> blocks,
                                   const FaultSimOptions& opt) {
  FaultSimResult r;
  r.total_faults = total_faults_;
  r.sim_faults = faults_.size();
  r.total_weight = total_weight_;
  r.first_detected.assign(faults_.size(), -1);

  KernelSim good(*k_);
  std::vector<std::uint32_t> live(faults_.size());
  std::iota(live.begin(), live.end(), 0u);

  std::size_t base = 0;
  for (const PatternBlock& blk : blocks) {
    good.simulate(blk);
    const std::uint64_t lanes = blk.lane_mask();
    const std::uint64_t* gv = good.values().data();
    for (std::size_t i = 0; i < live.size();) {
      const std::uint32_t fidx = live[i];
      if (r.first_detected[fidx] >= 0) {
        // Already detected; with drop_detected off the fault stays in the
        // live list (stable indices) but propagating it again can yield no
        // new detection, so skip the work.
        ++i;
        continue;
      }
      const std::uint64_t det =
          propagate_fault(faults_[fidx], gv, lanes, &r.faulty_gate_evals);
      if (det) {
        r.first_detected[fidx] =
            static_cast<std::int64_t>(base) + std::countr_zero(det);
        ++r.detected;
        r.detected_weight += weights_[fidx];
        if (opt.drop_detected) {
          live[i] = live.back();
          live.pop_back();
          continue;
        }
      }
      ++i;
    }
    base += blk.count;
  }
  r.patterns = base;

  std::vector<std::uint32_t> hits(r.patterns, 0);
  std::vector<std::uint64_t> hit_weight(r.patterns, 0);
  for (std::size_t f = 0; f < r.first_detected.size(); ++f) {
    const std::int64_t fd = r.first_detected[f];
    if (fd >= 0) {
      ++hits[static_cast<std::size_t>(fd)];
      hit_weight[static_cast<std::size_t>(fd)] += weights_[f];
    }
  }
  r.coverage.assign(r.patterns, 0.0);
  r.coverage_weighted.assign(r.patterns, 0.0);
  std::size_t running = 0;
  std::uint64_t running_w = 0;
  for (std::size_t p = 0; p < r.patterns; ++p) {
    running += hits[p];
    running_w += hit_weight[p];
    r.coverage[p] = r.sim_faults ? double(running) / double(r.sim_faults) : 0.0;
    r.coverage_weighted[p] =
        r.total_weight ? double(running_w) / double(r.total_weight) : 0.0;
  }
  return r;
}

}  // namespace bist
