#include "fault/fault_sim.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

#include "util/parallel.hpp"

namespace bist {
namespace {

// One cleared queue per level, each reserved to the gate count at that
// level, so the event-driven propagation loops never reallocate.
void reserve_level_queues(const SimKernel& k,
                          std::vector<std::vector<KIndex>>& queues) {
  queues.resize(k.max_level() + 1);
  std::vector<std::uint32_t> per_level(k.max_level() + 1, 0);
  const std::uint32_t* lvl = k.level_data();
  for (std::size_t g = 0; g < k.gate_count(); ++g) ++per_level[lvl[g]];
  for (unsigned lv = 0; lv <= k.max_level(); ++lv) {
    queues[lv].clear();
    queues[lv].reserve(per_level[lv]);
  }
}

// Per-worker event-driven propagation scratch (kernel-index space), reset
// via touched_list after each stem.  Capacities are reserved up front so
// the hot loops never reallocate.
template <unsigned W>
struct FfrScratch {
  using Word = SimWord<W>;
  std::vector<Word> fval;
  std::vector<char> touched;
  std::vector<KIndex> touched_list;
  std::vector<std::vector<KIndex>> level_queues;
  std::vector<char> queued;
  /// Per-fault stem words of the group being processed, indexed by position
  /// in the group's live list (worker-local: stem words never cross the
  /// worker/reduction boundary, unlike the shared det slots).
  std::vector<Word> stem_words;
  /// Faulty-gate evaluations this worker performed, reduced serially after
  /// the run.  Lives in the (large) per-worker scratch object rather than a
  /// shared dense array so the per-chunk flush does not bounce one cache
  /// line between all workers.
  std::uint64_t evals = 0;

  void init(const SimKernel& k) {
    const std::size_t cnt = k.gate_count();
    fval.assign(cnt, w_zero<Word>());
    touched.assign(cnt, 0);
    touched_list.clear();
    touched_list.reserve(cnt);
    queued.assign(cnt, 0);
    reserve_level_queues(k, level_queues);
  }
};

// Stem word of fault f: the lanes (within `lanes`) on which f flips its FFR
// stem root's output.  The walk from the site to the stem follows unique
// fanouts — one gate re-evaluation per step — and stops early when the
// divergence dies inside the region.
template <unsigned W>
SimWord<W> local_stem_word(const SimKernel& k, const Fault& f,
                           const SimWord<W>* good, SimWord<W> lanes,
                           std::uint64_t* evals) {
  using Word = SimWord<W>;
  const KIndex site = k.index_of(f.gate);
  const Word stuck_word = w_broadcast<Word>(f.stuck ? ~std::uint64_t{0} : 0);
  const MicroOp* op = k.op_data();
  const std::uint64_t* inv = k.invert_data();
  const std::uint32_t* off = k.fanin_offset_data();
  const KIndex* fi = k.fanin_data();

  Word val;
  if (f.is_output_fault()) {
    val = stuck_word;
  } else {
    // Branch fault: re-evaluate the site gate with the faulted pin forced.
    // Fanin order is preserved by the kernel renumbering, so pin j of the
    // netlist gate is slot b+j of the kernel CSR row.
    const std::uint32_t b = off[site];
    const std::uint32_t forced = b + static_cast<std::uint32_t>(f.pin);
    val = eval_reduce(op[site], inv[site], b, off[site + 1],
                      [&](std::uint32_t i) {
                        return i == forced ? stuck_word : good[fi[i]];
                      });
    ++*evals;
  }
  Word diff = (val ^ good[site]) & lanes;

  const KIndex stem = k.stem_of(site);
  const std::uint32_t* fo_off = k.fanout_offset_data();
  const KIndex* fo = k.fanout_data();
  KIndex cur = site;
  while (cur != stem && w_any(diff)) {
    const KIndex next = fo[fo_off[cur]];  // unique fanout inside the FFR
    val = eval_reduce(op[next], inv[next], off[next], off[next + 1],
                      [&](std::uint32_t i) {
                        return fi[i] == cur ? val : good[fi[i]];
                      });
    ++*evals;
    diff = (val ^ good[next]) & lanes;
    cur = next;
  }
  return diff;
}

// One event-driven cone propagation from `stem` for a flip word `diff`
// (subset of `lanes`): returns the lanes on which the stem flip reaches a
// primary output.  Lanes are independent in 2-valued simulation, so the
// result is exact per lane even when `diff` ORs several faults' stem words.
template <unsigned W>
SimWord<W> propagate_stem(const SimKernel& k, KIndex stem, SimWord<W> diff,
                          const SimWord<W>* good, SimWord<W> lanes,
                          FfrScratch<W>& s, std::uint64_t* evals) {
  using Word = SimWord<W>;
  const MicroOp* op = k.op_data();
  const std::uint64_t* inv = k.invert_data();
  const std::uint32_t* off = k.fanin_offset_data();
  const KIndex* fi = k.fanin_data();
  const std::uint32_t* fo_off = k.fanout_offset_data();
  const KIndex* fo = k.fanout_data();
  const std::uint32_t* lvl = k.level_data();
  const char* is_out = k.is_output_data();
  const unsigned max_lv = k.max_level();

  Word det = w_zero<Word>();
  s.fval[stem] = good[stem] ^ diff;
  s.touched[stem] = 1;
  s.touched_list.push_back(stem);
  if (is_out[stem]) det = diff;

  unsigned lo_level = max_lv + 1;
  for (std::uint32_t i = fo_off[stem]; i < fo_off[stem + 1]; ++i) {
    const KIndex u = fo[i];
    if (!s.queued[u]) {
      s.queued[u] = 1;
      s.level_queues[lvl[u]].push_back(u);
      lo_level = std::min(lo_level, static_cast<unsigned>(lvl[u]));
    }
  }
  for (unsigned lq = lo_level; lq <= max_lv; ++lq) {
    auto& q = s.level_queues[lq];
    for (const KIndex u : q) {
      s.queued[u] = 0;
      const Word v = eval_reduce(op[u], inv[u], off[u], off[u + 1],
                                 [&](std::uint32_t i) {
                                   const KIndex w = fi[i];
                                   return s.touched[w] ? s.fval[w] : good[w];
                                 });
      ++*evals;
      const Word d = (v ^ good[u]) & lanes;
      if (!w_any(d)) continue;  // divergence dies here
      s.fval[u] = v;
      s.touched[u] = 1;
      s.touched_list.push_back(u);
      if (is_out[u]) det |= d;
      for (std::uint32_t i = fo_off[u]; i < fo_off[u + 1]; ++i) {
        const KIndex w = fo[i];
        if (!s.queued[w]) {
          s.queued[w] = 1;
          s.level_queues[lvl[w]].push_back(w);
        }
      }
    }
    q.clear();
  }
  for (const KIndex u : s.touched_list) s.touched[u] = 0;
  s.touched_list.clear();
  return det;
}

}  // namespace

std::vector<std::uint32_t> FaultSimResult::tail_at(std::size_t length) const {
  std::vector<std::uint32_t> tail;
  for (std::size_t i = 0; i < first_detected.size(); ++i) {
    const std::int64_t fd = first_detected[i];
    if (fd < 0 || fd >= static_cast<std::int64_t>(length))
      tail.push_back(static_cast<std::uint32_t>(i));
  }
  return tail;
}

std::size_t FaultSimResult::detected_at(std::size_t length) const {
  std::size_t n = 0;
  for (const std::int64_t fd : first_detected)
    if (fd >= 0 && fd < static_cast<std::int64_t>(length)) ++n;
  return n;
}

FaultSimResult FaultSimulator::prefix_result(const FaultSimResult& full,
                                             std::size_t length) const {
  if (full.first_detected.size() != faults_.size())
    throw std::invalid_argument("prefix_result: fault list mismatch");
  FaultSimResult r;
  // Lengths beyond the run clamp to the run (the full result *is* the prefix
  // at any longer length); length 0 degenerates to the empty-prefix result.
  // Exception: when `full` itself stopped early (deadline/cancel), a longer
  // length is NOT answered by the truncated run — the clamped data is still
  // returned, but the stop status is propagated so the caller can tell.
  if (length > full.patterns && !full.status.ok()) r.status = full.status;
  length = std::min(length, full.patterns);
  r.total_faults = full.total_faults;
  r.sim_faults = full.sim_faults;
  r.total_weight = full.total_weight;
  r.patterns = length;
  r.threads = full.threads;
  r.word_width = full.word_width;
  r.faulty_gate_evals = full.faulty_gate_evals;
  r.first_detected = full.first_detected;
  for (std::size_t f = 0; f < r.first_detected.size(); ++f) {
    std::int64_t& fd = r.first_detected[f];
    if (fd >= static_cast<std::int64_t>(length)) {
      fd = -1;
    } else if (fd >= 0) {
      ++r.detected;
      r.detected_weight += weights_[f];
    }
  }
  // The curves are running sums in pattern order, so the prefix of the full
  // curve is the shorter run's curve down to the last double bit.
  r.coverage.assign(full.coverage.begin(), full.coverage.begin() + length);
  r.coverage_weighted.assign(full.coverage_weighted.begin(),
                             full.coverage_weighted.begin() + length);
  return r;
}

FaultSimulator::FaultSimulator(const SimKernel& k) : k_(&k) {
  const auto all = enumerate_faults(k.netlist());
  total_faults_ = all.size();
  CollapsedFaults c = collapse_faults_sized(k.netlist(), all);
  faults_ = std::move(c.faults);
  weights_ = std::move(c.class_size);
  total_weight_ = std::accumulate(weights_.begin(), weights_.end(),
                                  std::uint64_t{0});
  init_scratch();
  build_stem_groups();
}

FaultSimulator::FaultSimulator(const SimKernel& k, std::vector<Fault> faults,
                               std::size_t total_faults,
                               std::vector<std::uint32_t> weights)
    : k_(&k), faults_(std::move(faults)), weights_(std::move(weights)),
      total_faults_(total_faults) {
  if (weights_.empty()) weights_.assign(faults_.size(), 1);
  if (weights_.size() != faults_.size())
    throw std::invalid_argument("FaultSimulator: weights/faults size mismatch");
  total_weight_ = std::accumulate(weights_.begin(), weights_.end(),
                                  std::uint64_t{0});
  init_scratch();
  build_stem_groups();
}

FaultSimulator::~FaultSimulator() = default;

void FaultSimulator::init_scratch() {
  const std::size_t cnt = k_->gate_count();
  fval_.assign(cnt, 0);
  touched_.assign(cnt, 0);
  touched_list_.reserve(cnt);
  queued_.assign(cnt, 0);
  reserve_level_queues(*k_, level_queues_);
}

void FaultSimulator::build_stem_groups() {
  // Bucket sim faults by the stem ordinal of their site gate; only non-empty
  // groups are kept, in stem level order, faults in list order within each.
  const std::size_t nstems = k_->stem_count();
  std::vector<std::uint32_t> count(nstems, 0);
  std::vector<std::uint32_t> ord(faults_.size());
  for (std::size_t f = 0; f < faults_.size(); ++f) {
    ord[f] = k_->stem_ordinal(k_->index_of(faults_[f].gate));
    ++count[ord[f]];
  }
  std::vector<std::uint32_t> group_of(nstems, 0);
  group_stem_.clear();
  group_offset_.assign(1, 0);
  for (std::uint32_t s = 0; s < nstems; ++s) {
    if (!count[s]) continue;
    group_of[s] = static_cast<std::uint32_t>(group_stem_.size());
    group_stem_.push_back(k_->stems()[s]);
    group_offset_.push_back(group_offset_.back() + count[s]);
  }
  group_faults_.assign(faults_.size(), 0);
  std::vector<std::uint32_t> cur(group_offset_.begin(), group_offset_.end() - 1);
  for (std::size_t f = 0; f < faults_.size(); ++f)
    group_faults_[cur[group_of[ord[f]]]++] = static_cast<std::uint32_t>(f);
}

std::uint64_t FaultSimulator::propagate_fault(const Fault& f,
                                              const std::uint64_t* good,
                                              std::uint64_t lanes,
                                              std::uint64_t* evals,
                                              std::uint64_t* po_diffs) {
  const KIndex site = k_->index_of(f.gate);
  const std::uint64_t stuck_word = f.stuck ? ~std::uint64_t{0} : 0;
  const MicroOp* op = k_->op_data();
  const std::uint64_t* inv = k_->invert_data();
  const std::uint32_t* off = k_->fanin_offset_data();
  const KIndex* fi = k_->fanin_data();
  const std::uint32_t* fo_off = k_->fanout_offset_data();
  const KIndex* fo = k_->fanout_data();
  const std::uint32_t* lvl = k_->level_data();
  const char* is_out = k_->is_output_data();
  const unsigned max_lv = k_->max_level();

  std::uint64_t site_val;
  if (f.is_output_fault()) {
    site_val = stuck_word;
  } else {
    // Branch fault: re-evaluate the site gate with the faulted pin forced.
    const std::uint32_t b = off[site];
    const std::uint32_t forced = b + static_cast<std::uint32_t>(f.pin);
    // Fanin order is preserved by the kernel renumbering, so pin j of the
    // netlist gate is slot b+j of the kernel CSR row.
    site_val = eval_reduce(op[site], inv[site], b, off[site + 1],
                           [&](std::uint32_t i) {
                             return i == forced ? stuck_word : good[fi[i]];
                           });
    ++*evals;
  }
  const std::size_t n_outs = k_->outputs().size();
  if (po_diffs)
    for (std::size_t i = 0; i < n_outs; ++i) po_diffs[i] = 0;
  const std::uint64_t site_diff = (site_val ^ good[site]) & lanes;
  if (!site_diff) return 0;  // fault not activated by any lane

  std::uint64_t det = 0;
  fval_[site] = site_val;
  touched_[site] = 1;
  touched_list_.push_back(site);
  if (is_out[site]) det |= site_diff;

  unsigned lo_level = max_lv + 1;
  for (std::uint32_t i = fo_off[site]; i < fo_off[site + 1]; ++i) {
    const KIndex u = fo[i];
    if (!queued_[u]) {
      queued_[u] = 1;
      level_queues_[lvl[u]].push_back(u);
      lo_level = std::min(lo_level, static_cast<unsigned>(lvl[u]));
    }
  }
  for (unsigned lq = lo_level; lq <= max_lv; ++lq) {
    auto& q = level_queues_[lq];
    for (const KIndex u : q) {
      queued_[u] = 0;
      const std::uint64_t v =
          eval_reduce(op[u], inv[u], off[u], off[u + 1], [&](std::uint32_t i) {
            const KIndex w = fi[i];
            return touched_[w] ? fval_[w] : good[w];
          });
      ++*evals;
      if (((v ^ good[u]) & lanes) == 0) continue;  // divergence dies here
      fval_[u] = v;
      touched_[u] = 1;
      touched_list_.push_back(u);
      if (is_out[u]) det |= (v ^ good[u]) & lanes;
      for (std::uint32_t i = fo_off[u]; i < fo_off[u + 1]; ++i) {
        const KIndex w = fo[i];
        if (!queued_[w]) {
          queued_[w] = 1;
          level_queues_[lvl[w]].push_back(w);
        }
      }
    }
    q.clear();
  }

  if (po_diffs) {
    const auto outs = k_->outputs();
    for (std::size_t i = 0; i < n_outs; ++i) {
      const KIndex o = outs[i];
      if (touched_[o]) po_diffs[i] = (fval_[o] ^ good[o]) & lanes;
    }
  }
  for (const KIndex u : touched_list_) touched_[u] = 0;
  touched_list_.clear();
  return det;
}

void FaultSimulator::finalize_curves(FaultSimResult& r) const {
  std::vector<std::uint32_t> hits(r.patterns, 0);
  std::vector<std::uint64_t> hit_weight(r.patterns, 0);
  for (std::size_t f = 0; f < r.first_detected.size(); ++f) {
    const std::int64_t fd = r.first_detected[f];
    if (fd >= 0) {
      ++hits[static_cast<std::size_t>(fd)];
      hit_weight[static_cast<std::size_t>(fd)] += weights_[f];
    }
  }
  r.coverage.assign(r.patterns, 0.0);
  r.coverage_weighted.assign(r.patterns, 0.0);
  std::size_t running = 0;
  std::uint64_t running_w = 0;
  for (std::size_t p = 0; p < r.patterns; ++p) {
    running += hits[p];
    running_w += hit_weight[p];
    r.coverage[p] = r.sim_faults ? double(running) / double(r.sim_faults) : 0.0;
    r.coverage_weighted[p] =
        r.total_weight ? double(running_w) / double(r.total_weight) : 0.0;
  }
}

FaultSimResult FaultSimulator::run(std::span<const PatternBlock> blocks,
                                   const FaultSimOptions& opt) {
  if (!opt.ffr) return run_legacy(blocks, opt);
#if BIST_WIDE_WORDS
  if (opt.word_width == kMaxWordWidth) return run_ffr<kMaxWordWidth>(blocks, opt);
#endif
  return run_ffr<1>(blocks, opt);
}

FaultSimResult FaultSimulator::run_legacy(std::span<const PatternBlock> blocks,
                                          const FaultSimOptions& opt) {
  FaultSimResult r;
  r.total_faults = total_faults_;
  r.sim_faults = faults_.size();
  r.total_weight = total_weight_;
  r.first_detected.assign(faults_.size(), -1);

  KernelSim good(*k_);
  std::vector<std::uint32_t> live(faults_.size());
  std::iota(live.begin(), live.end(), 0u);

  std::size_t base = 0;
  for (const PatternBlock& blk : blocks) {
    if (opt.deadline && opt.deadline->should_stop()) {
      r.status = opt.deadline->stop_status("fault_sim");
      break;  // r describes the base-pattern prefix that did run, exactly
    }
    good.simulate(blk);
    const std::uint64_t lanes = blk.lane_mask();
    const std::uint64_t* gv = good.values().data();
    for (std::size_t i = 0; i < live.size();) {
      const std::uint32_t fidx = live[i];
      if (r.first_detected[fidx] >= 0) {
        // Already detected; with drop_detected off the fault stays in the
        // live list (stable indices) but propagating it again can yield no
        // new detection, so skip the work.
        ++i;
        continue;
      }
      const std::uint64_t det =
          propagate_fault(faults_[fidx], gv, lanes, &r.faulty_gate_evals);
      if (det) {
        r.first_detected[fidx] =
            static_cast<std::int64_t>(base) + std::countr_zero(det);
        ++r.detected;
        r.detected_weight += weights_[fidx];
        if (opt.drop_detected) {
          live[i] = live.back();
          live.pop_back();
          continue;
        }
      }
      ++i;
    }
    base += blk.count;
  }
  r.patterns = base;
  finalize_curves(r);
  return r;
}

template <unsigned W>
FaultSimResult FaultSimulator::run_ffr(std::span<const PatternBlock> blocks,
                                       const FaultSimOptions& opt) {
  using Word = SimWord<W>;
  FaultSimResult r;
  r.total_faults = total_faults_;
  r.sim_faults = faults_.size();
  r.total_weight = total_weight_;
  r.first_detected.assign(faults_.size(), -1);
  r.word_width = W;

  const unsigned workers = resolve_threads(opt.threads);
  if (!pool_ || pool_->workers() != workers)
    pool_ = std::make_unique<WorkerPool>(workers);
  WorkerPool& pool = *pool_;
  r.threads = pool.workers();

  // Live fault lists per stem group; dropping shrinks a group in place.
  const std::size_t ngroups = group_stem_.size();
  std::vector<std::vector<std::uint32_t>> live(ngroups);
  for (std::size_t g = 0; g < ngroups; ++g)
    live[g].assign(group_faults_.begin() + group_offset_[g],
                   group_faults_.begin() + group_offset_[g + 1]);

  WideSimT<W> good(*k_);
  std::size_t max_group = 0;
  for (std::size_t g = 0; g < ngroups; ++g)
    max_group = std::max<std::size_t>(max_group,
                                      group_offset_[g + 1] - group_offset_[g]);
  std::vector<FfrScratch<W>> scratch(pool.workers());
  for (auto& s : scratch) {
    s.init(*k_);
    s.stem_words.assign(max_group, w_zero<Word>());
  }
  // Per-fault detection slots, written by the owning worker only (each fault
  // lives in exactly one stem group), read in the serial reduction.
  std::vector<Word> det(faults_.size(), w_zero<Word>());

  std::size_t base = 0;
  std::size_t bi = 0;
  while (bi < blocks.size()) {
    // One cooperative check per block group: stop latency is bounded by a
    // single group's good-machine + stem-stage cost, and the check touches
    // nothing the detection math depends on, so a stopped run is the exact
    // prefix of an uninterrupted one.
    if (opt.deadline && opt.deadline->should_stop()) {
      r.status = opt.deadline->stop_status("fault_sim");
      break;
    }
    const std::size_t nb = WideSimT<W>::group_size(blocks, bi);
    const std::span<const PatternBlock> grp = blocks.subspan(bi, nb);
    std::size_t grp_patterns = 0;
    for (const PatternBlock& b : grp) grp_patterns += b.count;

    if (r.detected == faults_.size()) {  // nothing left to detect
      base += grp_patterns;
      bi += nb;
      continue;
    }

    // Good-machine pass, wide levels split across the same pool the stem
    // stage uses (strictly before the stem parallel_for — the pool is not
    // reentrant).  Values are bit-identical to the serial pass, so every
    // downstream detection result is unchanged.
    good.simulate(grp, &pool);
    const Word lanes = WideSimT<W>::group_lane_mask(grp);
    const Word* gv = good.values().data();

    // Dynamic grain-1 chunking: stem-group cost is skewed (cone size varies
    // by orders of magnitude), so workers pull one group at a time.
    parallel_for(pool, ngroups, 1,
                 [&](unsigned wid, std::size_t gb, std::size_t ge) {
      FfrScratch<W>& s = scratch[wid];
      std::uint64_t ev = 0;
      for (std::size_t g = gb; g < ge; ++g) {
        const auto& lf = live[g];
        if (lf.empty()) continue;
        Word acc = w_zero<Word>();
        for (std::size_t i = 0; i < lf.size(); ++i) {
          const std::uint32_t fidx = lf[i];
          if (r.first_detected[fidx] >= 0) {  // kept live with dropping off
            s.stem_words[i] = w_zero<Word>();
            continue;
          }
          const Word sw =
              local_stem_word<W>(*k_, faults_[fidx], gv, lanes, &ev);
          s.stem_words[i] = sw;
          acc |= sw;
        }
        if (!w_any(acc)) continue;  // every fault died inside the region
        const Word obs =
            propagate_stem<W>(*k_, group_stem_[g], acc, gv, lanes, s, &ev);
        if (!w_any(obs)) continue;
        for (std::size_t i = 0; i < lf.size(); ++i)
          det[lf[i]] = s.stem_words[i] & obs;
      }
      s.evals += ev;
    });

    // Serial reduction: per-fault results are independent, so visiting them
    // in any fixed order yields identical counts/curves for every worker
    // count and work assignment.
    for (std::size_t g = 0; g < ngroups; ++g) {
      auto& lf = live[g];
      for (std::size_t i = 0; i < lf.size();) {
        const std::uint32_t fidx = lf[i];
        const Word d = det[fidx];
        det[fidx] = w_zero<Word>();
        if (w_any(d) && r.first_detected[fidx] < 0) {
          r.first_detected[fidx] =
              static_cast<std::int64_t>(base) + w_first_lane(d);
          ++r.detected;
          r.detected_weight += weights_[fidx];
          if (opt.drop_detected) {
            lf[i] = lf.back();
            lf.pop_back();
            continue;
          }
        }
        ++i;
      }
    }
    base += grp_patterns;
    bi += nb;
  }
  r.patterns = base;
  for (const FfrScratch<W>& s : scratch) r.faulty_gate_evals += s.evals;
  finalize_curves(r);
  return r;
}

}  // namespace bist
