#pragma once
// PPSFP (parallel-pattern single-fault propagation) stuck-at fault simulator.
//
// For each 64-pattern block the good machine is evaluated once on the
// SimKernel; then each live fault is injected at its site word and the
// divergence is propagated event-driven through the site's fanout cone in
// level order (the same levelized scheme as TernarySim, but on 64-bit
// pattern words).  A fault whose faulty word differs from the good word at
// any primary output lane is detected; detected faults are dropped from the
// live list so the per-block cost shrinks as coverage accumulates — the
// standard shape of an LFSR coverage-curve computation.

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "sim/kernel.hpp"

namespace bist {

struct FaultSimOptions {
  bool drop_detected = true;  ///< stop simulating a fault once detected
};

struct FaultSimResult {
  std::size_t total_faults = 0;  ///< uncollapsed fault list size
  std::size_t sim_faults = 0;    ///< simulated (collapsed) fault list size
  std::size_t detected = 0;
  std::size_t patterns = 0;
  /// Per simulated fault: index of the first detecting pattern, -1 undetected.
  std::vector<std::int64_t> first_detected;
  /// Per pattern: fraction of simulated faults detected by patterns [0..p].
  /// Monotone non-decreasing by construction.
  std::vector<double> coverage;
  /// Faulty-machine gate evaluations performed (cone-limited work measure).
  std::uint64_t faulty_gate_evals = 0;

  double final_coverage() const { return coverage.empty() ? 0.0 : coverage.back(); }
};

class FaultSimulator {
 public:
  /// Enumerates and collapses the stuck-at fault list of k.netlist().
  /// The kernel must outlive the simulator.
  explicit FaultSimulator(const SimKernel& k);

  /// Simulate an explicit (already collapsed) fault list; `total_faults` is
  /// the size of the uncollapsed list it came from (reported in results).
  FaultSimulator(const SimKernel& k, std::vector<Fault> faults,
                 std::size_t total_faults);

  std::span<const Fault> faults() const { return faults_; }

  /// Run over the pattern blocks with fault dropping; fills the coverage
  /// curve.  Repeatable: each call starts from the full fault list.
  FaultSimResult run(std::span<const PatternBlock> blocks,
                     const FaultSimOptions& opt = {});

 private:
  std::uint64_t propagate_fault(const Fault& f, const std::uint64_t* good,
                                std::uint64_t lanes, std::uint64_t* evals);

  const SimKernel* k_;
  std::vector<Fault> faults_;
  std::size_t total_faults_ = 0;

  // Per-fault propagation scratch in kernel-index space, reset via
  // touched_list_ after each fault.
  std::vector<std::uint64_t> fval_;
  std::vector<char> touched_;
  std::vector<KIndex> touched_list_;
  std::vector<std::vector<KIndex>> level_queues_;
  std::vector<char> queued_;
};

}  // namespace bist
