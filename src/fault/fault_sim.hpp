#pragma once
// PPSFP (parallel-pattern single-fault propagation) stuck-at fault simulator,
// rebuilt as a parallel FFR-aware engine.
//
// For each pattern group the good machine is evaluated once on the
// SimKernel; then fault effects are propagated in two stages that exploit
// the kernel's fanout-free-region decomposition:
//
//   local stage   every live fault is walked from its site to its FFR stem
//                 root — a unique single-fanout path, one gate re-evaluation
//                 per step — yielding the *stem word*: the pattern lanes on
//                 which the fault flips the stem output.  Faults whose
//                 effect dies inside the region never touch the global event
//                 queues.
//   stem stage    per stem with any live activated fault, ONE event-driven
//                 cone propagation is run for the OR of its faults' stem
//                 words.  Lanes are independent in 2-valued simulation, so
//                 the resulting observability word D (lanes where a stem
//                 flip reaches a primary output) is exact per lane, and each
//                 fault's detection word is just stem_word & D.  All faults
//                 sharing a stem share that one propagation.
//
// The stem groups are split across a persistent WorkerPool: workers pull
// stem groups off an atomic cursor, each with its own propagation scratch,
// sharing the read-only good-machine values.  Per-fault results land in
// disjoint slots and are reduced serially in fixed fault order afterwards,
// so first-detection indices, coverage curves, and eval counters are
// bit-identical for every thread count.
//
// Pattern words are SimWord<W> (W x 64 lanes, W = 1 or 4): the engine
// consumes W consecutive 64-lane PatternBlocks per pass, keeping the narrow
// block ABI while letting the 256-bit path auto-vectorize.  Detection
// results are lane-exact, hence identical across widths too.
//
// Coverage is reported under both accounting conventions: the collapsed
// convention (each representative counts as one fault) and the
// total-enumerated convention (each representative weighted by its
// equivalence-class size, denominator = uncollapsed fault count).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "sim/kernel.hpp"
#include "util/deadline.hpp"

namespace bist {

class WorkerPool;

struct FaultSimOptions {
  bool drop_detected = true;  ///< stop simulating a fault once detected
  /// Worker count for the stem-group partition; 0 = hardware_concurrency.
  unsigned threads = 1;
  /// Pattern word width in 64-lane units (1 or kMaxWordWidth); unsupported
  /// widths clamp to 1.
  unsigned word_width = 1;
  /// FFR stem-sharing engine (the default).  false selects the legacy
  /// per-fault full-cone propagation path — single-threaded, 64-lane — kept
  /// as the differential-testing reference.
  bool ffr = true;
  /// Cooperative deadline/cancel, polled once per pattern-block group (so
  /// stop latency is bounded by one group's propagation cost).  A run that
  /// stops early returns the exact prefix result of the blocks it finished
  /// — bit-identical to an uninterrupted run over those patterns — with
  /// result.status recording why it stopped.  nullptr = never stops.
  const Deadline* deadline = nullptr;
};

struct FaultSimResult {
  std::size_t total_faults = 0;  ///< uncollapsed fault list size
  std::size_t sim_faults = 0;    ///< simulated (collapsed) fault list size
  std::size_t detected = 0;
  std::uint64_t detected_weight = 0;  ///< class-size-weighted detected count
  std::uint64_t total_weight = 0;     ///< sum of class sizes (== total_faults
                                      ///< when the list came from collapsing)
  std::size_t patterns = 0;  ///< patterns actually simulated (may be short
                             ///< of the request when status is not Ok)
  /// Ok for a full run; DeadlineExceeded/Cancelled when a cooperative check
  /// stopped the pass early, in which case every field describes the
  /// `patterns`-long prefix that DID run, bit-identically.
  StageStatus status;
  unsigned threads = 1;     ///< resolved worker count the run used
  unsigned word_width = 1;  ///< resolved pattern word width (64-lane units)
  /// Per simulated fault: index of the first detecting pattern, -1 undetected.
  std::vector<std::int64_t> first_detected;
  /// Per pattern: fraction of simulated faults detected by patterns [0..p].
  /// Monotone non-decreasing by construction.
  std::vector<double> coverage;
  /// Same curve weighted by equivalence-class size over total_weight — the
  /// total-enumerated-fault convention.
  std::vector<double> coverage_weighted;
  /// Faulty-machine gate evaluations performed (cone-limited work measure).
  /// Deterministic per (engine, word_width); independent of thread count.
  std::uint64_t faulty_gate_evals = 0;

  double final_coverage() const { return coverage.empty() ? 0.0 : coverage.back(); }
  double final_coverage_weighted() const {
    return coverage_weighted.empty() ? 0.0 : coverage_weighted.back();
  }

  // --- Prefix views (the mixed-scheme sweep substrate) ---------------------
  // first_detected is invariant under drop_detected and records the *first*
  // detecting pattern, so a run over the first L patterns of the same stream
  // is fully determined by this result: detected-within-L iff
  // 0 <= first_detected < L.  These helpers read that prefix directly,
  // letting one max-length pass answer every shorter candidate length
  // without re-simulating.

  /// Sim-fault indices NOT detected within the first `length` patterns
  /// (first_detected >= length or undetected), ascending — exactly the
  /// LFSR-resistant tail the mixed scheme's top-off phase would see after a
  /// pseudo-random phase of `length` patterns.  Well-defined at every
  /// length: 0 yields every simulated fault, anything >= patterns yields the
  /// run's final undetected set.
  std::vector<std::uint32_t> tail_at(std::size_t length) const;
  /// Number of simulated faults detected within the first `length` patterns
  /// (0 at length 0; the run's detected count at any length >= patterns).
  std::size_t detected_at(std::size_t length) const;
};

class FaultSimulator {
 public:
  /// Enumerates and collapses the stuck-at fault list of k.netlist().
  /// The kernel must outlive the simulator.
  explicit FaultSimulator(const SimKernel& k);

  /// Simulate an explicit (already collapsed) fault list; `total_faults` is
  /// the size of the uncollapsed list it came from (reported in results).
  /// `weights` optionally gives each fault's equivalence-class size (empty =
  /// weight 1 each).
  FaultSimulator(const SimKernel& k, std::vector<Fault> faults,
                 std::size_t total_faults,
                 std::vector<std::uint32_t> weights = {});
  ~FaultSimulator();

  std::span<const Fault> faults() const { return faults_; }
  std::span<const std::uint32_t> weights() const { return weights_; }

  /// Run over the pattern blocks with fault dropping; fills the coverage
  /// curves.  Repeatable: each call starts from the full fault list.
  /// Detection results (first_detected, curves, weights) are bit-identical
  /// across every (threads, word_width, ffr) combination.
  FaultSimResult run(std::span<const PatternBlock> blocks,
                     const FaultSimOptions& opt = {});

  /// Restriction of `full` (a result of run() on this simulator) to its
  /// first `length` patterns: bit-identical — including the coverage-curve
  /// doubles, which are running sums in pattern order — to what run() over
  /// only those patterns would have produced, derived without re-simulating.
  /// Exception: faulty_gate_evals is carried over unchanged from `full`
  /// (the work measure of the pass actually executed, not of a hypothetical
  /// shorter one).  Requires a `full` whose fault list matches this
  /// simulator's; `length` is clamped to full.patterns (so length 0 gives
  /// the empty-prefix result and any longer length gives the full run back).
  FaultSimResult prefix_result(const FaultSimResult& full,
                               std::size_t length) const;

  /// Lanes of `good_values` (a KernelSim values() array for the current
  /// block, kernel-index space) on which fault f is detected at some primary
  /// output.  Building block for pattern verification and static compaction.
  std::uint64_t detect_lanes(const Fault& f,
                             std::span<const std::uint64_t> good_values,
                             std::uint64_t lane_mask) {
    std::uint64_t evals = 0;
    return propagate_fault(f, good_values.data(), lane_mask, &evals);
  }

  /// detect_lanes plus the per-primary-output difference words: diffs[i]
  /// (PO order, size >= output count) gets the lanes on which fault f flips
  /// output i.  Building block of the MISR aliasing audit (bist/compress),
  /// which needs *where* a fault is observed, not just whether.
  std::uint64_t output_diffs(const Fault& f,
                             std::span<const std::uint64_t> good_values,
                             std::uint64_t lane_mask,
                             std::span<std::uint64_t> diffs) {
    std::uint64_t evals = 0;
    return propagate_fault(f, good_values.data(), lane_mask, &evals,
                           diffs.data());
  }

 private:
  std::uint64_t propagate_fault(const Fault& f, const std::uint64_t* good,
                                std::uint64_t lanes, std::uint64_t* evals,
                                std::uint64_t* po_diffs = nullptr);
  void init_scratch();
  void build_stem_groups();
  FaultSimResult run_legacy(std::span<const PatternBlock> blocks,
                            const FaultSimOptions& opt);
  template <unsigned W>
  FaultSimResult run_ffr(std::span<const PatternBlock> blocks,
                         const FaultSimOptions& opt);
  void finalize_curves(FaultSimResult& r) const;

  const SimKernel* k_;
  std::vector<Fault> faults_;
  std::vector<std::uint32_t> weights_;  ///< per-fault class sizes
  std::size_t total_faults_ = 0;
  std::uint64_t total_weight_ = 0;

  // Static stem grouping of the fault list: group g covers sim-fault indices
  // group_faults_[group_offset_[g] .. group_offset_[g+1]) whose sites share
  // the stem root group_stem_[g].  Only non-empty groups are kept, in stem
  // level order; within a group faults keep list order.
  std::vector<KIndex> group_stem_;
  std::vector<std::uint32_t> group_offset_;
  std::vector<std::uint32_t> group_faults_;

  // Worker pool cached across run() calls (rebuilt only when the resolved
  // worker count changes), so repeated runs don't pay thread spawn cost.
  std::unique_ptr<WorkerPool> pool_;

  // Legacy-path per-fault propagation scratch in kernel-index space, reset
  // via touched_list_ after each fault (also backs detect_lanes()).
  std::vector<std::uint64_t> fval_;
  std::vector<char> touched_;
  std::vector<KIndex> touched_list_;
  std::vector<std::vector<KIndex>> level_queues_;
  std::vector<char> queued_;
};

}  // namespace bist
