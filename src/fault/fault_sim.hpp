#pragma once
// PPSFP (parallel-pattern single-fault propagation) stuck-at fault simulator.
//
// For each 64-pattern block the good machine is evaluated once on the
// SimKernel; then each live fault is injected at its site word and the
// divergence is propagated event-driven through the site's fanout cone in
// level order (the same levelized scheme as TernarySim, but on 64-bit
// pattern words).  A fault whose faulty word differs from the good word at
// any primary output lane is detected; detected faults are dropped from the
// live list so the per-block cost shrinks as coverage accumulates — the
// standard shape of an LFSR coverage-curve computation.
//
// Coverage is reported under both accounting conventions: the collapsed
// convention (each representative counts as one fault) and the
// total-enumerated convention (each representative weighted by its
// equivalence-class size, denominator = uncollapsed fault count).

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "sim/kernel.hpp"

namespace bist {

struct FaultSimOptions {
  bool drop_detected = true;  ///< stop simulating a fault once detected
};

struct FaultSimResult {
  std::size_t total_faults = 0;  ///< uncollapsed fault list size
  std::size_t sim_faults = 0;    ///< simulated (collapsed) fault list size
  std::size_t detected = 0;
  std::uint64_t detected_weight = 0;  ///< class-size-weighted detected count
  std::uint64_t total_weight = 0;     ///< sum of class sizes (== total_faults
                                      ///< when the list came from collapsing)
  std::size_t patterns = 0;
  /// Per simulated fault: index of the first detecting pattern, -1 undetected.
  std::vector<std::int64_t> first_detected;
  /// Per pattern: fraction of simulated faults detected by patterns [0..p].
  /// Monotone non-decreasing by construction.
  std::vector<double> coverage;
  /// Same curve weighted by equivalence-class size over total_weight — the
  /// total-enumerated-fault convention.
  std::vector<double> coverage_weighted;
  /// Faulty-machine gate evaluations performed (cone-limited work measure).
  std::uint64_t faulty_gate_evals = 0;

  double final_coverage() const { return coverage.empty() ? 0.0 : coverage.back(); }
  double final_coverage_weighted() const {
    return coverage_weighted.empty() ? 0.0 : coverage_weighted.back();
  }
};

class FaultSimulator {
 public:
  /// Enumerates and collapses the stuck-at fault list of k.netlist().
  /// The kernel must outlive the simulator.
  explicit FaultSimulator(const SimKernel& k);

  /// Simulate an explicit (already collapsed) fault list; `total_faults` is
  /// the size of the uncollapsed list it came from (reported in results).
  /// `weights` optionally gives each fault's equivalence-class size (empty =
  /// weight 1 each).
  FaultSimulator(const SimKernel& k, std::vector<Fault> faults,
                 std::size_t total_faults,
                 std::vector<std::uint32_t> weights = {});

  std::span<const Fault> faults() const { return faults_; }
  std::span<const std::uint32_t> weights() const { return weights_; }

  /// Run over the pattern blocks with fault dropping; fills the coverage
  /// curves.  Repeatable: each call starts from the full fault list.
  FaultSimResult run(std::span<const PatternBlock> blocks,
                     const FaultSimOptions& opt = {});

  /// Lanes of `good_values` (a KernelSim values() array for the current
  /// block, kernel-index space) on which fault f is detected at some primary
  /// output.  Building block for pattern verification and static compaction.
  std::uint64_t detect_lanes(const Fault& f,
                             std::span<const std::uint64_t> good_values,
                             std::uint64_t lane_mask) {
    std::uint64_t evals = 0;
    return propagate_fault(f, good_values.data(), lane_mask, &evals);
  }

 private:
  std::uint64_t propagate_fault(const Fault& f, const std::uint64_t* good,
                                std::uint64_t lanes, std::uint64_t* evals);
  void init_scratch();

  const SimKernel* k_;
  std::vector<Fault> faults_;
  std::vector<std::uint32_t> weights_;  ///< per-fault class sizes
  std::size_t total_faults_ = 0;
  std::uint64_t total_weight_ = 0;

  // Per-fault propagation scratch in kernel-index space, reset via
  // touched_list_ after each fault.
  std::vector<std::uint64_t> fval_;
  std::vector<char> touched_;
  std::vector<KIndex> touched_list_;
  std::vector<std::vector<KIndex>> level_queues_;
  std::vector<char> queued_;
};

}  // namespace bist
