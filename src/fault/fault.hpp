#pragma once
// Single stuck-at fault model over a frozen netlist.
//
// Fault sites follow the classic stem/branch convention: every gate output
// net gets s-a-0/s-a-1 faults, and every fanin connection whose driver has
// fanout > 1 (a fanout branch, electrically distinct from the stem) gets its
// own s-a-0/s-a-1 pair.  Fanout-free connections are the same net as the
// driver output and are not enumerated separately.
//
// collapse_faults() applies structural equivalence + dominance collapsing
// driven by the controlling_value()/is_inverting() hooks of the gate library:
//   equivalence  input s-a-c  ==  output s-a-(inv ? !c : c)   (c controlling)
//                Buf/Not input s-a-v  ==  output s-a-(v ^ inv)
//   dominance    output s-a-(inv ? c : !c) of a multi-input gate with a
//                controlling value is dominated by its input faults and is
//                dropped (kept when the output is a primary output, so PO
//                coverage stays directly reported).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace bist {

struct Fault {
  GateId gate = kNoGate;  ///< site gate
  std::int16_t pin = -1;  ///< -1: fault on the gate output net; >=0: fanin pin
  std::uint8_t stuck = 0; ///< stuck-at value, 0 or 1

  bool is_output_fault() const { return pin < 0; }
  bool operator==(const Fault&) const = default;
};

/// Full (uncollapsed) single stuck-at fault list in deterministic site order.
std::vector<Fault> enumerate_faults(const Netlist& n);

/// Equivalence + dominance collapsing.  Returns one representative per
/// surviving equivalence class, in deterministic order.  The result is a
/// subset of `faults`.
std::vector<Fault> collapse_faults(const Netlist& n, std::span<const Fault> faults);

/// Collapsing result that also carries per-representative equivalence-class
/// sizes, so coverage can be reported in the total-enumerated-fault
/// convention (denominator = uncollapsed list size) as well as the collapsed
/// one.  Dominance-dropped classes are attributed to the class of the
/// dominating controlling-value fault on the gate's first fanin (followed
/// transitively until a surviving class is reached), so the sizes always sum
/// to `faults.size()` and a 100%-detected run weighs out to 100% under both
/// conventions.
struct CollapsedFaults {
  std::vector<Fault> faults;              ///< representatives (collapse_faults order)
  std::vector<std::uint32_t> class_size;  ///< same length; sums to input size
};
CollapsedFaults collapse_faults_sized(const Netlist& n, std::span<const Fault> faults);

/// "G16/2 s-a-1" style human-readable name.
std::string fault_name(const Netlist& n, const Fault& f);

}  // namespace bist
