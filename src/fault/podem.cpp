#include "fault/podem.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/parallel.hpp"

namespace bist {

namespace {

inline bool is_binary(Ternary v) { return v != Ternary::VX; }

}  // namespace

std::string_view podem_status_name(PodemStatus s) {
  switch (s) {
    case PodemStatus::Detected: return "detected";
    case PodemStatus::Redundant: return "redundant";
    case PodemStatus::Aborted: return "aborted";
    case PodemStatus::Cancelled: return "cancelled";
  }
  return "?";
}

Podem::Podem(const SimKernel& k)
    : k_(&k), good_(k), faulty_(k) {
  pi_ordinal_.assign(k.gate_count(), ~0u);
  for (std::uint32_t i = 0; i < k.inputs().size(); ++i)
    pi_ordinal_[k.inputs()[i]] = i;
  in_cone_.assign(k.gate_count(), 0);
  reach_.assign(k.gate_count(), 0);
  // Static distance-to-PO (min fanout hops), used to steer the D-frontier
  // towards the closest output.  Kernel order is level order, so a reverse
  // sweep sees every fanout before its driver.
  po_dist_.assign(k.gate_count(), ~0u);
  for (KIndex u = static_cast<KIndex>(k.gate_count()); u-- > 0;) {
    if (k.is_output(u)) { po_dist_[u] = 0; continue; }
    for (KIndex f : k.fanouts(u))
      if (po_dist_[f] != ~0u)
        po_dist_[u] = std::min(po_dist_[u], po_dist_[f] + 1);
  }
}

void Podem::build_cone(KIndex site) {
  for (KIndex u : cone_) in_cone_[u] = 0;
  cone_.clear();
  cone_.push_back(site);
  in_cone_[site] = 1;
  for (std::size_t i = 0; i < cone_.size(); ++i)
    for (KIndex f : k_->fanouts(cone_[i]))
      if (!in_cone_[f]) {
        in_cone_[f] = 1;
        cone_.push_back(f);
      }
  std::sort(cone_.begin(), cone_.end());  // ascending == level order
}

bool Podem::detected() const {
  for (KIndex o : k_->outputs()) {
    const Ternary g = good_.value_at(o);
    const Ternary f = faulty_.value_at(o);
    if (is_binary(g) && is_binary(f) && g != f) return true;
  }
  return false;
}

bool Podem::x_path_ok() {
  // reach_[u]: u's value is still X in one machine and a path of such
  // unresolved gates leads from u to a primary output.  Ternary values are
  // monotone under further PI assignment (binary never reverts to X), so a
  // signal pair that is binary-equal is dead for good: if no difference and
  // no unresolved site signal can reach a PO through unresolved gates, no
  // completion of the current assignment detects the fault.
  for (auto it = cone_.rbegin(); it != cone_.rend(); ++it) {
    const KIndex u = *it;
    bool r = false;
    if (good_.value_at(u) == Ternary::VX || faulty_.value_at(u) == Ternary::VX) {
      if (k_->is_output(u)) {
        r = true;
      } else {
        for (KIndex f : k_->fanouts(u))  // fanouts of cone gates stay in cone
          if (reach_[f]) { r = true; break; }
      }
    }
    reach_[u] = r;
  }
  if (reach_[site_]) return true;  // fault effect can still materialize here
  for (KIndex u : cone_) {
    const Ternary g = good_.value_at(u);
    const Ternary f = faulty_.value_at(u);
    if (!(is_binary(g) && is_binary(f) && g != f)) continue;  // not a D signal
    if (k_->is_output(u)) return true;  // detected, caller handles first
    for (KIndex fo : k_->fanouts(u))
      if (reach_[fo]) return true;
  }
  return false;
}

bool Podem::objective(KIndex* gate, Ternary* v) const {
  // Phase 1: activate the fault — drive the faulted line to the opposite of
  // its stuck value.
  if (good_.value_at(line_) == Ternary::VX) {
    *gate = line_;
    *v = stuck_t_ == Ternary::V0 ? Ternary::V1 : Ternary::V0;
    return true;
  }
  // Phase 2: advance the D-frontier — a gate whose output is unresolved in
  // some machine and that has a difference on a fanin (or is the site gate
  // of a branch fault, whose difference lives on the forced pin).  Among the
  // frontier gates take the one closest to a primary output: the shortest
  // propagation path needs the fewest side-input justifications.
  KIndex best = kNoGate;
  for (const KIndex u : cone_) {
    if (is_binary(good_.value_at(u)) && is_binary(faulty_.value_at(u)))
      continue;
    bool frontier = branch_fault_ && u == site_;
    if (!frontier) {
      for (KIndex w : k_->fanins(u)) {
        const Ternary g = good_.value_at(w);
        const Ternary f = faulty_.value_at(w);
        if (is_binary(g) && is_binary(f) && g != f) { frontier = true; break; }
      }
    }
    if (!frontier) continue;
    if (best == kNoGate || po_dist_[u] < po_dist_[best]) best = u;
  }
  if (best == kNoGate) return false;
  const KIndex pick = pick_x_fanin(best, /*easiest=*/false);
  if (pick == kNoGate) return false;
  const int c = controlling_value(k_->type(best));
  *gate = pick;
  // Side inputs must take the non-controlling value; XOR-family gates
  // sensitize for any binary side value, so the choice there is free.
  *v = c < 0 ? Ternary::V0 : (c == 0 ? Ternary::V1 : Ternary::V0);
  return true;
}

KIndex Podem::pick_x_fanin(KIndex g, bool easiest) const {
  // Among the unresolved fanins of g prefer the good machine's X region
  // (faulty-only X happens just inside the fault cone), then use logic level
  // as a controllability proxy: a shallow X (easiest) when a single
  // controlling input decides the gate, a deep X (hardest) when every input
  // must be justified — failing on the hard one first prunes earlier.
  KIndex pick = kNoGate;
  bool pick_good = false;
  for (KIndex w : k_->fanins(g)) {
    const bool gx = good_.value_at(w) == Ternary::VX;
    const bool fx = faulty_.value_at(w) == Ternary::VX;
    if (!gx && !fx) continue;
    if (pick == kNoGate || (gx && !pick_good) ||
        (gx == pick_good &&
         (easiest ? k_->level(w) < k_->level(pick)
                  : k_->level(w) > k_->level(pick)))) {
      pick = w;
      pick_good = gx;
    }
  }
  return pick;
}

void Podem::backtrace(KIndex g, Ternary v, std::uint32_t* pi_idx,
                      Ternary* pv) const {
  // Walk the objective backwards through the X region to a primary input.
  // Every non-input gate on the walk has an unresolved fanin (its own value
  // is unresolved in some machine and pin forces are binary), so the walk
  // always lands on an unassigned PI.
  while (k_->type(g) != GateType::Input) {
    const GateType t = k_->type(g);
    const bool inv = is_inverting(t);
    const int c = controlling_value(t);
    KIndex next;
    if (t == GateType::Xor || t == GateType::Xnor) {
      // Parity-aware: the X input must supply v corrected for the inversion
      // and the parity already contributed by the binary fanins (unresolved
      // side fanins are optimistically counted as 0).
      bool parity = inv;
      next = pick_x_fanin(g, /*easiest=*/true);
      if (next == kNoGate)
        throw std::logic_error("Podem::backtrace: no X fanin on the walk");
      for (KIndex w : k_->fanins(g))
        if (w != next && good_.value_at(w) == Ternary::V1) parity = !parity;
      if (parity) v = t_not(v);
    } else {
      if (inv) v = t_not(v);
      // v == controlling: one input decides, take the easiest X; otherwise
      // every input needs the non-controlling value, take the hardest.
      const bool one_input_decides =
          c >= 0 && v == (c == 0 ? Ternary::V0 : Ternary::V1);
      next = pick_x_fanin(g, one_input_decides);
      if (next == kNoGate)
        throw std::logic_error("Podem::backtrace: no X fanin on the walk");
    }
    g = next;
  }
  *pi_idx = pi_ordinal_[g];
  *pv = v;
}

bool Podem::search() {
  // Cooperative stop, polled once per search node (== once per decision
  // plus the root): a node costs a full ternary simulate, orders of
  // magnitude above the poll, so cancellation latency is one node while an
  // undeadlined search is untouched — the poll reads a clock and a flag,
  // never search state.  Reuses the abort unwinding (no second branches),
  // so the whole stack collapses immediately.
  if (deadline_ && deadline_->should_stop()) {
    cancelled_ = true;
    aborted_ = true;
    return false;
  }
  if (detected()) return true;
  const Ternary lg = good_.value_at(line_);
  if (lg == stuck_t_) return false;  // activation impossible under this cube
  if (!x_path_ok()) return false;    // every propagation path is dead
  KIndex og;
  Ternary ov;
  if (!objective(&og, &ov)) return false;
  std::uint32_t idx;
  Ternary v;
  backtrace(og, ov, &idx, &v);

  ++decisions_;
  good_.set_input(idx, v);
  faulty_.set_input(idx, v);
  if (search()) return true;
  if (!aborted_ && ++backtracks_ > limit_) aborted_ = true;
  if (aborted_) {
    good_.set_input(idx, Ternary::VX);
    faulty_.set_input(idx, Ternary::VX);
    return false;
  }
  v = t_not(v);
  good_.set_input(idx, v);
  faulty_.set_input(idx, v);
  if (search()) return true;
  good_.set_input(idx, Ternary::VX);
  faulty_.set_input(idx, Ternary::VX);
  return false;
}

PodemResult Podem::generate(const Fault& f, const PodemOptions& opt) {
  good_.reset();
  faulty_.reset();

  site_ = k_->index_of(f.gate);
  branch_fault_ = !f.is_output_fault();
  stuck_t_ = f.stuck ? Ternary::V1 : Ternary::V0;
  if (branch_fault_) {
    if (static_cast<std::size_t>(f.pin) >= k_->fanins(site_).size())
      throw std::out_of_range("Podem::generate: fault pin out of range");
    line_ = k_->fanins(site_)[f.pin];
    faulty_.force_pin(f.gate, static_cast<unsigned>(f.pin), stuck_t_);
  } else {
    line_ = site_;
    faulty_.force(f.gate, stuck_t_);
  }
  build_cone(site_);

  backtracks_ = 0;
  decisions_ = 0;
  limit_ = opt.backtrack_limit;
  aborted_ = false;
  cancelled_ = false;
  deadline_ = opt.deadline;
  const bool found = search();

  PodemResult r;
  r.backtracks = backtracks_;
  r.decisions = decisions_;
  if (found) {
    r.status = PodemStatus::Detected;
    r.cube.resize(k_->inputs().size());
    for (std::size_t i = 0; i < r.cube.size(); ++i)
      r.cube[i] = good_.value_at(k_->inputs()[i]);
  } else if (cancelled_) {
    r.status = PodemStatus::Cancelled;  // no verdict: the search was cut off
  } else {
    r.status = aborted_ ? PodemStatus::Aborted : PodemStatus::Redundant;
  }

  if (branch_fault_)
    faulty_.unforce_pin(f.gate, static_cast<unsigned>(f.pin));
  else
    faulty_.unforce(f.gate);
  return r;
}

PodemBatch::PodemBatch(const SimKernel& k, unsigned threads)
    : pool_(std::make_unique<WorkerPool>(threads)) {
  engines_.reserve(pool_->workers());
  for (unsigned w = 0; w < pool_->workers(); ++w)
    engines_.push_back(std::make_unique<Podem>(k));
}

PodemBatch::~PodemBatch() = default;

unsigned PodemBatch::workers() const { return pool_->workers(); }

std::vector<PodemResult> PodemBatch::generate(std::span<const Fault> faults,
                                              const PodemOptions& opt) {
  std::vector<PodemResult> results(faults.size());
  if (opt.deadline) {
    // Pre-mark every slot Cancelled so faults never claimed once the
    // deadline fires read as "no verdict" rather than the default status.
    // Claimed faults overwrite their slot (possibly also with Cancelled, if
    // the deadline fired mid-search); completed verdicts are bit-identical
    // to an undeadlined run by the engine's determinism contract.
    for (PodemResult& r : results) r.status = PodemStatus::Cancelled;
  }
  parallel_for(*pool_, faults.size(), 1,
               [&](unsigned wid, std::size_t b, std::size_t e) {
                 if (opt.deadline && opt.deadline->should_stop()) return;
                 for (std::size_t i = b; i < e; ++i)
                   results[i] = engines_[wid]->generate(faults[i], opt);
               });
  return results;
}

}  // namespace bist
