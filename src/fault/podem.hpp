#pragma once
// PODEM (path-oriented decision making) deterministic test generation for
// single stuck-at faults — the generator behind the mixed scheme's top-off
// phase.  Two TernarySims run in lock-step over a shared SimKernel: the good
// machine carries the fault-free circuit, the faulty machine has the fault
// injected (stem faults via force(), fanout-branch faults via force_pin()).
// A signal whose (good, faulty) pair is (1,0) carries D, (0,1) carries D-bar;
// a test is found when some primary output pair differs on binary values.
//
// The search is the classic PODEM loop: pick an objective (activate the
// fault line, then advance a D-frontier gate), backtrace it through the
// X-valued region to a primary-input assignment, simulate, and backtrack on
// failure.  Pruning is conservative — a branch is cut only when the fault
// provably cannot be activated, or no X-path from a difference (or the
// still-unresolved fault site) reaches a primary output under the current
// assignment — so an exhausted search proves the fault redundant.  Searches
// that hit the backtrack limit are reported Aborted, separately from
// Redundant.

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "fault/fault.hpp"
#include "sim/kernel.hpp"
#include "sim/ternary_sim.hpp"
#include "util/deadline.hpp"

namespace bist {

class WorkerPool;

enum class PodemStatus : std::uint8_t {
  Detected,   ///< test cube found (and verified by the lock-step sims)
  Redundant,  ///< search space exhausted: no test exists
  Aborted,    ///< backtrack limit hit before a verdict
  Cancelled,  ///< deadline/cancel fired mid-search: NO verdict — unlike
              ///< Aborted this says nothing about the fault and must never
              ///< be cached or counted as a search outcome
};

std::string_view podem_status_name(PodemStatus s);

struct PodemOptions {
  /// Backtracks (decision reversals) allowed per fault before aborting.
  /// Detection saturates at a few hundred on the surrogate family; proofs of
  /// redundancy through reconvergent XOR/multiplier logic are the budget
  /// eaters and abort instead (see BENCH JSON podem.aborted per circuit).
  std::uint32_t backtrack_limit = 1000;
  /// Cooperative deadline/cancel, polled once per decision inside the
  /// search (and per fault by PodemBatch before claiming the next one).  A
  /// search stopped mid-flight returns PodemStatus::Cancelled; verdicts
  /// reached before the stop are untouched and bit-identical to an
  /// undeadlined run.  nullptr = never stops.
  const Deadline* deadline = nullptr;
};

struct PodemResult {
  PodemStatus status = PodemStatus::Redundant;
  /// Per primary input (PI order), VX = don't care.  Valid iff Detected.
  std::vector<Ternary> cube;
  std::uint32_t backtracks = 0;
  std::uint64_t decisions = 0;
};

/// Reusable PODEM engine; generate() may be called for any number of faults.
/// The kernel must outlive the engine.
///
/// Reuse contract (what lets pooled workers hold one engine each): generate()
/// starts by resetting both lock-step simulators and every per-fault field,
/// and removes its fault injection before returning, so the result of a call
/// depends only on (kernel, fault, options) — never on the faults generated
/// before it.  The engine carries no RNG; the search is fully deterministic.
class Podem {
 public:
  explicit Podem(const SimKernel& k);

  PodemResult generate(const Fault& f, const PodemOptions& opt = {});

 private:
  bool detected() const;
  bool x_path_ok();
  bool objective(KIndex* gate, Ternary* v) const;
  KIndex pick_x_fanin(KIndex g, bool easiest) const;
  void backtrace(KIndex g, Ternary v, std::uint32_t* pi_idx, Ternary* pv) const;
  bool search();
  void build_cone(KIndex site);

  const SimKernel* k_;
  TernarySim good_, faulty_;
  std::vector<std::uint32_t> pi_ordinal_;  // kernel idx -> PI index, ~0 if not PI
  std::vector<std::uint32_t> po_dist_;     // min fanout hops to a primary output

  // Per-fault state.
  KIndex site_ = 0;              // fault site gate
  KIndex line_ = 0;              // faulted line's driving signal
  bool branch_fault_ = false;
  Ternary stuck_t_ = Ternary::V0;
  std::vector<KIndex> cone_;     // transitive fanout of site_ incl site_, ascending
  std::vector<char> in_cone_;
  std::vector<char> reach_;      // x_path_ok scratch, valid on cone_ only
  std::uint32_t backtracks_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint32_t limit_ = 0;
  bool aborted_ = false;
  bool cancelled_ = false;
  const Deadline* deadline_ = nullptr;
};

/// Parallel PODEM: one persistent engine (its own good/faulty TernarySim
/// pair) per worker of an owned WorkerPool, reused across generate() calls —
/// the construction cost (pool threads + per-engine kernel-sized scratch) is
/// paid once per batch object, which is what a sweep over many candidate
/// LFSR lengths needs.
///
/// generate() partitions the fault list dynamically at grain 1 (per-fault
/// cost is heavily skewed: an easy detection is microseconds while a
/// redundancy proof or abort burns the whole backtrack budget) and each
/// verdict lands in its fault's slot of the returned vector.  Combined with
/// the per-engine determinism contract of Podem::generate, the result is in
/// input order and bit-identical for every worker count.
class PodemBatch {
 public:
  /// `threads` resolved as in resolve_threads(); 1 spawns no threads and
  /// runs on the caller.  The kernel must outlive the batch.
  PodemBatch(const SimKernel& k, unsigned threads);
  ~PodemBatch();

  PodemBatch(const PodemBatch&) = delete;
  PodemBatch& operator=(const PodemBatch&) = delete;

  unsigned workers() const;

  /// One verdict per fault, input order; see the class comment.
  std::vector<PodemResult> generate(std::span<const Fault> faults,
                                    const PodemOptions& opt = {});

 private:
  std::unique_ptr<WorkerPool> pool_;
  std::vector<std::unique_ptr<Podem>> engines_;  // one per worker
};

}  // namespace bist
