#include "fault/fault.hpp"

#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace bist {
namespace {

std::uint64_t fault_key(GateId g, std::int16_t pin, std::uint8_t stuck) {
  // pin is in [-1, 32766]; +1 keeps it non-negative and under 2^17.
  return (std::uint64_t(g) << 18) | (std::uint64_t(pin + 1) << 1) | stuck;
}

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Keep the smaller index as root so representatives are deterministic.
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<Fault> enumerate_faults(const Netlist& n) {
  if (!n.frozen()) throw std::invalid_argument("enumerate_faults: netlist not frozen");
  std::vector<Fault> out;
  for (GateId g = 0; g < n.gate_count(); ++g) {
    out.push_back({g, -1, 0});
    out.push_back({g, -1, 1});
    const Gate& gg = n.gate(g);
    for (std::size_t j = 0; j < gg.fanins.size(); ++j) {
      if (n.fanouts(gg.fanins[j]).size() > 1) {
        out.push_back({g, static_cast<std::int16_t>(j), 0});
        out.push_back({g, static_cast<std::int16_t>(j), 1});
      }
    }
  }
  return out;
}

std::vector<Fault> collapse_faults(const Netlist& n, std::span<const Fault> faults) {
  return collapse_faults_sized(n, faults).faults;
}

CollapsedFaults collapse_faults_sized(const Netlist& n, std::span<const Fault> faults) {
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(faults.size() * 2);
  for (std::size_t i = 0; i < faults.size(); ++i)
    index.emplace(fault_key(faults[i].gate, faults[i].pin, faults[i].stuck), i);

  auto lookup = [&](GateId g, std::int16_t pin, std::uint8_t stuck) {
    auto it = index.find(fault_key(g, pin, stuck));
    if (it == index.end())
      throw std::logic_error("collapse_faults: fault list is not the full list");
    return it->second;
  };
  // The fault on the connection into pin j of g: a branch fault when the
  // driver net fans out, otherwise the driver's own output fault.
  auto connection = [&](GateId g, std::size_t j, std::uint8_t stuck) {
    const GateId driver = n.gate(g).fanins[j];
    if (n.fanouts(driver).size() > 1)
      return lookup(g, static_cast<std::int16_t>(j), stuck);
    return lookup(driver, -1, stuck);
  };

  UnionFind uf(faults.size());
  for (GateId g = 0; g < n.gate_count(); ++g) {
    const Gate& gg = n.gate(g);
    if (gg.fanins.empty()) continue;
    const int c = controlling_value(gg.type);
    const bool inv = is_inverting(gg.type);
    if (gg.type == GateType::Buf || gg.type == GateType::Not) {
      for (std::uint8_t v = 0; v < 2; ++v)
        uf.unite(connection(g, 0, v), lookup(g, -1, v ^ (inv ? 1 : 0)));
    } else if (c >= 0) {
      const auto out_stuck = static_cast<std::uint8_t>(inv ? !c : c);
      for (std::size_t j = 0; j < gg.fanins.size(); ++j)
        uf.unite(connection(g, j, static_cast<std::uint8_t>(c)),
                 lookup(g, -1, out_stuck));
    }
  }

  // Dominance: the non-equivalent output fault of a multi-input gate with a
  // controlling value is detected by any test for one of its input faults.
  std::vector<char> droppable(faults.size(), 0);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault& f = faults[i];
    if (!f.is_output_fault()) continue;
    const Gate& gg = n.gate(f.gate);
    const int c = controlling_value(gg.type);
    if (c < 0 || gg.fanins.size() < 2) continue;
    if (n.is_output(f.gate)) continue;  // keep direct PO faults
    const bool inv = is_inverting(gg.type);
    if (f.stuck == static_cast<std::uint8_t>(inv ? c : !c)) droppable[i] = 1;
  }

  // A class survives unless every member is dominance-droppable; its
  // representative is the lowest-index member (the union root).
  std::vector<char> survives(faults.size(), 0);
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (!droppable[i]) survives[uf.find(i)] = 1;

  std::vector<std::uint32_t> class_size(faults.size(), 0);
  for (std::size_t i = 0; i < faults.size(); ++i) ++class_size[uf.find(i)];

  // A dropped class (all members droppable output faults) is guaranteed
  // detected by any test for one of the gate's dominating input faults —
  // input stuck at the NON-controlling value (for AND, output s-a-1 is
  // dominated by input s-a-1).  Attribute its weight to the first fanin's
  // non-controlling connection fault, transitively, so the sizes keep
  // summing to faults.size().  The walk terminates: a connection fault is
  // either a branch fault (an input-side fault, hence in a surviving class)
  // or the driver's output fault, and driver ids strictly decrease along
  // the topological order.
  auto dominating_class = [&](std::size_t root) {
    while (!survives[root]) {
      const Fault& f = faults[root];  // droppable => output fault, c >= 0
      const int c = controlling_value(n.gate(f.gate).type);
      root = uf.find(connection(f.gate, 0, static_cast<std::uint8_t>(c ? 0 : 1)));
    }
    return root;
  };
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (uf.find(i) == i && !survives[i])
      class_size[dominating_class(i)] += class_size[i];

  CollapsedFaults out;
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (uf.find(i) == i && survives[i]) {
      out.faults.push_back(faults[i]);
      out.class_size.push_back(class_size[i]);
    }
  return out;
}

std::string fault_name(const Netlist& n, const Fault& f) {
  std::string s = n.gate(f.gate).name;
  if (!f.is_output_fault()) {
    s += "/";
    s += std::to_string(f.pin);
    s += "(";
    s += n.gate(n.gate(f.gate).fanins[f.pin]).name;
    s += ")";
  }
  s += f.stuck ? " s-a-1" : " s-a-0";
  return s;
}

}  // namespace bist
