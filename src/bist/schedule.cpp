#include "bist/schedule.hpp"

#include <algorithm>
#include <stdexcept>

#include "tpg/lfsr.hpp"

namespace bist {

BistPlan schedule_bist(const MixedSweepResult& sweep, std::size_t width,
                       const ScheduleOptions& opt) {
  if (sweep.points.empty())
    throw std::invalid_argument("schedule_bist: empty sweep");
  if (sweep.points.size() != sweep.lengths.size())
    throw std::invalid_argument("schedule_bist: lengths/points size mismatch");
  // A sweep from run_mixed_sweep records its pattern width; the per-point
  // topoff check below still covers hand-assembled sweeps that left it 0.
  if (sweep.width != 0 && sweep.width != width)
    throw std::invalid_argument(
        "schedule_bist: width does not match the sweep's pattern width");

  const std::uint64_t taps = Lfsr::primitive_taps(opt.lfsr_degree);

  // Anytime ladder: prefer Complete points; with none (a deadline gutted the
  // sweep) fall back to the LfsrOnly tier and mark the plan degraded.  A
  // sweep where everything was Skipped has no usable data at all.
  const bool any_complete = std::any_of(
      sweep.points.begin(), sweep.points.end(),
      [](const MixedSchemeResult& p) { return p.state == PointState::Complete; });
  const PointState tier =
      any_complete ? PointState::Complete : PointState::LfsrOnly;
  const bool degraded = !any_complete;
  if (degraded &&
      std::none_of(sweep.points.begin(), sweep.points.end(),
                   [](const MixedSchemeResult& p) {
                     return p.state == PointState::LfsrOnly;
                   }))
    throw std::invalid_argument(
        "schedule_bist: sweep has no usable point (all skipped)");

  // Canonical candidate list: first occurrence per distinct length,
  // ascending length — the selection below sees the same list for any
  // permutation/duplication of the caller's sweep lengths.
  std::vector<SchedulePoint> cand;
  for (std::size_t p = 0; p < sweep.points.size(); ++p) {
    const MixedSchemeResult& pt = sweep.points[p];
    if (pt.state != tier) continue;
    const bool dup = std::any_of(
        cand.begin(), cand.end(),
        [&](const SchedulePoint& c) { return c.length == pt.lfsr_patterns; });
    if (dup) continue;
    if (!pt.topoff.empty() && pt.topoff.front().size() != width)
      throw std::invalid_argument(
          "schedule_bist: width does not match the sweep's pattern width");
    if (pt.comp.enabled && pt.comp.degree != opt.lfsr_degree)
      throw std::invalid_argument(
          "schedule_bist: compression seed degree does not match lfsr_degree");
    SchedulePoint c;
    c.point_index = p;
    c.length = pt.lfsr_patterns;
    c.topoff_patterns = pt.topoff_patterns;
    c.test_time = pt.lfsr_patterns + pt.topoff_patterns;
    const BistArea a =
        estimate_bist_area(opt.area, opt.lfsr_degree, taps, width, pt.topoff,
                           pt.lfsr_patterns, pt.comp);
    c.rom_bits = a.rom_bits;
    c.seed_rom_bits = a.seed_rom_bits;
    c.misr_bits = a.misr_bits;
    c.fallback_rows = pt.comp.enabled ? pt.comp.fallback_rows() : 0;
    c.area_bits = a.area_bits();
    c.cost = opt.time_weight * double(c.test_time) +
             opt.area_weight * double(c.area_bits);
    c.within_budget =
        opt.test_time_budget == 0 || c.test_time <= opt.test_time_budget;
    c.final_coverage = pt.final_coverage;
    cand.push_back(c);
  }
  std::sort(cand.begin(), cand.end(),
            [](const SchedulePoint& a, const SchedulePoint& b) {
              return a.length < b.length;
            });

  // Budget filter; an infeasible budget degrades to the fastest point.
  std::vector<std::size_t> feas;
  for (std::size_t i = 0; i < cand.size(); ++i)
    if (cand[i].within_budget) feas.push_back(i);
  if (feas.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < cand.size(); ++i)
      if (cand[i].test_time < cand[best].test_time) best = i;
    feas.push_back(best);
  }

  // Knee of the stored-cost curve over the feasible candidates: normalize
  // both axes to [0,1] over the feasible range and measure each point's
  // distance below the chord joining the shortest and longest lengths.  The
  // y-axis is the pattern count for legacy points and the compressed
  // area_bits for compressed points (cost per stored pattern varies under
  // reseeding, so the knee must see the real storage).  Flat or two-point
  // curves have zero chord distance everywhere; the tie-break then minimizes
  // normalized length + stored cost (for a flat curve that is simply the
  // shortest test).
  const bool comp_knee = std::any_of(
      cand.begin(), cand.end(), [&](const SchedulePoint& c) {
        return sweep.points[c.point_index].comp.enabled;
      });
  auto stored = [&](const SchedulePoint& c) {
    return comp_knee ? c.area_bits : c.topoff_patterns;
  };
  const std::size_t lo = feas.front(), hi = feas.back();
  const double lspan = double(cand[hi].length) - double(cand[lo].length);
  std::size_t tmin = stored(cand[feas[0]]), tmax = tmin;
  for (const std::size_t i : feas) {
    tmin = std::min(tmin, stored(cand[i]));
    tmax = std::max(tmax, stored(cand[i]));
  }
  const double tspan = double(tmax) - double(tmin);
  auto norm_x = [&](const SchedulePoint& c) {
    return lspan > 0 ? (double(c.length) - double(cand[lo].length)) / lspan
                     : 0.0;
  };
  auto norm_y = [&](const SchedulePoint& c) {
    return tspan > 0 ? (double(stored(c)) - double(tmin)) / tspan : 0.0;
  };
  const double y0 = norm_y(cand[lo]), y1 = norm_y(cand[hi]);
  for (const std::size_t i : feas) {
    const double x = norm_x(cand[i]);
    cand[i].knee_distance = (y0 + (y1 - y0) * x) - norm_y(cand[i]);
  }

  std::size_t chosen = feas[0];
  if (opt.objective == ScheduleObjective::WeightedCost) {
    for (const std::size_t i : feas)
      if (cand[i].cost < cand[chosen].cost ||
          (cand[i].cost == cand[chosen].cost &&
           cand[i].length < cand[chosen].length))
        chosen = i;
  } else {
    const double eps = 1e-12;
    auto better = [&](const SchedulePoint& a, const SchedulePoint& b) {
      if (a.knee_distance > b.knee_distance + eps) return true;
      if (b.knee_distance > a.knee_distance + eps) return false;
      const double sa = norm_x(a) + norm_y(a);
      const double sb = norm_x(b) + norm_y(b);
      if (sa + eps < sb) return true;
      if (sb + eps < sa) return false;
      return a.length < b.length;
    };
    for (const std::size_t i : feas)
      if (better(cand[i], cand[chosen])) chosen = i;
  }

  const SchedulePoint& c = cand[chosen];
  const MixedSchemeResult& pt = sweep.points[c.point_index];
  BistPlan plan;
  plan.point_index = c.point_index;
  plan.lfsr_patterns = c.length;
  plan.topoff_patterns = c.topoff_patterns;
  plan.test_time = c.test_time;
  plan.rom_bits = c.rom_bits;
  plan.cost = c.cost;
  plan.knee_distance = c.knee_distance;
  plan.area = estimate_bist_area(opt.area, opt.lfsr_degree, taps, width,
                                 pt.topoff, pt.lfsr_patterns, pt.comp);
  plan.area_model = opt.area;
  plan.lfsr_degree = opt.lfsr_degree;
  plan.lfsr_taps = taps;
  plan.lfsr_seed = opt.lfsr_seed;
  plan.width = width;
  plan.topoff = pt.topoff;
  plan.comp = pt.comp;
  plan.lfsr_coverage = pt.lfsr_coverage;
  plan.final_coverage = pt.final_coverage;
  plan.final_coverage_weighted = pt.final_coverage_weighted;
  plan.degraded = degraded;
  plan.candidates = std::move(cand);
  return plan;
}

}  // namespace bist
