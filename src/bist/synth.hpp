#pragma once
// Gate-level synthesis of the mixed-scheme BIST wrapper — the paper's
// hardware generator, closed end to end: a scheduled BistPlan becomes a
// standalone netlist containing the test hardware AND a copy of the circuit
// under test, emittable as .bench via write_bench and simulatable by every
// engine in the repo.
//
// The substrate is combinational, so the wrapper is the standard one-frame
// unrolling of the sequential BIST machine: every state bit appears as a
// primary-input / primary-output pair (current state in, next state out) and
// a harness (bist/verify.hpp) closes the feedback loop cycle by cycle.
//
// Blocks, all wired through NetlistBuilder by net name:
//
//   LFSR         the plan's maximal-length LFSR unrolled width times
//                (test-per-clock: one applied pattern = width stream bits =
//                width shifts), one feedback XOR network per shift; the
//                pattern bits are the pre-shift output-stage taps, exactly
//                the Lfsr class's stream convention.
//   counter      ripple-increment cycle counter wide enough for
//                lfsr_patterns + topoff cycles.
//   ROM          stored top-off patterns as decoded logic: per row an
//                equality decode of its cycle index (counter literals, shared
//                inverters), per CUT input an OR over the rows whose stored
//                bit is set.
//   controller   phase select = OR of the row decodes (low during the whole
//                pseudo-random phase), inverted to gate the LFSR legs.
//   muxing       per CUT input: AND(phase', lfsr_bit) merged with the ROM
//                column; the mux output *takes the CUT input's net name*
//                (prefixed), so the embedded CUT is driven transparently.
//   CUT copy     every logic gate of the CUT, names prefixed "cut_".
//
// Net-name conventions (the verify harness resolves these by name, and they
// survive a write_bench/read_bench round trip):
//
//   bist_lfsr_s<i> / bist_lfsr_n<i>   LFSR state bit i, current / next
//   bist_cnt_s<i>  / bist_cnt_n<i>    counter bit i (LSB first)
//   cut_<name>                        CUT net (CUT inputs name mux outputs)
//
// Wrapper primary inputs: LFSR then counter state bits.  Primary outputs:
// the CUT's outputs (order preserved), then next LFSR state, then next
// counter state.

#include <cstddef>

#include "bist/schedule.hpp"
#include "netlist/netlist.hpp"
#include "util/deadline.hpp"

namespace bist {

struct BistSynthResult {
  Netlist wrapper;
  /// Exact GE accounting of the emitted BIST logic under plan.area_model
  /// (CUT copy excluded; state bits priced as flip-flops).
  BistArea actual;
  std::size_t bist_gates = 0;    ///< emitted BIST logic gates (CUT excluded)
  std::size_t counter_bits = 0;
  /// Ok for a full build.  When the cooperative deadline fires mid-build the
  /// status records why, `wrapper` is left EMPTY (a partial netlist is not a
  /// wrapper) and the accounting fields cover only the gates emitted so far.
  StageStatus status;
};

/// Synthesize the wrapper for `cut` (which must be frozen and match
/// plan.width).  Deterministic for a given (cut, plan).  Throws
/// std::invalid_argument on width mismatch or an empty (zero-cycle) plan.
/// `deadline` is polled per LFSR unroll step, per ROM row, per CUT-copy
/// chunk and per MISR stage (bounded stop latency, same contract as
/// fault-sim/PODEM); nullptr never stops.
BistSynthResult synthesize_bist_wrapper(const Netlist& cut,
                                        const BistPlan& plan,
                                        const Deadline* deadline = nullptr);

}  // namespace bist
