#include "bist/verify.hpp"

#include <stdexcept>
#include <string>

#include "sim/kernel.hpp"
#include "tpg/lfsr.hpp"

namespace bist {
namespace {

GateId require_net(const Netlist& n, const std::string& name) {
  const GateId g = n.find(name);
  if (g == kNoGate)
    throw std::runtime_error("wrapper net missing: " + name);
  return g;
}

}  // namespace

WrapperSimResult simulate_wrapper(const Netlist& wrapper, const Netlist& cut,
                                  const BistPlan& plan,
                                  const Deadline* deadline) {
  const unsigned D = plan.lfsr_degree;
  const std::size_t total = plan.test_time;
  const std::size_t C = counter_width(total);
  const std::size_t w = cut.input_count();
  const unsigned K =
      plan.comp.enabled && plan.comp.misr.enabled() ? plan.comp.misr.degree : 0;

  // Resolve every net the loop reads or drives, once.
  std::vector<GateId> lfsr_in(D), lfsr_out(D), cnt_in(C), cnt_out(C), cut_in(w);
  std::vector<GateId> misr_in(K), misr_out(K);
  GateId sign_ok = kNoGate;
  for (unsigned i = 0; i < D; ++i) {
    lfsr_in[i] = require_net(wrapper, "bist_lfsr_s" + std::to_string(i));
    lfsr_out[i] = require_net(wrapper, "bist_lfsr_n" + std::to_string(i));
  }
  for (std::size_t i = 0; i < C; ++i) {
    cnt_in[i] = require_net(wrapper, "bist_cnt_s" + std::to_string(i));
    cnt_out[i] = require_net(wrapper, "bist_cnt_n" + std::to_string(i));
  }
  for (unsigned i = 0; i < K; ++i) {
    misr_in[i] = require_net(wrapper, "bist_misr_s" + std::to_string(i));
    misr_out[i] = require_net(wrapper, "bist_misr_n" + std::to_string(i));
  }
  if (K > 0) sign_ok = require_net(wrapper, "bist_sign_ok");
  for (std::size_t i = 0; i < w; ++i)
    cut_in[i] =
        require_net(wrapper, "cut_" + cut.gate(cut.inputs()[i]).name);

  const SimKernel k(wrapper);
  KernelSim sim(k);

  const std::uint64_t mask =
      D == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << D) - 1);
  std::uint64_t lfsr_state = plan.lfsr_seed & mask;
  std::uint64_t counter = 0;
  std::uint64_t misr_state = 0;

  PatternBlock blk;
  blk.width = wrapper.input_count();
  blk.count = 1;
  blk.input_words.assign(blk.width, 0);

  WrapperSimResult r;
  r.applied.reserve(total);
  for (std::size_t cycle = 0; cycle < total; ++cycle) {
    // One wrapper evaluation per poll: bounded stop latency, and the applied
    // prefix stays exact (the checks read nothing the state depends on).
    if (deadline && deadline->should_stop()) {
      r.status = deadline->stop_status("simulate_wrapper");
      break;
    }
    for (auto& word : blk.input_words) word = 0;
    for (unsigned i = 0; i < D; ++i)
      if ((lfsr_state >> i) & 1)
        blk.input_words[wrapper.input_index(lfsr_in[i])] = 1;
    for (std::size_t i = 0; i < C; ++i)
      if ((counter >> i) & 1)
        blk.input_words[wrapper.input_index(cnt_in[i])] = 1;
    for (unsigned i = 0; i < K; ++i)
      if ((misr_state >> i) & 1)
        blk.input_words[wrapper.input_index(misr_in[i])] = 1;
    sim.simulate(blk);

    BitVec pat(w);
    for (std::size_t i = 0; i < w; ++i)
      pat.set(i, sim.value(cut_in[i]) & 1);
    r.applied.push_back(std::move(pat));

    std::uint64_t next_state = 0, next_counter = 0, next_misr = 0;
    for (unsigned i = 0; i < D; ++i)
      next_state |= std::uint64_t(sim.value(lfsr_out[i]) & 1) << i;
    for (std::size_t i = 0; i < C; ++i)
      next_counter |= std::uint64_t(sim.value(cnt_out[i]) & 1) << i;
    for (unsigned i = 0; i < K; ++i)
      next_misr |= std::uint64_t(sim.value(misr_out[i]) & 1) << i;
    lfsr_state = next_state;
    counter = next_counter;
    misr_state = next_misr;
    if (K > 0 && cycle + 1 == total) r.sign_ok = sim.value(sign_ok) & 1;
  }
  r.final_lfsr_state = lfsr_state;
  r.final_counter = counter;
  r.final_misr = misr_state;
  return r;
}

WrapperVerification verify_wrapper(const Netlist& wrapper, const Netlist& cut,
                                   const BistPlan& plan,
                                   const MixedSchemeResult& point,
                                   const FaultSimOptions& fopt,
                                   const Deadline* deadline) {
  const Deadline* dl = deadline ? deadline : fopt.deadline;
  const WrapperSimResult ws = simulate_wrapper(wrapper, cut, plan, dl);
  const std::size_t w = cut.input_count();
  const std::size_t L = plan.lfsr_patterns;

  WrapperVerification v;
  v.cycles = ws.applied.size();
  if (!ws.status.ok()) {
    // Stopped mid-simulation: no check below would be meaningful, and none
    // ran — report the stop, with the would-be-true compressed-plan flags
    // cleared so ok() cannot accidentally hold.
    v.seeds_identical = false;
    v.signature_identical = false;
    v.status = ws.status;
    return v;
  }

  // The pseudo-random phase must be the Lfsr class's stream, bit for bit
  // (the harness applies exactly test_time patterns by construction, so the
  // phase split L / topoff.size() is what the checks below pin down).
  Lfsr lfsr(plan.lfsr_degree, plan.lfsr_taps, plan.lfsr_seed);
  v.lfsr_phase_identical = L <= ws.applied.size();
  for (std::size_t t = 0; t < L && v.lfsr_phase_identical; ++t)
    v.lfsr_phase_identical = ws.applied[t] == lfsr.next_pattern(w);

  // The ROM phase must replay the stored set in application order (which is
  // in particular set-identical).
  v.topoff_identical = ws.applied.size() == L + plan.topoff.size();
  for (std::size_t j = 0; j < plan.topoff.size() && v.topoff_identical; ++j)
    v.topoff_identical = ws.applied[L + j] == plan.topoff[j];

  // Fault-simulating the CUT over the applied stream must land exactly on
  // the scheduled point's coverage: detection is pattern-set determined, so
  // the numerators (LFSR-phase detections + tail detections by the stored
  // set) agree integer for integer, and the doubles divide out identically.
  const SimKernel ck(cut);
  FaultSimulator fsim(ck);
  const std::vector<PatternBlock> blocks = pack_all(ws.applied, w);
  FaultSimOptions fo = fopt;
  fo.deadline = dl;
  const FaultSimResult fr = fsim.run(blocks, fo);
  if (!fr.status.ok()) {
    v.seeds_identical = false;
    v.signature_identical = false;
    v.status = fr.status;
    return v;
  }
  v.achieved_coverage = fr.final_coverage();
  v.achieved_coverage_weighted = fr.final_coverage_weighted();
  v.coverage_identical = v.achieved_coverage == point.final_coverage &&
                         v.achieved_coverage_weighted ==
                             point.final_coverage_weighted;

  if (plan.comp.enabled) {
    // Seed re-proof: every seeded (non-fallback) stored row must be the
    // software expansion of its seed schedule, bit for bit — the stored set
    // IS the seed expansion, not merely consistent with it.
    const CompressedTopoff& comp = plan.comp;
    v.seeds_identical = comp.fallback.size() == plan.topoff.size();
    std::vector<std::vector<SeedEvent>> by_row(plan.topoff.size());
    for (const SeedEvent& e : comp.seeds)
      if (e.row < by_row.size()) by_row[e.row].push_back(e);
    for (std::size_t j = 0; j < plan.topoff.size() && v.seeds_identical; ++j) {
      if (comp.fallback[j]) continue;
      v.seeds_identical =
          expand_row(by_row[j], plan.lfsr_degree, plan.lfsr_taps, w) ==
          plan.topoff[j];
    }

    // Signature: the gate-level MISR must land exactly on the golden state
    // and the synthesized comparator must say so on the final cycle.
    v.misr_signature = ws.final_misr;
    v.signature_identical = comp.misr.enabled()
                                ? ws.final_misr == comp.golden && ws.sign_ok
                                : ws.final_misr == 0 && !ws.sign_ok;

    // Empirical aliasing audit over the applied stream: does any detected
    // fault's signature collide with the golden one?
    if (comp.misr.enabled())
      v.aliasing = misr_aliasing_check(fsim, ck, blocks, ws.applied.size(),
                                       comp.misr, fr.first_detected);
  }
  return v;
}

}  // namespace bist
