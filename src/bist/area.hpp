#pragma once
// Gate-cost area model for the mixed-scheme BIST hardware: the maximal-length
// LFSR, the top-off pattern storage (decoded-logic ROM rows and/or reseeding
// seed ROM), the phase controller (cycle counter + row decode + reseed
// selects), the per-input pattern muxing, and the MISR response compactor.
//
// Costs are expressed in gate equivalents (GE) with pluggable per-function
// weights (AreaModel), so reseeding-style architectures with different
// ROM/LFSR cost ratios can re-price the trade-off without touching the
// scheduler.  Two views are provided:
//
//   netlist_area()        exact accounting of an existing gate-level netlist
//                         (n-ary gates priced as n-1 two-input gates)
//   estimate_bist_area()  closed-form estimate of the BIST blocks for a
//                         candidate (LFSR length, top-off set) point, cheap
//                         enough to evaluate at every sweep point; it prices
//                         exactly the structure synthesize_bist_wrapper()
//                         emits (the differential test asserts the totals
//                         reconcile per block).  Two overloads: the legacy
//                         fully decoded ROM architecture, and the compressed
//                         architecture (LFSR reseeding + MISR) driven by a
//                         CompressedTopoff.
//
// Storage is tracked separately from logic: `rom_bits` (decoded pattern bits
// actually stored), `seed_rom_bits` (reseeding seeds x LFSR degree) and
// `state_bits` (LFSR + counter + MISR flip-flops) sum to `area_bits()`, the
// quantity the scheduler's weighted objective trades against test time.

#include <cstdint>
#include <span>
#include <vector>

#include "bist/compress.hpp"
#include "netlist/netlist.hpp"
#include "util/bitvec.hpp"

namespace bist {

/// Per-function gate-equivalent weights.  Defaults follow the usual
/// standard-cell convention (NAND2 = 1 GE).
struct AreaModel {
  double and2 = 1.0;      ///< 2-input AND/NAND/OR/NOR
  double xor2 = 2.0;      ///< 2-input XOR/XNOR
  double not1 = 0.5;      ///< inverter
  double buf1 = 0.5;      ///< buffer
  double flipflop = 4.0;  ///< one state bit (LFSR stage, counter bit)
};

/// GE cost of one gate under the model; n-ary gates decompose into n-1
/// two-input gates.  Inputs and constants are free.
double gate_area(const AreaModel& m, GateType t, std::size_t fanin_count);

/// Sum of gate_area over every logic gate of the netlist (primary inputs
/// excluded).  No flip-flop term: a combinational netlist has no state.
double netlist_area(const AreaModel& m, const Netlist& n);

/// Width of the BIST cycle counter: enough bits to count 0..total_cycles-1,
/// at least 1.
std::size_t counter_width(std::size_t total_cycles);

/// Area breakdown of one BIST configuration, in GE plus storage-bit counts.
struct BistArea {
  double lfsr = 0;        ///< state FFs + per-pattern feedback XOR networks
  double rom = 0;         ///< decoded-logic ROM OR plane (under compression:
                          ///< fallback rows only)
  double seed_rom = 0;    ///< seed-ROM OR planes (compressed mode)
  double controller = 0;  ///< counter FFs + increment + row decode + reseed
                          ///< load selects
  double mux = 0;         ///< per-CUT-input pattern muxing + reseed load
                          ///< muxes into the LFSR chain
  double misr = 0;        ///< MISR FFs + fold XORs + signature comparator
  /// Decoded pattern bits actually stored: patterns x width legacy; fallback
  /// rows x width under compression.
  std::size_t rom_bits = 0;
  std::size_t seed_rom_bits = 0;  ///< reseeding seeds x LFSR degree
  /// MISR degree — a reporting view of the compactor's flip-flops, already
  /// counted inside state_bits (NOT added again by area_bits()).
  std::size_t misr_bits = 0;
  std::size_t state_bits = 0;  ///< LFSR degree + counter width + MISR degree

  double total() const {
    return lfsr + rom + seed_rom + controller + mux + misr;
  }
  /// Storage bits: the scheduler's area term (a*test_time + b*area_bits).
  std::size_t area_bits() const {
    return rom_bits + seed_rom_bits + state_bits;
  }
};

/// Closed-form estimate for a candidate point, legacy fully decoded ROM
/// architecture.  `topoff` is the point's stored pattern set (its size and
/// set-bit count price the ROM exactly; the decode/mux terms are
/// structural).  `lfsr_patterns` is the pseudo-random phase length (it sizes
/// the cycle counter together with the top-off count).  Deterministic pure
/// function of its arguments.
BistArea estimate_bist_area(const AreaModel& m, unsigned lfsr_degree,
                            std::uint64_t lfsr_taps, std::size_t cut_inputs,
                            std::span<const BitVec> topoff,
                            std::size_t lfsr_patterns);

/// Compressed-architecture overload: prices the reseeding datapath (seed-ROM
/// OR planes, per-offset load muxes and selects), the decoded fallback rows,
/// and the MISR (fold XORs sized by comp.cut_outputs, comparator sized by
/// comp.golden) exactly as synthesize_bist_wrapper emits them.  Falls back
/// to the legacy estimate when comp.enabled is false.
BistArea estimate_bist_area(const AreaModel& m, unsigned lfsr_degree,
                            std::uint64_t lfsr_taps, std::size_t cut_inputs,
                            std::span<const BitVec> topoff,
                            std::size_t lfsr_patterns,
                            const CompressedTopoff& comp);

}  // namespace bist
