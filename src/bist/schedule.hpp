#pragma once
// Mixed-scheme BIST scheduler: pure selection logic over the per-length
// MixedSchemeResult family produced by run_mixed_sweep.  The sweep makes the
// search cheap; this layer reproduces the paper's length-allocation
// trade-off — every additional pseudo-random pattern is test time, every
// stored top-off pattern is ROM bits — and emits the hardware plan the
// wrapper synthesizer consumes.
//
// Two objectives:
//
//   KneeUnderBudget   among the candidate points whose total test time
//                     (LFSR length + top-off patterns) fits the budget,
//                     pick the knee of the stored-cost curve: the point with
//                     the largest normalized distance below the chord
//                     joining the shortest and longest candidates.  The
//                     y-axis is topoff_patterns(L) for legacy points and
//                     compressed area_bits(L) (seed ROM + fallback ROM +
//                     state bits) for compressed points — under reseeding,
//                     cost per stored pattern varies, so the knee can move.
//                     With a degenerate (flat or two-point) curve the
//                     tie-break minimizes normalized length + ROM, then
//                     length.
//   WeightedCost      minimize time_weight * test_time +
//                     area_weight * area_bits (ROM bits + LFSR/counter
//                     state bits under the area model).
//
// Selection is canonicalized over the *set* of swept lengths: duplicates
// collapse to their first occurrence (sweep points at equal lengths are
// bit-identical by the sweep's contract) and candidates are ordered by
// length, so the chosen plan is stable under duplicated and unsorted
// sweep-length lists — asserted by tests/test_bist_plan.cpp.

#include <cstdint>
#include <vector>

#include "bist/area.hpp"
#include "tpg/sweep.hpp"

namespace bist {

enum class ScheduleObjective : std::uint8_t {
  KneeUnderBudget,
  WeightedCost,
};

struct ScheduleOptions {
  ScheduleObjective objective = ScheduleObjective::KneeUnderBudget;
  /// Total test-time budget in cycles (LFSR + top-off); 0 = unbounded.  When
  /// no candidate fits, the minimum-test-time point is chosen.
  std::size_t test_time_budget = 0;
  double time_weight = 1.0;  ///< a: cost per test cycle (WeightedCost)
  double area_weight = 16.0; ///< b: cost per stored/state bit (WeightedCost)
  AreaModel area;
  /// LFSR parameters of the sweep that produced the points (the plan must
  /// regenerate the exact stream); defaults match MixedTpgOptions.
  unsigned lfsr_degree = 32;
  std::uint64_t lfsr_seed = 0xBADC0FFEu;
};

/// One candidate as the scheduler priced it (sorted by length, duplicates
/// collapsed) — the bench's trade-off curves and JSON come from this.
struct SchedulePoint {
  std::size_t point_index = 0;  ///< first occurrence in sweep.points
  std::size_t length = 0;
  std::size_t topoff_patterns = 0;
  std::size_t test_time = 0;
  std::size_t rom_bits = 0;       ///< decoded bits (fallback rows only when
                                  ///< the point is compressed)
  std::size_t seed_rom_bits = 0;  ///< reseeding seed bits (compressed)
  std::size_t misr_bits = 0;      ///< MISR flip-flops (compressed)
  std::size_t fallback_rows = 0;  ///< decoded top-off rows (compressed)
  std::size_t area_bits = 0;
  double cost = 0;            ///< weighted objective value
  double knee_distance = 0;   ///< normalized distance below the chord
  bool within_budget = true;
  double final_coverage = 0;
};

/// The chosen BIST hardware configuration, self-contained for synthesis.
struct BistPlan {
  std::size_t point_index = 0;  ///< into sweep.points
  std::size_t lfsr_patterns = 0;
  std::size_t topoff_patterns = 0;
  std::size_t test_time = 0;    ///< lfsr_patterns + topoff_patterns cycles
  std::size_t rom_bits = 0;
  double cost = 0;              ///< objective value at the chosen point
  double knee_distance = 0;
  BistArea area;                ///< closed-form model estimate
  AreaModel area_model;         ///< the weights the plan was priced under
  unsigned lfsr_degree = 0;
  std::uint64_t lfsr_taps = 0;
  std::uint64_t lfsr_seed = 0;
  std::size_t width = 0;        ///< CUT primary-input count
  std::vector<BitVec> topoff;   ///< stored patterns, application order
  /// Compression artifacts of the chosen point (seed schedules, fallback
  /// flags, MISR spec + golden signature); comp.enabled selects the
  /// compressed wrapper architecture in synthesis and verification.
  CompressedTopoff comp;
  double lfsr_coverage = 0;
  double final_coverage = 0;
  double final_coverage_weighted = 0;
  /// True when the plan was selected from LfsrOnly (anytime-degraded) sweep
  /// points because no Complete point existed — the plan has an empty
  /// top-off set and claims only the pseudo-random coverage.  A degraded
  /// plan is still a valid hardware configuration: the wrapper synthesized
  /// from it passes verify_wrapper, since the coverage it claims is exactly
  /// what the LFSR phase proved.
  bool degraded = false;
  /// Every candidate the selection considered, ascending length.
  std::vector<SchedulePoint> candidates;
};

/// Select the operating point.  `width` is the CUT's primary-input count
/// (= pattern width; prices the ROM).  Throws std::invalid_argument on an
/// empty sweep, mismatched lengths/points arrays, or a sweep with no usable
/// point (every point Skipped — run_mixed_sweep's anytime floor guarantees
/// this never happens for its own results).  Deterministic, and invariant
/// under permutation/duplication of the sweep's length list.
///
/// Anytime selection ladder: Complete points are preferred — when any
/// exists the selection runs over Complete points only and is bit-identical
/// to the pre-deadline behavior.  Otherwise the selection runs over the
/// LfsrOnly points and the plan is marked `degraded`.
BistPlan schedule_bist(const MixedSweepResult& sweep, std::size_t width,
                       const ScheduleOptions& opt = {});

}  // namespace bist
