#include "bist/synth.hpp"

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "netlist/builder.hpp"

namespace bist {
namespace {

std::string idx_name(const char* prefix, std::size_t i) {
  return std::string(prefix) + std::to_string(i);
}

std::string pair_name(const char* prefix, std::size_t i, std::size_t j) {
  return std::string(prefix) + std::to_string(i) + "_" + std::to_string(j);
}

}  // namespace

BistSynthResult synthesize_bist_wrapper(const Netlist& cut,
                                        const BistPlan& plan,
                                        const Deadline* deadline) {
  if (!cut.frozen())
    throw std::invalid_argument("synthesize_bist_wrapper: CUT not frozen");
  const std::size_t w = cut.input_count();
  if (w != plan.width)
    throw std::invalid_argument(
        "synthesize_bist_wrapper: plan width does not match the CUT");
  const std::size_t T = plan.topoff.size();
  const std::size_t total = plan.lfsr_patterns + T;
  if (total == 0)
    throw std::invalid_argument("synthesize_bist_wrapper: zero-cycle plan");
  const unsigned D = plan.lfsr_degree;
  const std::size_t C = counter_width(total);
  const CompressedTopoff& comp = plan.comp;
  const bool compressed = comp.enabled;
  const unsigned K = compressed ? comp.misr.degree : 0;
  if (compressed && comp.fallback.size() != T)
    throw std::invalid_argument(
        "synthesize_bist_wrapper: compression row flags do not match topoff");

  BistSynthResult res;
  res.counter_bits = C;
  const AreaModel& m = plan.area_model;
  NetlistBuilder b(cut.name() + "_bist");

  // Cooperative mid-stage stop: on a hit the caller gets the stop status and
  // an empty wrapper (the half-built NetlistBuilder is simply dropped —
  // forward references never get resolved because build() never runs).
  const auto stopped = [&] {
    if (!deadline || !deadline->should_stop()) return false;
    res.status = deadline->stop_status("synth");
    return true;
  };

  // Every emitted BIST gate goes through one of these, so res.actual is the
  // exact price of the generated test logic under the plan's model.
  auto emit = [&](double* bucket, std::string name, GateType t,
                  std::vector<std::string> fanins) {
    *bucket += gate_area(m, t, fanins.size());
    ++res.bist_gates;
    b.define(std::move(name), t, std::move(fanins));
  };

  // --- state inputs --------------------------------------------------------
  for (unsigned i = 0; i < D; ++i) b.input(idx_name("bist_lfsr_s", i));
  for (std::size_t i = 0; i < C; ++i) b.input(idx_name("bist_cnt_s", i));
  for (unsigned i = 0; i < K; ++i) b.input(idx_name("bist_misr_s", i));
  res.actual.state_bits = D + C + K;
  res.actual.misr_bits = K;
  res.actual.lfsr += double(D) * m.flipflop;
  res.actual.controller += double(C) * m.flipflop;
  res.actual.misr += double(K) * m.flipflop;

  // Reseed events grouped by unroll offset (rows within an offset keep seed
  // order, i.e. ascending row).  The load muxes below reference the row
  // decodes "bist_row<j>" by name before they are defined — NetlistBuilder
  // resolves forward references at build().
  std::map<std::uint32_t, std::vector<const SeedEvent*>> by_offset;
  if (compressed)
    for (const SeedEvent& e : comp.seeds) by_offset[e.offset].push_back(&e);

  // --- LFSR unrolling: w shifts, one feedback XOR each ---------------------
  // stage[j] holds the net currently occupying LFSR bit j; a shift renames
  // stage[j-1] -> stage[j] (wiring, no gate) and feeds the XOR of the tapped
  // stages into bit 0, exactly Lfsr::step().  Pattern bit t is the pre-shift
  // output stage (bit D-1) of step t.
  std::vector<std::string> stage(D);
  for (unsigned j = 0; j < D; ++j) stage[j] = idx_name("bist_lfsr_s", j);
  std::vector<std::string> pattern(w);
  for (std::size_t t = 0; t < w; ++t) {
    if (stopped()) return res;
    // Reseeding load mux: when any row reloads the register at this offset,
    // every register bit becomes OR(AND(sel', cur), seed_col) — the seed
    // column is an OR over the (one-hot) decodes of the rows whose seed bit
    // is set, so outside a load it is 0 and the keep leg passes the chain.
    if (const auto it = by_offset.find(static_cast<std::uint32_t>(t));
        it != by_offset.end()) {
      const std::vector<const SeedEvent*>& evs = it->second;
      std::string sel;
      if (evs.size() >= 2) {
        sel = idx_name("bist_ld", t);
        std::vector<std::string> rows;
        for (const SeedEvent* e : evs)
          rows.push_back(idx_name("bist_row", e->row));
        emit(&res.actual.controller, sel, GateType::Or, std::move(rows));
      } else {
        sel = idx_name("bist_row", evs[0]->row);
      }
      const std::string sel_inv = idx_name("bist_ldn", t);
      emit(&res.actual.controller, sel_inv, GateType::Not, {sel});
      for (unsigned bb = 0; bb < D; ++bb) {
        std::vector<std::string> seed_rows;
        for (const SeedEvent* e : evs)
          if ((e->seed >> bb) & 1)
            seed_rows.push_back(idx_name("bist_row", e->row));
        const std::string merged = pair_name("bist_ldm", t, bb);
        if (seed_rows.empty()) {
          emit(&res.actual.mux, merged, GateType::And, {sel_inv, stage[bb]});
        } else {
          const std::string leg = pair_name("bist_ldl", t, bb);
          emit(&res.actual.mux, leg, GateType::And, {sel_inv, stage[bb]});
          std::string seed_col;
          if (seed_rows.size() >= 2) {
            seed_col = pair_name("bist_seed", t, bb);
            emit(&res.actual.seed_rom, seed_col, GateType::Or,
                 std::move(seed_rows));
          } else {
            seed_col = seed_rows[0];
          }
          emit(&res.actual.mux, merged, GateType::Or, {leg, seed_col});
        }
        stage[bb] = merged;
      }
    }
    pattern[t] = stage[D - 1];
    std::vector<std::string> tapped;
    for (unsigned j = 0; j < D; ++j)
      if ((plan.lfsr_taps >> j) & 1) tapped.push_back(stage[j]);
    const std::string fb = idx_name("bist_lfsr_fb", t);
    if (tapped.size() >= 2) emit(&res.actual.lfsr, fb, GateType::Xor, tapped);
    else emit(&res.actual.lfsr, fb, GateType::Buf, tapped);
    for (unsigned j = D; j-- > 1;) stage[j] = stage[j - 1];
    stage[0] = fb;
  }
  for (unsigned j = 0; j < D; ++j)
    emit(&res.actual.lfsr, idx_name("bist_lfsr_n", j), GateType::Buf,
         {stage[j]});

  // --- cycle counter: ripple increment -------------------------------------
  std::vector<std::string> cnt(C), cnt_next(C);
  for (std::size_t i = 0; i < C; ++i) cnt[i] = idx_name("bist_cnt_s", i);
  cnt_next[0] = "bist_cnt_x0";
  emit(&res.actual.controller, cnt_next[0], GateType::Not, {cnt[0]});
  std::string carry = cnt[0];  // carry into bit 1 (wiring, no gate)
  for (std::size_t j = 1; j < C; ++j) {
    cnt_next[j] = idx_name("bist_cnt_x", j);
    emit(&res.actual.controller, cnt_next[j], GateType::Xor, {cnt[j], carry});
    if (j + 1 < C) {
      const std::string k = idx_name("bist_cnt_k", j);
      emit(&res.actual.controller, k, GateType::And, {cnt[j], carry});
      carry = k;
    }
  }
  for (std::size_t i = 0; i < C; ++i)
    emit(&res.actual.controller, idx_name("bist_cnt_n", i), GateType::Buf,
         {cnt_next[i]});

  // --- ROM rows + phase controller -----------------------------------------
  // Row j selects at counter value lfsr_patterns + j (equality decode over
  // the counter literals; inverters are created once per complemented bit).
  std::vector<std::string> rowsel(T);
  std::vector<std::string> cnt_inv(C);
  auto inv_of = [&](std::size_t i) {
    if (cnt_inv[i].empty()) {
      cnt_inv[i] = idx_name("bist_cnt_inv", i);
      emit(&res.actual.controller, cnt_inv[i], GateType::Not, {cnt[i]});
    }
    return cnt_inv[i];
  };
  for (std::size_t j = 0; j < T; ++j) {
    if (stopped()) return res;
    const std::size_t addr = plan.lfsr_patterns + j;
    std::vector<std::string> lits;
    for (std::size_t i = 0; i < C; ++i)
      lits.push_back((addr >> i) & 1 ? cnt[i] : inv_of(i));
    rowsel[j] = idx_name("bist_row", j);
    if (lits.size() >= 2)
      emit(&res.actual.controller, rowsel[j], GateType::And, std::move(lits));
    else
      emit(&res.actual.controller, rowsel[j], GateType::Buf, std::move(lits));
  }

  // Phase select: legacy gates every CUT input between the free-running
  // chain and the decoded ROM; compressed only the FALLBACK rows leave the
  // chain (a seeded row's pattern IS the chain, via its load muxes above).
  std::vector<std::string> det_rows;
  if (compressed) {
    for (std::size_t j = 0; j < T; ++j)
      if (comp.fallback[j]) det_rows.push_back(rowsel[j]);
  } else {
    det_rows = rowsel;
  }
  std::string phase_inv;  // high outside the decoded-row cycles
  if (!det_rows.empty()) {
    if (det_rows.size() >= 2)
      emit(&res.actual.mux, "bist_det", GateType::Or, det_rows);
    else
      emit(&res.actual.mux, "bist_det", GateType::Buf, {det_rows[0]});
    phase_inv = "bist_pr";
    emit(&res.actual.mux, phase_inv, GateType::Not, {"bist_det"});
  }

  // --- pattern muxing into the CUT copy ------------------------------------
  // The mux output takes the CUT input's (prefixed) net name, so the copied
  // CUT gates below reference it without any remapping table.
  for (std::size_t i = 0; i < w; ++i) {
    if (stopped()) return res;
    const std::string cut_in =
        "cut_" + cut.gate(cut.inputs()[i]).name;
    if (det_rows.empty()) {
      emit(&res.actual.mux, cut_in, GateType::Buf, {pattern[i]});
      continue;
    }
    std::vector<std::string> rom_rows;
    for (std::size_t j = 0; j < T; ++j)
      if ((!compressed || comp.fallback[j]) && plan.topoff[j].get(i))
        rom_rows.push_back(rowsel[j]);
    const std::string leg = idx_name("bist_sel", i);
    if (rom_rows.empty()) {
      // No stored pattern drives this input high; the gated LFSR leg IS the
      // CUT input (it is 0 throughout the ROM phase).
      emit(&res.actual.mux, cut_in, GateType::And, {phase_inv, pattern[i]});
      continue;
    }
    emit(&res.actual.mux, leg, GateType::And, {phase_inv, pattern[i]});
    std::string rom_col;
    if (rom_rows.size() >= 2) {
      rom_col = idx_name("bist_rom", i);
      emit(&res.actual.rom, rom_col, GateType::Or, std::move(rom_rows));
    } else {
      rom_col = rom_rows[0];
    }
    emit(&res.actual.mux, cut_in, GateType::Or, {leg, rom_col});
  }

  // --- CUT copy -------------------------------------------------------------
  // Poll every 4096 gates: one chunk of plain gate copies bounds the stop
  // latency, and a netlist large enough to matter hits many chunks.
  for (GateId g = 0; g < cut.gate_count(); ++g) {
    if ((g & 0xfff) == 0 && stopped()) return res;
    const Gate& gg = cut.gate(g);
    if (gg.type == GateType::Input) continue;  // driven by the mux above
    std::vector<std::string> fis;
    fis.reserve(gg.fanins.size());
    for (GateId f : gg.fanins) fis.push_back("cut_" + cut.gate(f).name);
    b.define("cut_" + gg.name, gg.type, std::move(fis));
  }

  // --- MISR + signature comparator (compressed architecture) ---------------
  // One MISR cycle per applied pattern: next state = shifted register (tap
  // parity into bit 0) XOR the folded CUT outputs (output o into stage
  // comp.misr.cls(o), the audited assignment).  bist_sign_ok compares the
  // next state against the plan's golden signature — meaningful on the last
  // test cycle.
  if (K > 0) {
    if (stopped()) return res;
    std::vector<std::string> tapped;
    for (unsigned j = 0; j < K; ++j)
      if ((comp.misr.taps >> j) & 1)
        tapped.push_back(idx_name("bist_misr_s", j));
    const std::string mfb = "bist_misr_fb";
    if (tapped.size() >= 2)
      emit(&res.actual.misr, mfb, GateType::Xor, std::move(tapped));
    else
      emit(&res.actual.misr, mfb, GateType::Buf, std::move(tapped));
    std::vector<std::string> misr_next(K);
    for (unsigned cc = 0; cc < K; ++cc) {
      std::vector<std::string> fis;
      fis.push_back(cc == 0 ? mfb : idx_name("bist_misr_s", cc - 1));
      for (std::size_t o = 0; o < cut.outputs().size(); ++o)
        if (comp.misr.cls(o) == cc)
          fis.push_back("cut_" + cut.gate(cut.outputs()[o]).name);
      misr_next[cc] = idx_name("bist_misr_n", cc);
      const GateType mt = fis.size() >= 2 ? GateType::Xor : GateType::Buf;
      emit(&res.actual.misr, misr_next[cc], mt, std::move(fis));
    }
    std::vector<std::string> lits(K);
    for (unsigned cc = 0; cc < K; ++cc) {
      if ((comp.golden >> cc) & 1) {
        lits[cc] = misr_next[cc];
      } else {
        lits[cc] = idx_name("bist_misr_cmp", cc);
        emit(&res.actual.misr, lits[cc], GateType::Not, {misr_next[cc]});
      }
    }
    emit(&res.actual.misr, "bist_sign_ok",
         K >= 2 ? GateType::And : GateType::Buf, std::move(lits));
  }

  // --- primary outputs ------------------------------------------------------
  for (GateId o : cut.outputs()) b.output("cut_" + cut.gate(o).name);
  for (unsigned j = 0; j < D; ++j) b.output(idx_name("bist_lfsr_n", j));
  for (std::size_t i = 0; i < C; ++i) b.output(idx_name("bist_cnt_n", i));
  for (unsigned j = 0; j < K; ++j) b.output(idx_name("bist_misr_n", j));
  if (K > 0) b.output("bist_sign_ok");

  if (compressed) {
    res.actual.rom_bits = comp.fallback_rows() * w;
    res.actual.seed_rom_bits = comp.seed_rom_bits();
  } else {
    res.actual.rom_bits = T * w;
  }
  res.wrapper = b.build();
  return res;
}

}  // namespace bist
