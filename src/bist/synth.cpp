#include "bist/synth.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "netlist/builder.hpp"

namespace bist {
namespace {

std::string idx_name(const char* prefix, std::size_t i) {
  return std::string(prefix) + std::to_string(i);
}

}  // namespace

BistSynthResult synthesize_bist_wrapper(const Netlist& cut,
                                        const BistPlan& plan) {
  if (!cut.frozen())
    throw std::invalid_argument("synthesize_bist_wrapper: CUT not frozen");
  const std::size_t w = cut.input_count();
  if (w != plan.width)
    throw std::invalid_argument(
        "synthesize_bist_wrapper: plan width does not match the CUT");
  const std::size_t T = plan.topoff.size();
  const std::size_t total = plan.lfsr_patterns + T;
  if (total == 0)
    throw std::invalid_argument("synthesize_bist_wrapper: zero-cycle plan");
  const unsigned D = plan.lfsr_degree;
  const std::size_t C = counter_width(total);

  BistSynthResult res;
  res.counter_bits = C;
  const AreaModel& m = plan.area_model;
  NetlistBuilder b(cut.name() + "_bist");

  // Every emitted BIST gate goes through one of these, so res.actual is the
  // exact price of the generated test logic under the plan's model.
  auto emit = [&](double* bucket, std::string name, GateType t,
                  std::vector<std::string> fanins) {
    *bucket += gate_area(m, t, fanins.size());
    ++res.bist_gates;
    b.define(std::move(name), t, std::move(fanins));
  };

  // --- state inputs --------------------------------------------------------
  for (unsigned i = 0; i < D; ++i) b.input(idx_name("bist_lfsr_s", i));
  for (std::size_t i = 0; i < C; ++i) b.input(idx_name("bist_cnt_s", i));
  res.actual.state_bits = D + C;
  res.actual.lfsr += double(D) * m.flipflop;
  res.actual.controller += double(C) * m.flipflop;

  // --- LFSR unrolling: w shifts, one feedback XOR each ---------------------
  // stage[j] holds the net currently occupying LFSR bit j; a shift renames
  // stage[j-1] -> stage[j] (wiring, no gate) and feeds the XOR of the tapped
  // stages into bit 0, exactly Lfsr::step().  Pattern bit t is the pre-shift
  // output stage (bit D-1) of step t.
  std::vector<std::string> stage(D);
  for (unsigned j = 0; j < D; ++j) stage[j] = idx_name("bist_lfsr_s", j);
  std::vector<std::string> pattern(w);
  for (std::size_t t = 0; t < w; ++t) {
    pattern[t] = stage[D - 1];
    std::vector<std::string> tapped;
    for (unsigned j = 0; j < D; ++j)
      if ((plan.lfsr_taps >> j) & 1) tapped.push_back(stage[j]);
    const std::string fb = idx_name("bist_lfsr_fb", t);
    if (tapped.size() >= 2) emit(&res.actual.lfsr, fb, GateType::Xor, tapped);
    else emit(&res.actual.lfsr, fb, GateType::Buf, tapped);
    for (unsigned j = D; j-- > 1;) stage[j] = stage[j - 1];
    stage[0] = fb;
  }
  for (unsigned j = 0; j < D; ++j)
    emit(&res.actual.lfsr, idx_name("bist_lfsr_n", j), GateType::Buf,
         {stage[j]});

  // --- cycle counter: ripple increment -------------------------------------
  std::vector<std::string> cnt(C), cnt_next(C);
  for (std::size_t i = 0; i < C; ++i) cnt[i] = idx_name("bist_cnt_s", i);
  cnt_next[0] = "bist_cnt_x0";
  emit(&res.actual.controller, cnt_next[0], GateType::Not, {cnt[0]});
  std::string carry = cnt[0];  // carry into bit 1 (wiring, no gate)
  for (std::size_t j = 1; j < C; ++j) {
    cnt_next[j] = idx_name("bist_cnt_x", j);
    emit(&res.actual.controller, cnt_next[j], GateType::Xor, {cnt[j], carry});
    if (j + 1 < C) {
      const std::string k = idx_name("bist_cnt_k", j);
      emit(&res.actual.controller, k, GateType::And, {cnt[j], carry});
      carry = k;
    }
  }
  for (std::size_t i = 0; i < C; ++i)
    emit(&res.actual.controller, idx_name("bist_cnt_n", i), GateType::Buf,
         {cnt_next[i]});

  // --- ROM rows + phase controller -----------------------------------------
  // Row j selects at counter value lfsr_patterns + j (equality decode over
  // the counter literals; inverters are created once per complemented bit).
  std::vector<std::string> rowsel(T);
  std::vector<std::string> cnt_inv(C);
  auto inv_of = [&](std::size_t i) {
    if (cnt_inv[i].empty()) {
      cnt_inv[i] = idx_name("bist_cnt_inv", i);
      emit(&res.actual.controller, cnt_inv[i], GateType::Not, {cnt[i]});
    }
    return cnt_inv[i];
  };
  for (std::size_t j = 0; j < T; ++j) {
    const std::size_t addr = plan.lfsr_patterns + j;
    std::vector<std::string> lits;
    for (std::size_t i = 0; i < C; ++i)
      lits.push_back((addr >> i) & 1 ? cnt[i] : inv_of(i));
    rowsel[j] = idx_name("bist_row", j);
    if (lits.size() >= 2)
      emit(&res.actual.controller, rowsel[j], GateType::And, std::move(lits));
    else
      emit(&res.actual.controller, rowsel[j], GateType::Buf, std::move(lits));
  }

  std::string phase_inv;  // high during the pseudo-random phase
  if (T > 0) {
    if (T >= 2) emit(&res.actual.mux, "bist_det", GateType::Or, rowsel);
    else emit(&res.actual.mux, "bist_det", GateType::Buf, {rowsel[0]});
    phase_inv = "bist_pr";
    emit(&res.actual.mux, phase_inv, GateType::Not, {"bist_det"});
  }

  // --- pattern muxing into the CUT copy ------------------------------------
  // The mux output takes the CUT input's (prefixed) net name, so the copied
  // CUT gates below reference it without any remapping table.
  for (std::size_t i = 0; i < w; ++i) {
    const std::string cut_in =
        "cut_" + cut.gate(cut.inputs()[i]).name;
    if (T == 0) {
      emit(&res.actual.mux, cut_in, GateType::Buf, {pattern[i]});
      continue;
    }
    std::vector<std::string> rom_rows;
    for (std::size_t j = 0; j < T; ++j)
      if (plan.topoff[j].get(i)) rom_rows.push_back(rowsel[j]);
    const std::string leg = idx_name("bist_sel", i);
    if (rom_rows.empty()) {
      // No stored pattern drives this input high; the gated LFSR leg IS the
      // CUT input (it is 0 throughout the ROM phase).
      emit(&res.actual.mux, cut_in, GateType::And, {phase_inv, pattern[i]});
      continue;
    }
    emit(&res.actual.mux, leg, GateType::And, {phase_inv, pattern[i]});
    std::string rom_col;
    if (rom_rows.size() >= 2) {
      rom_col = idx_name("bist_rom", i);
      emit(&res.actual.rom, rom_col, GateType::Or, std::move(rom_rows));
    } else {
      rom_col = rom_rows[0];
    }
    emit(&res.actual.mux, cut_in, GateType::Or, {leg, rom_col});
  }

  // --- CUT copy -------------------------------------------------------------
  for (GateId g = 0; g < cut.gate_count(); ++g) {
    const Gate& gg = cut.gate(g);
    if (gg.type == GateType::Input) continue;  // driven by the mux above
    std::vector<std::string> fis;
    fis.reserve(gg.fanins.size());
    for (GateId f : gg.fanins) fis.push_back("cut_" + cut.gate(f).name);
    b.define("cut_" + gg.name, gg.type, std::move(fis));
  }

  // --- primary outputs ------------------------------------------------------
  for (GateId o : cut.outputs()) b.output("cut_" + cut.gate(o).name);
  for (unsigned j = 0; j < D; ++j) b.output(idx_name("bist_lfsr_n", j));
  for (std::size_t i = 0; i < C; ++i) b.output(idx_name("bist_cnt_n", i));

  res.actual.rom_bits = T * w;
  res.wrapper = b.build();
  return res;
}

}  // namespace bist
