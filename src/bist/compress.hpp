#pragma once
// Test-data compression layer: LFSR reseeding on the input side, MISR
// signature compaction on the output side — the architecture move that
// replaces the fully decoded top-off ROM (width bits per stored pattern)
// with degree-bit seeds expanded by the pattern generator itself, after the
// asymmetric-polynomial reseeding exemplar (arXiv:1711.08458), with the
// schedule selected under the compressed cost as in hybrid-BIST scheduling
// (arXiv:1711.08974).
//
// Input side (seeds).  A top-off pattern of width w is w consecutive stream
// bits of the wrapper's unrolled LFSR.  Stream bit t after a seed load is a
// known GF(2) linear function of the seed (transition-matrix expansion, see
// util/gf2), so the care bits of a PODEM cube become linear equations on the
// seed: compress_cube() walks the cube in shift order through an incremental
// eliminator.  The first `degree` equations after a load are identity rows
// — a conflict can only appear at shift >= load + degree — so when the
// system goes inconsistent the solver reseeds at the last degree-aligned
// window boundary and always terminates.  Each row therefore carries one
// seed at offset 0 plus extra seeds at offsets k*degree only when one seed
// cannot cover the cube.  Free variables take bits from the caller's X-fill
// source, so seed expansion doubles as the random fill of the mixed scheme.
// Rows whose seed schedule would store at least as many bits as the decoded
// pattern (in particular any CUT with width <= degree) fall back to a
// decoded ROM row, priced and synthesized exactly like the legacy path.
//
// Output side (MISR).  A degree-K multiple-input signature register with a
// primitive feedback polynomial folds the CUT outputs (output o XORs into
// stage o mod K) every cycle; the golden signature is computed by good-
// machine simulation over the exact applied stream.  Aliasing: a detected
// fault escapes iff its accumulated output-difference contribution is zero
// — probability 2^-K for a random difference stream — and
// misr_aliasing_check() verifies *empirically* that no detected fault in
// the final fault list aliases on the applied set, using the MISR's
// linearity (signature_fault = golden XOR sum over diff bits of
// M^(cycles-1-t) * fold(output)).

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "fault/fault_sim.hpp"
#include "sim/kernel.hpp"
#include "sim/ternary_sim.hpp"
#include "util/bitvec.hpp"
#include "util/gf2.hpp"

namespace bist {

// ---------------------------------------------------------------------------
// MISR
// ---------------------------------------------------------------------------

/// MISR configuration: Fibonacci shift register in the Lfsr class's bit
/// convention (stage 0 receives the tap parity), degree 0 = no MISR.
///
/// `fold` is the output-to-stage assignment.  Empty means the natural
/// modulo fold (output o into stage o mod degree).  The natural fold has a
/// structural blind spot: a fault observed *only* on pairs of outputs that
/// share a stage and flip simultaneously injects nothing at all, and
/// escapes at any stream length regardless of the 2^-degree bound — wide
/// bus-structured CUTs (outputs o and o+degree in one cone) hit this in
/// practice.  choose_misr_fold() audits a deterministic candidate family of
/// assignments against the real fault list and picks one with no escapes.
struct MisrSpec {
  unsigned degree = 0;
  std::uint64_t taps = 0;
  /// Per-output stage assignment (values < degree); empty = o mod degree.
  std::vector<std::uint16_t> fold;
  bool enabled() const { return degree != 0; }
  /// Stage receiving output o.
  unsigned cls(std::size_t o) const {
    return fold.empty() ? static_cast<unsigned>(o % degree) : fold[o];
  }
};

/// Signature-register degree for a CUT with `outputs` primary outputs:
/// clamp(outputs, 16, 24).  Small enough not to dominate tiny wrappers,
/// large enough that the 2^-degree aliasing bound makes escapes on the
/// surrogate family's fault lists improbable (checked empirically; a floor
/// of 8 measurably aliases — ~350 checked faults at 2^-8 expect more than
/// one temporal escape, and c432s shows exactly that).
unsigned misr_degree_for(std::size_t outputs);

/// misr_degree_for() with the matching primitive feedback taps.
MisrSpec misr_spec_for(std::size_t outputs);

/// Materialize m's output-to-stage assignment as an explicit map.
std::vector<std::uint16_t> fold_map(const MisrSpec& m, std::size_t outputs);

/// Fold one cycle's CUT output values into the injection word: output o
/// XORs into stage m.cls(o).
std::uint64_t misr_fold(const MisrSpec& m, const BitVec& outputs);

/// One MISR cycle: shift with feedback parity, XOR the injection word.
std::uint64_t misr_step(const MisrSpec& m, std::uint64_t state,
                        std::uint64_t inject);

/// Golden signature: good-machine simulation of `cut` over the applied
/// pattern stream (already packed into blocks; each block's `count` gives
/// its live lanes), folding every cycle's outputs, starting from `state` —
/// chainable, so LFSR phase and top-off phase compose without materializing
/// one concatenated stream.
std::uint64_t misr_signature(const SimKernel& cut,
                             std::span<const PatternBlock> blocks,
                             const MisrSpec& m, std::uint64_t state = 0);

/// Convenience overload over unpacked patterns, starting from state 0.
std::uint64_t misr_signature(const SimKernel& cut,
                             std::span<const BitVec> applied,
                             const MisrSpec& m);

/// Empirical aliasing audit over an applied pattern set.
struct AliasingReport {
  std::size_t detected_checked = 0;  ///< faults with first_detected >= 0
  std::size_t escapes = 0;           ///< detected faults whose signature
                                     ///< equals the golden signature
  double bound = 0;                  ///< 2^-degree single-fault bound
};

/// For every detected fault (first_detected[i] >= 0, from a run over the
/// same `blocks`), accumulate its output-difference MISR contribution and
/// count the faults whose contribution cancels to zero (signature ==
/// golden).  Exact — per-output difference words come from the fault
/// simulator's propagation engine — and independent of the golden value
/// itself by MISR linearity.  `patterns` is the stream length (the last
/// block may be partial).
AliasingReport misr_aliasing_check(FaultSimulator& fsim, const SimKernel& cut,
                                   std::span<const PatternBlock> blocks,
                                   std::size_t patterns, const MisrSpec& m,
                                   std::span<const std::int64_t> first_detected);

/// Audited fold selection: evaluate a deterministic family of output-to-
/// stage assignments (the natural fold, diagonal staggers, then hashed
/// assignments) against the detected faults of the given stream — all in
/// ONE fault-propagation sweep — and return `base` with the first
/// assignment whose empirical escape count is zero (preferring the natural
/// fold, so clean CUTs keep the canonical wiring).  When no candidate is
/// clean the one with the fewest escapes wins; verify_wrapper/bench report
/// the residue honestly.  Callers audit the exact applied stream of the
/// point being signed off — in particular including the top-off patterns,
/// since the structural escapers are random-pattern-resistant faults the
/// pseudo-random phase never detects (and so never audits).
MisrSpec choose_misr_fold(FaultSimulator& fsim, const SimKernel& cut,
                          std::span<const PatternBlock> blocks,
                          std::size_t patterns,
                          std::span<const std::int64_t> first_detected,
                          MisrSpec base);

// ---------------------------------------------------------------------------
// Seed schedules
// ---------------------------------------------------------------------------

/// One reseed event: load `seed` into the LFSR when top-off row `row` is
/// active, at unroll offset `offset` (0 = before the row's first stream
/// bit; always a multiple of the LFSR degree).
struct SeedEvent {
  std::uint32_t row = 0;
  std::uint32_t offset = 0;
  std::uint64_t seed = 0;
};

/// Compressed representation of one scheduled point's top-off set, carried
/// from the sweep through the plan into synthesis and verification.  The
/// stored patterns themselves stay in MixedSchemeResult/BistPlan::topoff —
/// for seeded rows they are *defined* as the seed expansion (bit-identical
/// by construction, re-proved by verify_wrapper).
struct CompressedTopoff {
  bool enabled = false;
  unsigned degree = 0;       ///< seed width = the plan's LFSR degree
  std::vector<SeedEvent> seeds;        ///< sorted by (row, offset)
  std::vector<std::uint8_t> fallback;  ///< per row: 1 = decoded ROM row
  MisrSpec misr;
  std::uint64_t golden = 0;  ///< expected signature after the full stream
  /// CUT primary-output count (fixes the MISR fold structure, so the area
  /// model can price the injection XORs without the kernel in hand).
  std::size_t cut_outputs = 0;
  double solve_seconds = 0;

  std::uint64_t seed_rom_bits() const { return seeds.size() * degree; }
  std::size_t fallback_rows() const;
  /// Distinct reseed offsets in use, ascending (one load mux per offset).
  std::vector<std::uint32_t> offsets_used() const;
};

/// compress_cube() result for one top-off row.
struct RowCompression {
  BitVec pattern;                ///< stored/applied pattern (expansion or
                                 ///< decoded fallback fill)
  std::vector<SeedEvent> seeds;  ///< offsets ascending; row field left 0
  bool fallback = false;
};

/// Solve one PODEM cube into a reseeding schedule (or a decoded fallback
/// row when seeds would not save storage).  `free_bit` supplies X-fill bits:
/// consumed `degree` times per seed (seeded rows, segment order then
/// variable order; only the free-variable bits take effect) or once per X
/// cube bit (fallback rows, cube order) — deterministic either way.
RowCompression compress_cube(std::span<const Ternary> cube, unsigned degree,
                             std::uint64_t taps,
                             const std::function<bool()>& free_bit);

/// Re-expand a row's seed schedule through the LFSR: `width` stream bits,
/// reloading at each event's offset.  verify_wrapper uses this to prove the
/// stored top-off set is exactly the seed expansion.
BitVec expand_row(std::span<const SeedEvent> seeds, unsigned degree,
                  std::uint64_t taps, std::size_t width);

}  // namespace bist
