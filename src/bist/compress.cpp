#include "bist/compress.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "sim/bitpar_sim.hpp"
#include "tpg/lfsr.hpp"

namespace bist {
namespace {

std::uint64_t degree_mask(unsigned degree) {
  return degree >= 64 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << degree) - 1;
}

/// One raw register step (Lfsr::step() without the class's nonzero-seed
/// invariant — a solved seed may legitimately be all-zero).
std::uint64_t raw_step(std::uint64_t s, unsigned degree, std::uint64_t taps) {
  const std::uint64_t fb = std::uint64_t(std::popcount(s & taps) & 1);
  return ((s << 1) | fb) & degree_mask(degree);
}

}  // namespace

// ---------------------------------------------------------------------------
// MISR
// ---------------------------------------------------------------------------

unsigned misr_degree_for(std::size_t outputs) {
  return static_cast<unsigned>(std::clamp<std::size_t>(outputs, 16, 24));
}

MisrSpec misr_spec_for(std::size_t outputs) {
  MisrSpec m;
  m.degree = misr_degree_for(outputs);
  m.taps = Lfsr::primitive_taps(m.degree);
  return m;
}

std::uint64_t misr_fold(const MisrSpec& m, const BitVec& outputs) {
  std::uint64_t inj = 0;
  for (std::size_t o = 0; o < outputs.size(); ++o)
    inj ^= std::uint64_t(outputs.get(o)) << m.cls(o);
  return inj;
}

std::uint64_t misr_step(const MisrSpec& m, std::uint64_t state,
                        std::uint64_t inject) {
  return raw_step(state, m.degree, m.taps) ^ inject;
}

std::uint64_t misr_signature(const SimKernel& cut,
                             std::span<const PatternBlock> blocks,
                             const MisrSpec& m, std::uint64_t state) {
  const auto outs = cut.outputs();
  KernelSim sim(cut);
  for (const PatternBlock& blk : blocks) {
    sim.simulate(blk);
    for (std::size_t lane = 0; lane < blk.count; ++lane) {
      std::uint64_t inj = 0;
      for (std::size_t o = 0; o < outs.size(); ++o)
        inj ^= ((sim.value_at(outs[o]) >> lane) & 1) << m.cls(o);
      state = misr_step(m, state, inj);
    }
  }
  return state;
}

std::uint64_t misr_signature(const SimKernel& cut,
                             std::span<const BitVec> applied,
                             const MisrSpec& m) {
  return misr_signature(cut, pack_all(applied, cut.inputs().size()), m, 0);
}

namespace {

/// Audit core shared by misr_aliasing_check and choose_misr_fold: ONE
/// fault-propagation sweep over the stream, evaluating every candidate
/// output-to-stage assignment's escape count.  Returns per-candidate escape
/// totals; `checked` gets the number of detected faults audited.
std::vector<std::size_t> audit_fold_maps(
    FaultSimulator& fsim, const SimKernel& cut,
    std::span<const PatternBlock> blocks, std::size_t patterns,
    unsigned K, std::uint64_t taps,
    std::span<const std::int64_t> first_detected,
    std::span<const std::vector<std::uint16_t>> maps, std::size_t* checked) {
  const auto outs = cut.outputs();
  const std::size_t n_blocks = (patterns + 63) / 64;
  if (blocks.size() < n_blocks)
    throw std::invalid_argument("misr fold audit: blocks short of stream");

  // Backward transition powers, bitsliced for 64-lane accumulation:
  // mask[block][c][k] bit `lane` = bit k of M^(patterns-1-t) * e_c at cycle
  // t = block*64 + lane.  A fault's contribution bit k then accumulates as
  // parity(class_diff_word & mask[...][c][k]) — one AND+popcount per
  // (fault, block, diffing class, k) — and the class words are the only
  // map-dependent quantity, so every candidate shares the same sweep.
  const Gf2Matrix M = lfsr_transition(K, taps);
  std::vector<std::uint64_t> mask(n_blocks * K * K, 0);
  for (unsigned c = 0; c < K; ++c) {
    std::uint64_t v = std::uint64_t{1} << c;  // M^0 * e_c at t = patterns-1
    for (std::size_t t = patterns; t-- > 0;) {
      const std::size_t base = (t / 64) * K * K + c * K;
      const unsigned lane = t % 64;
      for (unsigned k = 0; k < K; ++k)
        mask[base + k] |= ((v >> k) & 1) << lane;
      v = M.apply(v);
    }
  }

  const std::size_t n_faults = fsim.faults().size();
  const std::size_t n_maps = maps.size();
  std::vector<std::uint64_t> acc(n_maps * n_faults, 0);
  std::vector<std::uint64_t> diffs(outs.size());
  std::vector<std::uint64_t> class_word(K);
  KernelSim sim(cut);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    sim.simulate(blocks[b]);
    const std::size_t lanes_n = std::min<std::size_t>(64, patterns - b * 64);
    const std::uint64_t lane_mask =
        lanes_n == 64 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << lanes_n) - 1;
    const std::uint64_t* mblk = mask.data() + b * K * K;
    for (std::size_t f = 0; f < n_faults; ++f) {
      if (first_detected[f] < 0 ||
          first_detected[f] >= std::int64_t(patterns))
        continue;  // not detected within this stream (prefix results keep
                   // later detections)
      if (!fsim.output_diffs(fsim.faults()[f], sim.values(), lane_mask,
                             diffs))
        continue;  // no difference in this block
      for (std::size_t mi = 0; mi < n_maps; ++mi) {
        std::fill(class_word.begin(), class_word.end(), 0);
        for (std::size_t o = 0; o < outs.size(); ++o)
          class_word[maps[mi][o]] ^= diffs[o];
        for (unsigned c = 0; c < K; ++c) {
          const std::uint64_t cw = class_word[c];
          if (!cw) continue;
          const std::uint64_t* mc = mblk + c * K;
          std::uint64_t delta = 0;
          for (unsigned k = 0; k < K; ++k)
            delta |= std::uint64_t(std::popcount(cw & mc[k]) & 1) << k;
          acc[mi * n_faults + f] ^= delta;
        }
      }
    }
  }
  std::size_t n_checked = 0;
  std::vector<std::size_t> escapes(n_maps, 0);
  for (std::size_t f = 0; f < n_faults; ++f) {
    if (first_detected[f] < 0 ||
        first_detected[f] >= std::int64_t(patterns))
      continue;
    ++n_checked;
    for (std::size_t mi = 0; mi < n_maps; ++mi)
      if (acc[mi * n_faults + f] == 0) ++escapes[mi];
  }
  if (checked) *checked = n_checked;
  return escapes;
}

}  // namespace

std::vector<std::uint16_t> fold_map(const MisrSpec& m, std::size_t outputs) {
  std::vector<std::uint16_t> map(outputs);
  for (std::size_t o = 0; o < outputs; ++o)
    map[o] = static_cast<std::uint16_t>(m.cls(o));
  return map;
}

AliasingReport misr_aliasing_check(FaultSimulator& fsim, const SimKernel& cut,
                                   std::span<const PatternBlock> blocks,
                                   std::size_t patterns, const MisrSpec& m,
                                   std::span<const std::int64_t> first_detected) {
  AliasingReport rep;
  rep.bound = std::ldexp(1.0, -int(m.degree));
  if (!m.enabled() || patterns == 0) return rep;
  const std::vector<std::vector<std::uint16_t>> maps{
      fold_map(m, cut.outputs().size())};
  const std::vector<std::size_t> esc =
      audit_fold_maps(fsim, cut, blocks, patterns, m.degree, m.taps,
                      first_detected, maps, &rep.detected_checked);
  rep.escapes = esc[0];
  return rep;
}

MisrSpec choose_misr_fold(FaultSimulator& fsim, const SimKernel& cut,
                          std::span<const PatternBlock> blocks,
                          std::size_t patterns,
                          std::span<const std::int64_t> first_detected,
                          MisrSpec base) {
  const std::size_t outs = cut.outputs().size();
  if (!base.enabled() || patterns == 0 || outs == 0) return base;
  const unsigned K = base.degree;

  // Candidate family, in preference order: natural modulo fold, diagonal
  // staggers (o + s*(o/K)) mod K — these split the bus-aligned stride-K
  // pairs the natural fold collapses — then deterministic hashed
  // assignments for CUTs whose output correlations defeat every stagger.
  std::vector<std::vector<std::uint16_t>> maps;
  for (unsigned s = 0; s < K; ++s) {
    std::vector<std::uint16_t> map(outs);
    for (std::size_t o = 0; o < outs; ++o)
      map[o] = static_cast<std::uint16_t>((o + s * (o / K)) % K);
    maps.push_back(std::move(map));
  }
  for (std::uint64_t a = 1; a <= 8; ++a) {
    std::vector<std::uint16_t> map(outs);
    for (std::size_t o = 0; o < outs; ++o) {
      std::uint64_t x = (o + 1) * 0x9E3779B97F4A7C15ull + a * 0xBF58476D1CE4E5B9ull;
      x ^= x >> 30;
      x *= 0xBF58476D1CE4E5B9ull;
      x ^= x >> 27;
      x *= 0x94D049BB133111EBull;
      x ^= x >> 31;
      map[o] = static_cast<std::uint16_t>(x % K);
    }
    maps.push_back(std::move(map));
  }

  const std::vector<std::size_t> esc = audit_fold_maps(
      fsim, cut, blocks, patterns, K, base.taps, first_detected, maps, nullptr);
  std::size_t best = 0;
  for (std::size_t mi = 0; mi < maps.size() && esc[best] != 0; ++mi)
    if (esc[mi] < esc[best]) best = mi;
  if (best == 0) return base;  // natural fold clean (or nothing better)
  base.fold = std::move(maps[best]);
  return base;
}

// ---------------------------------------------------------------------------
// Seed schedules
// ---------------------------------------------------------------------------

std::size_t CompressedTopoff::fallback_rows() const {
  std::size_t n = 0;
  for (const std::uint8_t f : fallback) n += f;
  return n;
}

std::vector<std::uint32_t> CompressedTopoff::offsets_used() const {
  std::vector<std::uint32_t> offs;
  for (const SeedEvent& e : seeds) offs.push_back(e.offset);
  std::sort(offs.begin(), offs.end());
  offs.erase(std::unique(offs.begin(), offs.end()), offs.end());
  return offs;
}

RowCompression compress_cube(std::span<const Ternary> cube, unsigned degree,
                             std::uint64_t taps,
                             const std::function<bool()>& free_bit) {
  const std::size_t w = cube.size();
  const unsigned D = degree;
  RowCompression rc;

  // Segmentation: walk the care bits in shift order through an incremental
  // eliminator over the current seed's variables.  reg[j] is the symbolic
  // coefficient mask of register bit j; the pre-shift output stage reg[D-1]
  // is stream bit t.  On an inconsistency at shift t (only possible at
  // t >= segment_start + D: the first D rows after a load are the identity)
  // the solver reseeds at the last D-aligned boundary at or below t and
  // replays the care bits from there, so progress is guaranteed.
  std::vector<std::pair<std::uint32_t, Gf2Solver>> segments;  // (offset, sys)
  if (w > D) {
    std::uint32_t start = 0;
    while (true) {
      Gf2Solver sys(D);
      Gf2Solver at_boundary;  // snapshot at the last D-aligned boundary
      std::vector<std::uint64_t> reg(D);
      for (unsigned j = 0; j < D; ++j) reg[j] = std::uint64_t{1} << j;
      std::uint32_t conflict_at = 0;
      bool conflicted = false;
      for (std::size_t t = start; t < w; ++t) {
        if (t > start && (t % D) == 0) at_boundary = sys;
        if (cube[t] != Ternary::VX) {
          const bool bit = cube[t] == Ternary::V1;
          if (sys.add(reg[D - 1], bit) == Gf2Add::Inconsistent) {
            conflict_at = static_cast<std::uint32_t>((t / D) * D);
            conflicted = true;
            break;
          }
        }
        // step: fb = parity over tapped stages, shift up
        std::uint64_t fb = 0;
        for (unsigned j = 0; j < D; ++j)
          if ((taps >> j) & 1) fb ^= reg[j];
        for (unsigned j = D; j-- > 1;) reg[j] = reg[j - 1];
        reg[0] = fb;
      }
      if (!conflicted) {
        segments.emplace_back(start, std::move(sys));
        break;
      }
      segments.emplace_back(start, std::move(at_boundary));
      start = conflict_at;
    }
  }

  // Fallback by cost: seeds must strictly beat the decoded row.
  rc.fallback = w <= D || segments.size() * D >= w;
  if (rc.fallback) {
    BitVec p(w);
    for (std::size_t i = 0; i < w; ++i) {
      const bool bit =
          cube[i] == Ternary::VX ? free_bit() : cube[i] == Ternary::V1;
      p.set(i, bit);
    }
    rc.pattern = std::move(p);
    return rc;
  }

  for (const auto& [offset, sys] : segments) {
    std::uint64_t free_vals = 0;
    for (unsigned j = 0; j < D; ++j)
      free_vals |= std::uint64_t(free_bit()) << j;
    SeedEvent e;
    e.offset = offset;
    e.seed = sys.solve(free_vals);
    rc.seeds.push_back(e);
  }
  rc.pattern = expand_row(rc.seeds, D, taps, w);
  return rc;
}

BitVec expand_row(std::span<const SeedEvent> seeds, unsigned degree,
                  std::uint64_t taps, std::size_t width) {
  BitVec p(width);
  std::uint64_t state = 0;
  std::size_t next = 0;
  for (std::size_t t = 0; t < width; ++t) {
    if (next < seeds.size() && seeds[next].offset == t)
      state = seeds[next++].seed & degree_mask(degree);
    p.set(t, (state >> (degree - 1)) & 1);
    state = raw_step(state, degree, taps);
  }
  return p;
}

}  // namespace bist
