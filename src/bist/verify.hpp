#pragma once
// Closed-loop verification of a synthesized BIST wrapper — the proof that
// the generated hardware, simulated gate by gate, reproduces the scheduled
// mixed-scheme point exactly.
//
// simulate_wrapper() drives the one-frame wrapper through the SimKernel
// cycle by cycle: each cycle the current LFSR/counter state is applied on
// the state primary inputs, the wrapper is evaluated, the pattern the mux
// block applied to the embedded CUT is read off the (named) CUT input nets,
// and the next-state primary outputs are fed back.  Nothing about the
// expected stream is assumed — the state evolution comes entirely out of the
// synthesized gates.
//
// verify_wrapper() then checks the contract against the scheduled point:
//   - the first lfsr_patterns applied patterns are bit-identical to the
//     Lfsr class's stream for the plan's (degree, taps, seed);
//   - the remaining applied patterns equal the plan's stored top-off set in
//     application order (hence set-identical);
//   - fault-simulating the CUT over the applied patterns yields exactly the
//     point's final coverage, under both accounting conventions, down to
//     the double (same integer numerators over the same denominators);
// and, for a compressed plan (plan.comp.enabled):
//   - every seeded (non-fallback) top-off row is bit-identical to the
//     software re-expansion of its seed schedule (expand_row), proving the
//     stored set really is the seed expansion;
//   - the wrapper's MISR lands exactly on the plan's golden signature and
//     raises bist_sign_ok on the final cycle;
//   - the empirical aliasing audit (misr_aliasing_check) is reported:
//     detected faults whose faulty signature would equal the golden one.
//     Escapes do not fail ok() — they bound the compaction's quality and
//     are gated to zero by the bench/tests on the surrogate family.

#include <cstdint>
#include <vector>

#include "bist/schedule.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/netlist.hpp"
#include "tpg/mixed.hpp"
#include "util/bitvec.hpp"
#include "util/deadline.hpp"

namespace bist {

struct WrapperSimResult {
  /// One applied CUT input pattern per cycle (lfsr phase then ROM phase).
  std::vector<BitVec> applied;
  std::uint64_t final_lfsr_state = 0;
  std::uint64_t final_counter = 0;
  /// MISR state after the last cycle (read off bist_misr_n) and the
  /// comparator output on that cycle; both 0/false when the plan carries no
  /// MISR.
  std::uint64_t final_misr = 0;
  bool sign_ok = false;
  /// Ok for a full run; a cooperative stop leaves the exact prefix of
  /// cycles that DID run in `applied` and records why here.
  StageStatus status;
};

/// Run the wrapper for plan.test_time cycles.  `cut` provides the input
/// net names (the wrapper nets are resolved as "cut_<name>",
/// "bist_lfsr_s<i>", ... per the synth conventions); the wrapper may be the
/// synthesized netlist or a .bench re-parse of it.  Throws
/// std::runtime_error when an expected net is missing.  `deadline` is
/// polled once per cycle (bounded stop latency); nullptr never stops.
WrapperSimResult simulate_wrapper(const Netlist& wrapper, const Netlist& cut,
                                  const BistPlan& plan,
                                  const Deadline* deadline = nullptr);

struct WrapperVerification {
  bool lfsr_phase_identical = false;
  bool topoff_identical = false;
  bool coverage_identical = false;
  /// Compressed-plan checks; trivially true for a legacy (decoded) plan.
  bool seeds_identical = true;      ///< seeded rows == expand_row re-expansion
  bool signature_identical = true;  ///< final MISR == golden, sign_ok raised
  std::size_t cycles = 0;
  double achieved_coverage = 0;
  double achieved_coverage_weighted = 0;
  std::uint64_t misr_signature = 0;  ///< wrapper's final signature
  /// Empirical MISR aliasing audit over the applied stream (zeroed for a
  /// legacy plan): reported, not part of ok().
  AliasingReport aliasing;
  /// Ok when every check ran; a cooperative stop (mid-simulation or inside
  /// the coverage fault-sim pass) records why here and leaves the unreached
  /// checks false — ok() is then false, but the stop is not an error.
  StageStatus status;
  bool ok() const {
    return lfsr_phase_identical && topoff_identical && coverage_identical &&
           seeds_identical && signature_identical;
  }
};

/// Simulate the wrapper and check it against the scheduled point (the
/// MixedSchemeResult the plan was chosen from, i.e.
/// sweep.points[plan.point_index]).  `fopt` only selects the fault-sim
/// engine configuration; detection results are engine-invariant.
/// `deadline` (falling back to fopt.deadline when null) is polled per
/// wrapper cycle and threaded into the coverage fault-sim pass.
WrapperVerification verify_wrapper(const Netlist& wrapper, const Netlist& cut,
                                   const BistPlan& plan,
                                   const MixedSchemeResult& point,
                                   const FaultSimOptions& fopt = {},
                                   const Deadline* deadline = nullptr);

}  // namespace bist
