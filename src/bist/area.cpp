#include "bist/area.hpp"

#include <bit>
#include <map>

namespace bist {

double gate_area(const AreaModel& m, GateType t, std::size_t fanin_count) {
  const double n2 = fanin_count > 1 ? double(fanin_count - 1) : 1.0;
  switch (t) {
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1: return 0.0;
    case GateType::Buf: return m.buf1;
    case GateType::Not: return m.not1;
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor: return n2 * m.and2;
    case GateType::Xor:
    case GateType::Xnor: return n2 * m.xor2;
  }
  return 0.0;
}

double netlist_area(const AreaModel& m, const Netlist& n) {
  double a = 0.0;
  for (GateId g = 0; g < n.gate_count(); ++g)
    a += gate_area(m, n.gate(g).type, n.gate(g).fanins.size());
  return a;
}

std::size_t counter_width(std::size_t total_cycles) {
  if (total_cycles <= 2) return 1;
  return static_cast<std::size_t>(std::bit_width(total_cycles - 1));
}

BistArea estimate_bist_area(const AreaModel& m, unsigned lfsr_degree,
                            std::uint64_t lfsr_taps, std::size_t cut_inputs,
                            std::span<const BitVec> topoff,
                            std::size_t lfsr_patterns) {
  BistArea a;
  const std::size_t w = cut_inputs;
  const std::size_t t = topoff.size();
  const std::size_t total = lfsr_patterns + t;
  const std::size_t c = counter_width(total);

  a.rom_bits = t * w;
  a.state_bits = lfsr_degree + c;

  // LFSR: degree FFs, one feedback XOR network per pattern bit (the
  // test-per-clock unrolling shifts `w` times per applied pattern), and the
  // degree next-state output buffers of the one-frame wrapper.
  const unsigned taps = static_cast<unsigned>(std::popcount(lfsr_taps));
  const double fb = taps >= 2 ? double(taps - 1) * m.xor2 : m.buf1;
  a.lfsr = double(lfsr_degree) * m.flipflop + double(w) * fb +
           double(lfsr_degree) * m.buf1;

  // Controller: counter FFs + ripple increment (1 NOT, c-1 XOR2, c-2 AND2
  // carries) + c next-state buffers + one c-literal decode AND per ROM row
  // with shared inverters for the bits that appear complemented in at least
  // one row address.
  a.controller = double(c) * m.flipflop + m.not1 +
                 double(c > 0 ? c - 1 : 0) * m.xor2 +
                 double(c > 2 ? c - 2 : 0) * m.and2 + double(c) * m.buf1;
  if (t > 0) {
    const double decode = c >= 2 ? double(c - 1) * m.and2 : m.buf1;
    std::uint64_t inv_mask = 0;
    const std::uint64_t cmask =
        c >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << c) - 1);
    for (std::size_t j = 0; j < t; ++j)
      inv_mask |= ~std::uint64_t(lfsr_patterns + j) & cmask;
    a.controller += double(t) * decode +
                    double(std::popcount(inv_mask)) * m.not1;
  }

  // ROM OR plane: per CUT input, an OR over the rows whose stored bit is
  // set — priced exactly from the pattern set's per-column popcounts.
  std::vector<std::size_t> col_rows(w, 0);
  for (std::size_t i = 0; i < w; ++i)
    for (const BitVec& p : topoff) col_rows[i] += p.get(i);
  for (std::size_t i = 0; i < w; ++i)
    if (col_rows[i] >= 2) a.rom += double(col_rows[i] - 1) * m.and2;

  // Muxing: per CUT input an AND leg gating the LFSR bit with the phase
  // select, merged with the ROM column by an OR when the column has any set
  // bit (an all-zero column needs only the gated leg); phase select = OR of
  // the row decodes plus the shared inverter.
  if (t > 0) {
    a.mux = m.not1;
    for (std::size_t i = 0; i < w; ++i)
      a.mux += col_rows[i] ? m.and2 + m.and2 : m.and2;
    const double phase_or = t >= 2 ? double(t - 1) * m.and2 : m.buf1;
    a.mux += phase_or;  // bist_det = OR of the row selects
  } else {
    a.mux = double(w) * m.buf1;
  }
  return a;
}

BistArea estimate_bist_area(const AreaModel& m, unsigned lfsr_degree,
                            std::uint64_t lfsr_taps, std::size_t cut_inputs,
                            std::span<const BitVec> topoff,
                            std::size_t lfsr_patterns,
                            const CompressedTopoff& comp) {
  if (!comp.enabled)
    return estimate_bist_area(m, lfsr_degree, lfsr_taps, cut_inputs, topoff,
                              lfsr_patterns);
  BistArea a;
  const std::size_t w = cut_inputs;
  const std::size_t t = topoff.size();
  const std::size_t total = lfsr_patterns + t;
  const std::size_t c = counter_width(total);
  const unsigned D = lfsr_degree;
  const unsigned K = comp.misr.degree;
  const std::size_t fb_n = comp.fallback_rows();

  a.rom_bits = fb_n * w;  // only the fallback rows stay fully decoded
  a.seed_rom_bits = comp.seed_rom_bits();
  a.misr_bits = K;
  a.state_bits = D + c + K;

  // LFSR core: unchanged from the legacy architecture.
  const unsigned taps = static_cast<unsigned>(std::popcount(lfsr_taps));
  const double fb = taps >= 2 ? double(taps - 1) * m.xor2 : m.buf1;
  a.lfsr = double(D) * m.flipflop + double(w) * fb + double(D) * m.buf1;

  // Controller: counter + row decodes exactly as legacy (every row needs its
  // decode: seeded rows feed the load selects and seed planes, fallback rows
  // the ROM plane), plus the per-offset reseed load selects.
  a.controller = double(c) * m.flipflop + m.not1 +
                 double(c > 0 ? c - 1 : 0) * m.xor2 +
                 double(c > 2 ? c - 2 : 0) * m.and2 + double(c) * m.buf1;
  if (t > 0) {
    const double decode = c >= 2 ? double(c - 1) * m.and2 : m.buf1;
    std::uint64_t inv_mask = 0;
    const std::uint64_t cmask =
        c >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << c) - 1);
    for (std::size_t j = 0; j < t; ++j)
      inv_mask |= ~std::uint64_t(lfsr_patterns + j) & cmask;
    a.controller += double(t) * decode +
                    double(std::popcount(inv_mask)) * m.not1;
  }

  // Reseeding datapath: per distinct load offset, a select (OR of the rows
  // reseeding there when >= 2, plus its inverter) and a D-bit load mux into
  // the unrolled chain; the seed columns (OR over the rows whose seed bit is
  // set) are the seed-ROM plane.
  std::map<std::uint32_t, std::vector<const SeedEvent*>> by_offset;
  for (const SeedEvent& e : comp.seeds) by_offset[e.offset].push_back(&e);
  for (const auto& [off, evs] : by_offset) {
    (void)off;
    if (evs.size() >= 2)
      a.controller += double(evs.size() - 1) * m.and2;  // load select OR
    a.controller += m.not1;                             // select inverter
    for (unsigned bb = 0; bb < D; ++bb) {
      std::size_t set = 0;
      for (const SeedEvent* e : evs) set += (e->seed >> bb) & 1;
      if (set == 0) {
        a.mux += m.and2;  // keep leg only: bit is forced 0 during a load
      } else {
        a.mux += m.and2 + m.and2;  // keep leg + merge OR
        if (set >= 2) a.seed_rom += double(set - 1) * m.and2;
      }
    }
  }

  // Decoded fallback rows: ROM OR plane over fallback rows only, and the
  // phase mux gated by the OR of the fallback-row decodes.  With no fallback
  // rows the CUT inputs ride the chain taps directly (one buffer each, the
  // same shape as a zero-top-off legacy wrapper).
  std::vector<std::size_t> col_rows(w, 0);
  for (std::size_t j = 0; j < t; ++j)
    if (comp.fallback[j])
      for (std::size_t i = 0; i < w; ++i) col_rows[i] += topoff[j].get(i);
  for (std::size_t i = 0; i < w; ++i)
    if (col_rows[i] >= 2) a.rom += double(col_rows[i] - 1) * m.and2;
  if (fb_n > 0) {
    a.mux += m.not1;
    a.mux += fb_n >= 2 ? double(fb_n - 1) * m.and2 : m.buf1;  // bist_det
    for (std::size_t i = 0; i < w; ++i)
      a.mux += col_rows[i] ? m.and2 + m.and2 : m.and2;
  } else {
    a.mux += double(w) * m.buf1;
  }

  // MISR: state FFs, one feedback parity per cycle, one injection XOR per
  // stage class (outputs fold per comp.misr.cls — the audited assignment),
  // and the golden-signature comparator (inverters on the zero bits, one
  // K-literal AND).
  if (K > 0) {
    a.misr = double(K) * m.flipflop;
    const unsigned kt = static_cast<unsigned>(std::popcount(comp.misr.taps));
    a.misr += kt >= 2 ? double(kt - 1) * m.xor2 : m.buf1;
    std::vector<std::size_t> cls_n(K, 0);
    for (std::size_t o = 0; o < comp.cut_outputs; ++o)
      ++cls_n[comp.misr.cls(o)];
    for (unsigned cc = 0; cc < K; ++cc)
      a.misr += cls_n[cc] > 0 ? double(cls_n[cc]) * m.xor2 : m.buf1;
    const std::uint64_t kmask =
        K >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << K) - 1);
    a.misr += double(std::popcount(~comp.golden & kmask)) * m.not1;
    a.misr += K >= 2 ? double(K - 1) * m.and2 : m.buf1;
  }
  return a;
}

}  // namespace bist
