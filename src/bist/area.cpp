#include "bist/area.hpp"

#include <bit>

namespace bist {

double gate_area(const AreaModel& m, GateType t, std::size_t fanin_count) {
  const double n2 = fanin_count > 1 ? double(fanin_count - 1) : 1.0;
  switch (t) {
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1: return 0.0;
    case GateType::Buf: return m.buf1;
    case GateType::Not: return m.not1;
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor: return n2 * m.and2;
    case GateType::Xor:
    case GateType::Xnor: return n2 * m.xor2;
  }
  return 0.0;
}

double netlist_area(const AreaModel& m, const Netlist& n) {
  double a = 0.0;
  for (GateId g = 0; g < n.gate_count(); ++g)
    a += gate_area(m, n.gate(g).type, n.gate(g).fanins.size());
  return a;
}

std::size_t counter_width(std::size_t total_cycles) {
  if (total_cycles <= 2) return 1;
  return static_cast<std::size_t>(std::bit_width(total_cycles - 1));
}

BistArea estimate_bist_area(const AreaModel& m, unsigned lfsr_degree,
                            std::uint64_t lfsr_taps, std::size_t cut_inputs,
                            std::span<const BitVec> topoff,
                            std::size_t lfsr_patterns) {
  BistArea a;
  const std::size_t w = cut_inputs;
  const std::size_t t = topoff.size();
  const std::size_t total = lfsr_patterns + t;
  const std::size_t c = counter_width(total);

  a.rom_bits = t * w;
  a.state_bits = lfsr_degree + c;

  // LFSR: degree FFs, one feedback XOR network per pattern bit (the
  // test-per-clock unrolling shifts `w` times per applied pattern), and the
  // degree next-state output buffers of the one-frame wrapper.
  const unsigned taps = static_cast<unsigned>(std::popcount(lfsr_taps));
  const double fb = taps >= 2 ? double(taps - 1) * m.xor2 : m.buf1;
  a.lfsr = double(lfsr_degree) * m.flipflop + double(w) * fb +
           double(lfsr_degree) * m.buf1;

  // Controller: counter FFs + ripple increment (1 NOT, c-1 XOR2, c-2 AND2
  // carries) + c next-state buffers + one c-literal decode AND per ROM row
  // with shared inverters for the bits that appear complemented in at least
  // one row address.
  a.controller = double(c) * m.flipflop + m.not1 +
                 double(c > 0 ? c - 1 : 0) * m.xor2 +
                 double(c > 2 ? c - 2 : 0) * m.and2 + double(c) * m.buf1;
  if (t > 0) {
    const double decode = c >= 2 ? double(c - 1) * m.and2 : m.buf1;
    std::uint64_t inv_mask = 0;
    const std::uint64_t cmask =
        c >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << c) - 1);
    for (std::size_t j = 0; j < t; ++j)
      inv_mask |= ~std::uint64_t(lfsr_patterns + j) & cmask;
    a.controller += double(t) * decode +
                    double(std::popcount(inv_mask)) * m.not1;
  }

  // ROM OR plane: per CUT input, an OR over the rows whose stored bit is
  // set — priced exactly from the pattern set's per-column popcounts.
  std::vector<std::size_t> col_rows(w, 0);
  for (std::size_t i = 0; i < w; ++i)
    for (const BitVec& p : topoff) col_rows[i] += p.get(i);
  for (std::size_t i = 0; i < w; ++i)
    if (col_rows[i] >= 2) a.rom += double(col_rows[i] - 1) * m.and2;

  // Muxing: per CUT input an AND leg gating the LFSR bit with the phase
  // select, merged with the ROM column by an OR when the column has any set
  // bit (an all-zero column needs only the gated leg); phase select = OR of
  // the row decodes plus the shared inverter.
  if (t > 0) {
    a.mux = m.not1;
    for (std::size_t i = 0; i < w; ++i)
      a.mux += col_rows[i] ? m.and2 + m.and2 : m.and2;
    const double phase_or = t >= 2 ? double(t - 1) * m.and2 : m.buf1;
    a.mux += phase_or;  // bist_det = OR of the row selects
  } else {
    a.mux = double(w) * m.buf1;
  }
  return a;
}

}  // namespace bist
