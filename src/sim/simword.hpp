#pragma once
// Simulation word abstraction: W x 64 pattern lanes per signal.
//
// The whole bit-parallel stack (KernelSim, the PPSFP fault engine) was
// written against a hard-coded std::uint64_t pattern word.  SimWord<W>
// generalizes that to W consecutive 64-lane sub-words carried as one value —
// W=4 gives a 256-bit word whose bitwise ops compile to two AVX2 (or four
// SSE2) instructions under auto-vectorization — while keeping the 64-lane
// ABI intact: SimWord<1> *is* std::uint64_t (an alias, not a wrapper), so
// every existing caller of the narrow path compiles unchanged and the
// templated engines instantiate to exactly the old code at W=1.
//
// Generic code uses the shared operator set (&, |, ^, ~) plus the free
// helpers below, all of which overload on both std::uint64_t and
// WideWord<W>:
//   w_any(x)         any lane set
//   w_zero<Word>()   all-zero word
//   w_broadcast<Word>(m)  every sub-word = m (invert masks are 0 or ~0)
//   w_first_lane(x)  index of the lowest set lane (x must be non-zero)
//
// Lane L of sub-word j is pattern lane j*64 + L; pattern blocks are grouped
// so that lane index == pattern offset within the group (see WideSimT).
//
// BIST_WIDE_WORDS (CMake option, default ON) gates the W>1 instantiations;
// with it off the engines clamp every width request to 1 and no wide code is
// compiled.

#include <bit>
#include <cstdint>
#include <type_traits>

#ifndef BIST_WIDE_WORDS
#define BIST_WIDE_WORDS 1
#endif

namespace bist {

template <unsigned W>
struct WideWord {
  static_assert(W >= 2, "WideWord is the W>1 representation; SimWord<1> is uint64_t");
  std::uint64_t w[W];

  friend WideWord operator&(WideWord a, const WideWord& b) {
    for (unsigned i = 0; i < W; ++i) a.w[i] &= b.w[i];
    return a;
  }
  friend WideWord operator|(WideWord a, const WideWord& b) {
    for (unsigned i = 0; i < W; ++i) a.w[i] |= b.w[i];
    return a;
  }
  friend WideWord operator^(WideWord a, const WideWord& b) {
    for (unsigned i = 0; i < W; ++i) a.w[i] ^= b.w[i];
    return a;
  }
  friend WideWord operator~(WideWord a) {
    for (unsigned i = 0; i < W; ++i) a.w[i] = ~a.w[i];
    return a;
  }
  WideWord& operator&=(const WideWord& b) { return *this = *this & b; }
  WideWord& operator|=(const WideWord& b) { return *this = *this | b; }
  WideWord& operator^=(const WideWord& b) { return *this = *this ^ b; }
  friend bool operator==(const WideWord&, const WideWord&) = default;
};

/// Simulation word of W x 64 lanes.  W=1 is literally std::uint64_t so the
/// narrow path keeps its original ABI and codegen.
template <unsigned W>
using SimWord = std::conditional_t<W == 1, std::uint64_t, WideWord<W>>;

inline bool w_any(std::uint64_t v) { return v != 0; }
template <unsigned W>
inline bool w_any(const WideWord<W>& v) {
  std::uint64_t acc = 0;
  for (unsigned i = 0; i < W; ++i) acc |= v.w[i];
  return acc != 0;
}

template <class Word>
inline Word w_zero() {
  return Word{};
}

/// Broadcast a 64-bit mask into every sub-word (identity at W=1).
template <class Word>
inline Word w_broadcast(std::uint64_t m) {
  if constexpr (std::is_same_v<Word, std::uint64_t>) {
    return m;
  } else {
    Word r;
    for (auto& s : r.w) s = m;
    return r;
  }
}

/// Index of the lowest set lane.  Precondition: w_any(v).
inline unsigned w_first_lane(std::uint64_t v) {
  return static_cast<unsigned>(std::countr_zero(v));
}
template <unsigned W>
inline unsigned w_first_lane(const WideWord<W>& v) {
  for (unsigned i = 0; i < W; ++i)
    if (v.w[i]) return i * 64 + static_cast<unsigned>(std::countr_zero(v.w[i]));
  return W * 64;  // unreachable under the precondition
}

/// Widest word width compiled into this build (in 64-lane units).
inline constexpr unsigned kMaxWordWidth = BIST_WIDE_WORDS ? 4u : 1u;

}  // namespace bist
