#include "sim/kernel.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/parallel.hpp"

namespace bist {

SimKernel::SimKernel(const Netlist& n) : n_(&n) {
  if (!n.frozen()) throw std::invalid_argument("SimKernel: netlist not frozen");
  const std::size_t cnt = n.gate_count();

  // Level-order renumbering (stable on GateId within a level, so the kernel
  // layout is deterministic and fanin-safe: every fanin has a lower level,
  // hence a smaller kernel index).
  order_.resize(cnt);
  std::iota(order_.begin(), order_.end(), GateId{0});
  std::stable_sort(order_.begin(), order_.end(), [&](GateId a, GateId b) {
    return n.level(a) < n.level(b);
  });
  kindex_.resize(cnt);
  for (KIndex k = 0; k < cnt; ++k) kindex_[order_[k]] = k;

  types_.resize(cnt);
  levels_.resize(cnt);
  is_output_.resize(cnt);
  fanin_offset_.assign(cnt + 1, 0);
  for (KIndex k = 0; k < cnt; ++k) {
    const Gate& gg = n.gate(order_[k]);
    types_[k] = gg.type;
    levels_[k] = n.level(order_[k]);
    is_output_[k] = n.is_output(order_[k]);
    fanin_offset_[k + 1] = fanin_offset_[k] +
                           static_cast<std::uint32_t>(gg.fanins.size());
  }
  fanin_flat_.reserve(fanin_offset_[cnt]);
  for (KIndex k = 0; k < cnt; ++k)
    for (GateId f : n.gate(order_[k]).fanins)
      fanin_flat_.push_back(kindex_[f]);

  fanout_offset_.assign(cnt + 1, 0);
  for (KIndex f : fanin_flat_) ++fanout_offset_[f + 1];
  for (std::size_t i = 1; i <= cnt; ++i) fanout_offset_[i] += fanout_offset_[i - 1];
  fanout_flat_.assign(fanout_offset_[cnt], 0);
  std::vector<std::uint32_t> cursor(fanout_offset_.begin(), fanout_offset_.end() - 1);
  for (KIndex k = 0; k < cnt; ++k)
    for (KIndex f : fanins(k)) fanout_flat_[cursor[f]++] = k;

  inputs_.reserve(n.inputs().size());
  for (GateId g : n.inputs()) inputs_.push_back(kindex_[g]);
  outputs_.reserve(n.outputs().size());
  for (GateId g : n.outputs()) outputs_.push_back(kindex_[g]);
  max_level_ = n.max_level();

  ops_.assign(cnt, MicroOp::Copy);
  inv_.assign(cnt, 0);
  for (KIndex k = 0; k < cnt; ++k) {
    switch (types_[k]) {
      case GateType::And: ops_[k] = MicroOp::And; break;
      case GateType::Nand: ops_[k] = MicroOp::And; inv_[k] = ~std::uint64_t{0}; break;
      case GateType::Or: ops_[k] = MicroOp::Or; break;
      case GateType::Nor: ops_[k] = MicroOp::Or; inv_[k] = ~std::uint64_t{0}; break;
      case GateType::Xor: ops_[k] = MicroOp::Xor; break;
      case GateType::Xnor: ops_[k] = MicroOp::Xor; inv_[k] = ~std::uint64_t{0}; break;
      case GateType::Not: inv_[k] = ~std::uint64_t{0}; break;
      case GateType::Buf:
      case GateType::Input:
      case GateType::Const0:
      case GateType::Const1: break;
    }
  }

  schedule_.reserve(cnt - inputs_.size());
  for (KIndex k = 0; k < cnt; ++k) {
    if (types_[k] == GateType::Input) continue;
    if (fanin_offset_[k] == fanin_offset_[k + 1]) {
      constants_.push_back(k);  // Const0/Const1
    } else {
      schedule_.push_back(k);
    }
  }
  // schedule_ ascends in kernel index, hence in level; bucket it per level so
  // the parallel evaluation path can treat levels as barriers.
  schedule_level_offset_.assign(max_level_ + 2, 0);
  for (KIndex g : schedule_) ++schedule_level_offset_[levels_[g] + 1];
  for (std::size_t l = 1; l < schedule_level_offset_.size(); ++l)
    schedule_level_offset_[l] += schedule_level_offset_[l - 1];

  // FFR decomposition.  A gate's unique fanout has a strictly higher level,
  // hence a larger kernel index, so one reverse sweep resolves every stem
  // root: stems point to themselves, everything else inherits its single
  // fanout's root.
  stem_.resize(cnt);
  stem_ordinal_.assign(cnt, 0);
  for (KIndex k = static_cast<KIndex>(cnt); k-- > 0;) {
    const std::uint32_t nfo = fanout_offset_[k + 1] - fanout_offset_[k];
    stem_[k] = (nfo != 1 || is_output_[k]) ? k : stem_[fanout_flat_[fanout_offset_[k]]];
  }
  for (KIndex k = 0; k < cnt; ++k) {
    if (stem_[k] != k) continue;
    stem_ordinal_[k] = static_cast<std::uint32_t>(stems_.size());
    stems_.push_back(k);  // ascending kernel index == level order
  }
  ffr_offset_.assign(stems_.size() + 1, 0);
  for (KIndex k = 0; k < cnt; ++k) ++ffr_offset_[stem_ordinal_[stem_[k]] + 1];
  for (std::size_t s = 1; s <= stems_.size(); ++s) ffr_offset_[s] += ffr_offset_[s - 1];
  ffr_members_.assign(cnt, 0);
  std::vector<std::uint32_t> fcur(ffr_offset_.begin(), ffr_offset_.end() - 1);
  for (KIndex k = 0; k < cnt; ++k)
    ffr_members_[fcur[stem_ordinal_[stem_[k]]]++] = k;
}

template <unsigned W>
WideSimT<W>::WideSimT(const SimKernel& k)
    : k_(&k), values_(k.gate_count(), w_zero<Word>()) {
  // Constants never change; evaluate them once here.
  for (KIndex c : k.constants())
    values_[c] = w_broadcast<Word>(
        k.type(c) == GateType::Const1 ? ~std::uint64_t{0} : 0);
}

template <unsigned W>
typename WideSimT<W>::Word WideSimT<W>::group_lane_mask(
    std::span<const PatternBlock> blocks) {
  if constexpr (W == 1) {
    return blocks.empty() ? 0 : blocks[0].lane_mask();
  } else {
    Word m = w_zero<Word>();
    for (unsigned j = 0; j < W && j < blocks.size(); ++j)
      m.w[j] = blocks[j].lane_mask();
    return m;
  }
}

namespace {

template <unsigned W>
void apply_block_inputs(const SimKernel& k, std::span<const PatternBlock> blocks,
                        SimWord<W>* values) {
  if (blocks.empty() || blocks.size() > W)
    throw std::invalid_argument("WideSimT: block group size must be 1..W");
  for (const PatternBlock& b : blocks)
    if (b.width != k.inputs().size())
      throw std::invalid_argument("WideSimT: block width mismatch");
  const std::span<const KIndex> pis = k.inputs();
  for (std::size_t i = 0; i < pis.size(); ++i) {
    if constexpr (W == 1) {
      values[pis[i]] = blocks[0].input_words[i];
    } else {
      SimWord<W> v = w_zero<SimWord<W>>();
      for (unsigned j = 0; j < blocks.size(); ++j)
        v.w[j] = blocks[j].input_words[i];
      values[pis[i]] = v;
    }
  }
}

}  // namespace

template <unsigned W>
void WideSimT<W>::simulate(std::span<const PatternBlock> blocks) {
  apply_block_inputs<W>(*k_, blocks, values_.data());

  const MicroOp* op = k_->op_data();
  const std::uint64_t* inv = k_->invert_data();
  const std::uint32_t* off = k_->fanin_offset_data();
  const KIndex* fi = k_->fanin_data();
  Word* val = values_.data();

  for (KIndex g : k_->schedule()) {
    val[g] = eval_reduce(op[g], inv[g], off[g], off[g + 1],
                         [&](std::uint32_t i) { return val[fi[i]]; });
  }
}

template <unsigned W>
void WideSimT<W>::simulate(std::span<const PatternBlock> blocks,
                           WorkerPool* pool) {
  if (pool == nullptr || pool->workers() <= 1) {
    simulate(blocks);
    return;
  }
  apply_block_inputs<W>(*k_, blocks, values_.data());

  const MicroOp* op = k_->op_data();
  const std::uint64_t* inv = k_->invert_data();
  const std::uint32_t* off = k_->fanin_offset_data();
  const KIndex* fi = k_->fanin_data();
  Word* val = values_.data();
  const KIndex* sched = k_->schedule().data();
  const std::span<const std::uint32_t> lvl_off = k_->schedule_level_offsets();

  // A level below this many gates is cheaper to evaluate inline than to
  // dispatch (a parallel_for costs a pool wake + join).
  constexpr std::size_t kMinParallelLevel = 256;

  for (std::size_t l = 0; l + 1 < lvl_off.size(); ++l) {
    const std::uint32_t b = lvl_off[l], e = lvl_off[l + 1];
    const std::size_t n = e - b;
    if (n == 0) continue;
    auto eval_one = [&](std::uint32_t s) {
      const KIndex g = sched[s];
      val[g] = eval_reduce(op[g], inv[g], off[g], off[g + 1],
                           [&](std::uint32_t i) { return val[fi[i]]; });
    };
    if (n < kMinParallelLevel) {
      for (std::uint32_t s = b; s < e; ++s) eval_one(s);
    } else {
      // Gates within a level never feed each other: each slot is written by
      // exactly one worker and only lower levels are read, so the values are
      // identical to the serial pass for every worker count and chunking.
      const std::size_t grain =
          std::max<std::size_t>(64, n / (std::size_t{4} * pool->workers()));
      parallel_for(*pool, n, grain,
                   [&](unsigned, std::size_t cb, std::size_t ce) {
                     for (std::size_t s = cb; s < ce; ++s)
                       eval_one(b + static_cast<std::uint32_t>(s));
                   });
    }
  }
}

template <unsigned W>
std::vector<typename WideSimT<W>::Word> WideSimT<W>::output_words() const {
  std::vector<Word> out;
  out.reserve(k_->outputs().size());
  for (KIndex o : k_->outputs()) out.push_back(values_[o]);
  return out;
}

template class WideSimT<1>;
#if BIST_WIDE_WORDS
template class WideSimT<4>;
#endif

}  // namespace bist
