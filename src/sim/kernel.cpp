#include "sim/kernel.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace bist {

SimKernel::SimKernel(const Netlist& n) : n_(&n) {
  if (!n.frozen()) throw std::invalid_argument("SimKernel: netlist not frozen");
  const std::size_t cnt = n.gate_count();

  // Level-order renumbering (stable on GateId within a level, so the kernel
  // layout is deterministic and fanin-safe: every fanin has a lower level,
  // hence a smaller kernel index).
  order_.resize(cnt);
  std::iota(order_.begin(), order_.end(), GateId{0});
  std::stable_sort(order_.begin(), order_.end(), [&](GateId a, GateId b) {
    return n.level(a) < n.level(b);
  });
  kindex_.resize(cnt);
  for (KIndex k = 0; k < cnt; ++k) kindex_[order_[k]] = k;

  types_.resize(cnt);
  levels_.resize(cnt);
  is_output_.resize(cnt);
  fanin_offset_.assign(cnt + 1, 0);
  for (KIndex k = 0; k < cnt; ++k) {
    const Gate& gg = n.gate(order_[k]);
    types_[k] = gg.type;
    levels_[k] = n.level(order_[k]);
    is_output_[k] = n.is_output(order_[k]);
    fanin_offset_[k + 1] = fanin_offset_[k] +
                           static_cast<std::uint32_t>(gg.fanins.size());
  }
  fanin_flat_.reserve(fanin_offset_[cnt]);
  for (KIndex k = 0; k < cnt; ++k)
    for (GateId f : n.gate(order_[k]).fanins)
      fanin_flat_.push_back(kindex_[f]);

  fanout_offset_.assign(cnt + 1, 0);
  for (KIndex f : fanin_flat_) ++fanout_offset_[f + 1];
  for (std::size_t i = 1; i <= cnt; ++i) fanout_offset_[i] += fanout_offset_[i - 1];
  fanout_flat_.assign(fanout_offset_[cnt], 0);
  std::vector<std::uint32_t> cursor(fanout_offset_.begin(), fanout_offset_.end() - 1);
  for (KIndex k = 0; k < cnt; ++k)
    for (KIndex f : fanins(k)) fanout_flat_[cursor[f]++] = k;

  inputs_.reserve(n.inputs().size());
  for (GateId g : n.inputs()) inputs_.push_back(kindex_[g]);
  outputs_.reserve(n.outputs().size());
  for (GateId g : n.outputs()) outputs_.push_back(kindex_[g]);
  max_level_ = n.max_level();

  ops_.assign(cnt, MicroOp::Copy);
  inv_.assign(cnt, 0);
  for (KIndex k = 0; k < cnt; ++k) {
    switch (types_[k]) {
      case GateType::And: ops_[k] = MicroOp::And; break;
      case GateType::Nand: ops_[k] = MicroOp::And; inv_[k] = ~std::uint64_t{0}; break;
      case GateType::Or: ops_[k] = MicroOp::Or; break;
      case GateType::Nor: ops_[k] = MicroOp::Or; inv_[k] = ~std::uint64_t{0}; break;
      case GateType::Xor: ops_[k] = MicroOp::Xor; break;
      case GateType::Xnor: ops_[k] = MicroOp::Xor; inv_[k] = ~std::uint64_t{0}; break;
      case GateType::Not: inv_[k] = ~std::uint64_t{0}; break;
      case GateType::Buf:
      case GateType::Input:
      case GateType::Const0:
      case GateType::Const1: break;
    }
  }

  schedule_.reserve(cnt - inputs_.size());
  for (KIndex k = 0; k < cnt; ++k) {
    if (types_[k] == GateType::Input) continue;
    if (fanin_offset_[k] == fanin_offset_[k + 1]) {
      constants_.push_back(k);  // Const0/Const1
    } else {
      schedule_.push_back(k);
    }
  }
}

KernelSim::KernelSim(const SimKernel& k) : k_(&k), values_(k.gate_count(), 0) {
  // Constants never change; evaluate them once here.
  for (KIndex c : k.constants())
    values_[c] = k.type(c) == GateType::Const1 ? ~std::uint64_t{0} : 0;
}

void KernelSim::simulate(const PatternBlock& block) {
  if (block.width != k_->inputs().size())
    throw std::invalid_argument("KernelSim: block width mismatch");

  const std::span<const KIndex> pis = k_->inputs();
  for (std::size_t i = 0; i < pis.size(); ++i)
    values_[pis[i]] = block.input_words[i];

  const MicroOp* op = k_->op_data();
  const std::uint64_t* inv = k_->invert_data();
  const std::uint32_t* off = k_->fanin_offset_data();
  const KIndex* fi = k_->fanin_data();
  std::uint64_t* val = values_.data();

  for (KIndex g : k_->schedule()) {
    val[g] = eval_reduce(op[g], inv[g], off[g], off[g + 1],
                         [&](std::uint32_t i) { return val[fi[i]]; });
  }
}

std::vector<std::uint64_t> KernelSim::output_words() const {
  std::vector<std::uint64_t> out;
  out.reserve(k_->outputs().size());
  for (KIndex o : k_->outputs()) out.push_back(values_[o]);
  return out;
}

}  // namespace bist
