#pragma once
// Three-valued (0/1/X) logic for ATPG.  PODEM runs two ternary simulations
// in lock-step (good machine / faulty machine); a gate whose pair is (1,0)
// carries D, (0,1) carries D-bar.
//
// The simulator is event-driven and levelized: assigning one PI only
// re-evaluates the affected cone, which is what makes PODEM's
// assign/unassign cycle cheap.
//
// Fault injection comes in two grains, matching the stem/branch fault model:
//  - force(g, v): the gate's output net is stuck (stem fault);
//  - force_pin(g, pin, v): a single fanin connection of g is stuck (fanout
//    branch fault) — only g sees the stuck value, the driver net and its
//    other branches are untouched.
// Primary-input assignments are stored separately from forces, so
// force -> set_input -> unforce round-trips back to the assigned value.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/kernel.hpp"

namespace bist {

enum class Ternary : std::uint8_t { V0 = 0, V1 = 1, VX = 2 };

inline Ternary t_not(Ternary a) {
  if (a == Ternary::VX) return Ternary::VX;
  return a == Ternary::V0 ? Ternary::V1 : Ternary::V0;
}

Ternary eval_gate_ternary(GateType t, std::span<const Ternary> ins);

/// Event-driven ternary simulator with per-gate and per-pin forced-value
/// support (used to inject the fault site value in the faulty machine).
class TernarySim {
 public:
  /// Compiles its own SimKernel from the netlist (the eval loop runs over the
  /// flat kernel arrays, not the per-gate heap representation).
  explicit TernarySim(const Netlist& n);
  /// Share an existing kernel (must outlive the simulator).
  explicit TernarySim(const SimKernel& k);

  /// Reset every signal to X and clear all forces and input assignments.
  void reset();

  /// Force gate g's output to v regardless of its fanins (stem fault
  /// injection).  Takes effect immediately; wins over a PI assignment while
  /// active.
  void force(GateId g, Ternary v) { force_at(k_->index_of(g), v); }
  void unforce(GateId g) { unforce_at(k_->index_of(g)); }

  /// Force the connection into fanin `pin` of g to v (fanout-branch fault
  /// injection).  Only g's evaluation sees the stuck value.
  void force_pin(GateId g, unsigned pin, Ternary v) {
    force_pin_at(k_->index_of(g), pin, v);
  }
  void unforce_pin(GateId g, unsigned pin) {
    unforce_pin_at(k_->index_of(g), pin);
  }

  /// Assign a primary input (VX = unassign) and propagate the change through
  /// its cone.  The assignment is remembered independently of any force on
  /// the input gate and is restored when the force is removed.
  void set_input(std::size_t input_idx, Ternary v);

  /// Recompute everything from scratch (after bulk changes).
  void full_eval();

  Ternary value(GateId g) const { return values_[k_->index_of(g)]; }
  /// Value by kernel index (hot path for PODEM).
  Ternary value_at(KIndex k) const { return values_[k]; }

  const SimKernel& kernel() const { return *k_; }

 private:
  void init();  ///< shared constructor tail: size scratch, validate, eval
  void force_at(KIndex k, Ternary v);
  void unforce_at(KIndex k);
  void force_pin_at(KIndex k, unsigned pin, Ternary v);
  void unforce_pin_at(KIndex k, unsigned pin);
  void propagate_from(KIndex k);
  Ternary compute(KIndex k) const;

  std::unique_ptr<SimKernel> owned_kernel_;  // set by the Netlist constructor
  const SimKernel* k_;
  // All per-gate state below is in kernel-index space.
  std::vector<Ternary> values_;
  std::vector<Ternary> assigned_;    // PI assignments (VX elsewhere/unassigned)
  std::vector<Ternary> forced_;      // VX = not forced
  std::vector<char> has_force_;
  std::vector<Ternary> pin_forced_;  // one slot per fanin CSR entry, VX = free
  std::vector<char> has_pin_force_;  // per gate: any fanin slot forced
  // Levelized event scheduling scratch.
  std::vector<std::vector<KIndex>> level_queues_;
  std::vector<char> queued_;
};

}  // namespace bist
