#pragma once
// 64-lane bit-parallel 2-valued logic simulator.  Each 64-bit word carries
// one signal across 64 test patterns (pattern-parallel, PPSFP style); a full
// netlist evaluation is one pass over the gate array in topological order.

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/bitvec.hpp"

namespace bist {

/// A block of up to 64 test patterns for a circuit with `width` inputs,
/// stored input-major: word(i) bit L = value of input i in pattern L.
struct PatternBlock {
  std::size_t width = 0;       ///< number of primary inputs
  std::size_t count = 0;       ///< number of valid pattern lanes (<= 64)
  std::vector<std::uint64_t> input_words;

  /// Lane mask with `count` low bits set.
  std::uint64_t lane_mask() const {
    return count >= 64 ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << count) - 1);
  }
};

/// Pack up to 64 patterns (each a BitVec of length = input count) into a
/// PatternBlock.  Patterns beyond 64 are ignored by this call.
PatternBlock pack_patterns(std::span<const BitVec> patterns, std::size_t width);

/// Split an arbitrary pattern list into consecutive 64-pattern blocks.
std::vector<PatternBlock> pack_all(std::span<const BitVec> patterns,
                                   std::size_t width);

/// Evaluate one gate's function over packed fanin words.
std::uint64_t eval_gate_words(GateType t, std::span<const std::uint64_t> ins);

/// Bit-parallel simulator bound to a frozen netlist.
class BitParSim {
 public:
  explicit BitParSim(const Netlist& n);

  /// Simulate one block; afterwards value(g) holds gate g's word.
  void simulate(const PatternBlock& block);

  std::uint64_t value(GateId g) const { return values_[g]; }
  std::span<const std::uint64_t> values() const { return values_; }

  /// Output words in primary-output order.
  std::vector<std::uint64_t> output_words() const;

  const Netlist& netlist() const { return *n_; }

 private:
  const Netlist* n_;
  std::vector<std::uint64_t> values_;
};

/// Convenience: simulate a single fully-specified pattern, returning PO bits.
BitVec simulate_single(const Netlist& n, const BitVec& pattern);

}  // namespace bist
