#pragma once
// Frozen structure-of-arrays compilation of a Netlist for the hot simulation
// loops.  The builder-facing Netlist stores one heap-allocated Gate per node
// (type + fanin vector + name, pointer-chased per gate per evaluation).
// SimKernel flattens that into contiguous arrays once — and renumbers the
// gates into level order, so the evaluation schedule is a sequential sweep
// over memory instead of a scatter across the id space:
//
//   kernel index       dense renumbering, sorted by (level, GateId)
//   types_             one byte per gate, kernel order
//   fanin CSR          flat fanin kernel indices + offsets (size gates+1)
//   fanout CSR         flat fanout kernel indices + offsets
//   levels_            logic level per gate, non-decreasing in kernel order
//   schedule_          kernel indices of gates with fanins, ascending
//   ops_/inv_          gate functions lowered to micro-ops (see MicroOp)
//
// The ten GateTypes are lowered to a 2-bit reduction op (And/Or/Xor/Copy)
// plus a 64-bit output-invert mask: NAND = And + invert, NOT = Copy +
// invert, and so on.  The hot loop then dispatches on a 4-way switch instead
// of a 10-way jump table — on type-diverse circuits the indirect-branch
// misprediction cost of the wide switch dominates gate evaluation, and this
// lowering is worth ~3x throughput.
//
// Everything inside the kernel speaks kernel indices; index_of()/gate_of()
// translate at the boundary to the netlist's GateId space (names, fault
// sites, test expectations).
//
// The kernel also carries the fanout-free-region (FFR) decomposition the
// fault engine is built on.  A *stem* is a gate whose output is electrically
// observable beyond a single successor: fanout count != 1, or a primary
// output.  Every other gate has exactly one fanout, so following fanouts
// from any gate traces a unique path that ends at a stem — that stem is the
// gate's *stem root*, and the set of gates sharing a root is one FFR.  A
// fault effect inside an FFR can only reach the rest of the circuit through
// the root, which is what lets the fault simulator localize per-fault work
// to a short in-region walk and share one global cone propagation per stem.

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/bitpar_sim.hpp"
#include "sim/simword.hpp"

namespace bist {

class WorkerPool;

/// Dense gate index in a SimKernel's level-ordered numbering.
using KIndex = std::uint32_t;

/// Reduction operator a gate's function is lowered to (inversion is a
/// separate mask, applied to the reduction result).
enum class MicroOp : std::uint8_t {
  And = 0,
  Or = 1,
  Xor = 2,
  Copy = 3,  ///< first fanin passthrough (Buf/Not after invert)
};

class SimKernel {
 public:
  /// Compile a frozen netlist.  Throws std::invalid_argument if not frozen.
  /// The netlist must outlive the kernel.
  explicit SimKernel(const Netlist& n);

  const Netlist& netlist() const { return *n_; }
  std::size_t gate_count() const { return types_.size(); }

  /// GateId <-> kernel index translation (inverse permutations).
  KIndex index_of(GateId g) const { return kindex_[g]; }
  GateId gate_of(KIndex k) const { return order_[k]; }

  GateType type(KIndex k) const { return types_[k]; }
  unsigned level(KIndex k) const { return levels_[k]; }
  unsigned max_level() const { return max_level_; }
  bool is_output(KIndex k) const { return is_output_[k]; }

  std::span<const KIndex> fanins(KIndex k) const {
    return {fanin_flat_.data() + fanin_offset_[k],
            fanin_flat_.data() + fanin_offset_[k + 1]};
  }
  std::span<const KIndex> fanouts(KIndex k) const {
    return {fanout_flat_.data() + fanout_offset_[k],
            fanout_flat_.data() + fanout_offset_[k + 1]};
  }

  /// Primary inputs in PI order / primary outputs in PO order (kernel idx).
  std::span<const KIndex> inputs() const { return inputs_; }
  std::span<const KIndex> outputs() const { return outputs_; }

  /// Gates with at least one fanin (everything except inputs and constants)
  /// in evaluation order.  Ascending kernel index, hence level-ordered and
  /// fanin-safe by construction.
  std::span<const KIndex> schedule() const { return schedule_; }

  /// Fanin-less non-input gates (Const0/Const1), evaluated once at sim setup.
  std::span<const KIndex> constants() const { return constants_; }

  /// CSR of schedule() by level: the gates of level l occupy
  /// schedule()[off[l] .. off[l+1]) (off has max_level()+2 entries; level-0
  /// ranges are empty — inputs and constants are not scheduled).  Gates
  /// within one level are independent, which is what lets the wide simulator
  /// partition a level across workers without changing any value.
  std::span<const std::uint32_t> schedule_level_offsets() const {
    return schedule_level_offset_;
  }

  MicroOp op(KIndex k) const { return ops_[k]; }
  std::uint64_t invert_mask(KIndex k) const { return inv_[k]; }

  // --- FFR decomposition (see the header comment) ------------------------
  /// True iff k's output is observable beyond one successor (fanout != 1 or
  /// primary output); such gates root the fanout-free regions.
  bool is_stem(KIndex k) const { return stem_[k] == k; }
  /// Stem root of k's FFR (k itself when is_stem(k)).
  KIndex stem_of(KIndex k) const { return stem_[k]; }
  /// Ordinal of stem_of(k) in stems() — dense stem numbering for grouping.
  std::uint32_t stem_ordinal(KIndex k) const { return stem_ordinal_[stem_[k]]; }
  /// All stems in level order (ascending kernel index).
  std::span<const KIndex> stems() const { return stems_; }
  std::size_t stem_count() const { return stems_.size(); }
  /// Gates of the FFR rooted at stems()[ordinal], ascending kernel index.
  /// The member lists partition the gate set.
  std::span<const KIndex> ffr_members(std::uint32_t ordinal) const {
    return {ffr_members_.data() + ffr_offset_[ordinal],
            ffr_members_.data() + ffr_offset_[ordinal + 1]};
  }

  /// Raw array access for the innermost loops (kernel-index space).
  const GateType* type_data() const { return types_.data(); }
  const std::uint32_t* fanin_offset_data() const { return fanin_offset_.data(); }
  const KIndex* fanin_data() const { return fanin_flat_.data(); }
  const std::uint32_t* fanout_offset_data() const { return fanout_offset_.data(); }
  const KIndex* fanout_data() const { return fanout_flat_.data(); }
  const MicroOp* op_data() const { return ops_.data(); }
  const std::uint64_t* invert_data() const { return inv_.data(); }
  const std::uint32_t* level_data() const { return levels_.data(); }
  const char* is_output_data() const { return is_output_.data(); }

 private:
  const Netlist* n_;
  std::vector<GateId> order_;    // kernel idx -> GateId
  std::vector<KIndex> kindex_;   // GateId -> kernel idx
  std::vector<GateType> types_;
  std::vector<std::uint32_t> fanin_offset_;  // size gates+1
  std::vector<KIndex> fanin_flat_;
  std::vector<std::uint32_t> fanout_offset_;  // size gates+1
  std::vector<KIndex> fanout_flat_;
  std::vector<std::uint32_t> levels_;
  std::vector<char> is_output_;
  std::vector<KIndex> inputs_;
  std::vector<KIndex> outputs_;
  std::vector<KIndex> schedule_;
  std::vector<std::uint32_t> schedule_level_offset_;  // size max_level+2
  std::vector<KIndex> constants_;
  std::vector<MicroOp> ops_;
  std::vector<std::uint64_t> inv_;
  std::vector<KIndex> stem_;           // per gate: its FFR's stem root
  std::vector<std::uint32_t> stem_ordinal_;  // per stem gate: index in stems_
  std::vector<KIndex> stems_;          // stems in level order
  std::vector<std::uint32_t> ffr_offset_;    // size stems_+1, CSR into members
  std::vector<KIndex> ffr_members_;    // gates grouped by stem ordinal
  unsigned max_level_ = 0;
};

/// Evaluate one gate in the micro-op lowering over pattern words.  Fanin
/// slot i (indexing the kernel's flat fanin array, [b, e), e > b) is
/// supplied by `in(i)`; the word type (std::uint64_t or a wide SimWord<W>)
/// is deduced from its return value.  Inlines to the same code as an
/// open-coded loop — at W=1 this is byte-for-byte the original 64-bit
/// reduction.
template <class In>
auto eval_reduce(MicroOp op, std::uint64_t inv, std::uint32_t b,
                 std::uint32_t e, In&& in) {
  using Word = std::decay_t<decltype(in(b))>;
  Word v = in(b);
  switch (op) {
    case MicroOp::And:
      for (std::uint32_t i = b + 1; i < e; ++i) v &= in(i);
      break;
    case MicroOp::Or:
      for (std::uint32_t i = b + 1; i < e; ++i) v |= in(i);
      break;
    case MicroOp::Xor:
      for (std::uint32_t i = b + 1; i < e; ++i) v ^= in(i);
      break;
    case MicroOp::Copy: break;
  }
  return v ^ w_broadcast<Word>(inv);
}

/// Bit-parallel 2-valued simulator running on a SimKernel (the fast path;
/// BitParSim in bitpar_sim.hpp is the seed reference loop kept for
/// differential testing and benchmarking).  Each evaluation pass carries
/// W x 64 patterns: a group of up to W consecutive 64-lane PatternBlocks is
/// simulated at once, block j occupying sub-word j (pattern lane j*64 + L =
/// lane L of block j).  PatternBlock itself stays the 64-lane unit, so the
/// narrow ABI is untouched; KernelSim below is the W=1 instantiation and is
/// exactly the pre-template simulator.
template <unsigned W>
class WideSimT {
 public:
  using Word = SimWord<W>;

  /// The kernel must outlive the simulator.
  explicit WideSimT(const SimKernel& k);

  /// Simulate a group of 1..W blocks (same width each); afterwards value(g)
  /// holds gate g's word, block j in sub-word j (missing blocks are zero).
  void simulate(std::span<const PatternBlock> blocks);
  /// Simulate one block (sub-word 0 at W>1).
  void simulate(const PatternBlock& block) { simulate({&block, 1}); }

  /// Same evaluation, with wide levels partitioned across `pool` (levels are
  /// natural barriers: gates within one level never feed each other, so each
  /// value slot is written once by exactly one worker and the result is
  /// bit-identical to the serial pass for every worker count).  A null pool,
  /// a 1-worker pool, and levels too small to amortize the dispatch all fall
  /// back to the serial loop.
  void simulate(std::span<const PatternBlock> blocks, WorkerPool* pool);

  /// Lane mask of a block group: sub-word j = blocks[j].lane_mask().
  static Word group_lane_mask(std::span<const PatternBlock> blocks);

  /// Number of blocks (1..W) starting at `bi` that form one simulation
  /// group: a block is appended only while the previously added block is
  /// full (count == 64), so lane j*64+L always equals the pattern offset
  /// within the group — the invariant every simulate() consumer that maps
  /// lanes back to pattern indices relies on.
  static std::size_t group_size(std::span<const PatternBlock> blocks,
                                std::size_t bi) {
    std::size_t nb = 1;
    while (nb < W && bi + nb < blocks.size() && blocks[bi + nb - 1].count == 64)
      ++nb;
    return nb;
  }

  /// Value by netlist GateId (translated; use values()/value_at for hot paths).
  Word value(GateId g) const { return values_[k_->index_of(g)]; }
  /// Value by kernel index.
  Word value_at(KIndex k) const { return values_[k]; }
  /// All values, kernel-index space.
  std::span<const Word> values() const { return values_; }

  /// Output words in primary-output order.
  std::vector<Word> output_words() const;

  const SimKernel& kernel() const { return *k_; }

 private:
  const SimKernel* k_;
  std::vector<Word> values_;
};

extern template class WideSimT<1>;
#if BIST_WIDE_WORDS
extern template class WideSimT<4>;
#endif

/// The 64-lane simulator every pre-wide-word call site was written against.
using KernelSim = WideSimT<1>;

}  // namespace bist
