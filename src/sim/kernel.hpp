#pragma once
// Frozen structure-of-arrays compilation of a Netlist for the hot simulation
// loops.  The builder-facing Netlist stores one heap-allocated Gate per node
// (type + fanin vector + name, pointer-chased per gate per evaluation).
// SimKernel flattens that into contiguous arrays once — and renumbers the
// gates into level order, so the evaluation schedule is a sequential sweep
// over memory instead of a scatter across the id space:
//
//   kernel index       dense renumbering, sorted by (level, GateId)
//   types_             one byte per gate, kernel order
//   fanin CSR          flat fanin kernel indices + offsets (size gates+1)
//   fanout CSR         flat fanout kernel indices + offsets
//   levels_            logic level per gate, non-decreasing in kernel order
//   schedule_          kernel indices of gates with fanins, ascending
//   ops_/inv_          gate functions lowered to micro-ops (see MicroOp)
//
// The ten GateTypes are lowered to a 2-bit reduction op (And/Or/Xor/Copy)
// plus a 64-bit output-invert mask: NAND = And + invert, NOT = Copy +
// invert, and so on.  The hot loop then dispatches on a 4-way switch instead
// of a 10-way jump table — on type-diverse circuits the indirect-branch
// misprediction cost of the wide switch dominates gate evaluation, and this
// lowering is worth ~3x throughput.
//
// Everything inside the kernel speaks kernel indices; index_of()/gate_of()
// translate at the boundary to the netlist's GateId space (names, fault
// sites, test expectations).

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/bitpar_sim.hpp"

namespace bist {

/// Dense gate index in a SimKernel's level-ordered numbering.
using KIndex = std::uint32_t;

/// Reduction operator a gate's function is lowered to (inversion is a
/// separate mask, applied to the reduction result).
enum class MicroOp : std::uint8_t {
  And = 0,
  Or = 1,
  Xor = 2,
  Copy = 3,  ///< first fanin passthrough (Buf/Not after invert)
};

class SimKernel {
 public:
  /// Compile a frozen netlist.  Throws std::invalid_argument if not frozen.
  /// The netlist must outlive the kernel.
  explicit SimKernel(const Netlist& n);

  const Netlist& netlist() const { return *n_; }
  std::size_t gate_count() const { return types_.size(); }

  /// GateId <-> kernel index translation (inverse permutations).
  KIndex index_of(GateId g) const { return kindex_[g]; }
  GateId gate_of(KIndex k) const { return order_[k]; }

  GateType type(KIndex k) const { return types_[k]; }
  unsigned level(KIndex k) const { return levels_[k]; }
  unsigned max_level() const { return max_level_; }
  bool is_output(KIndex k) const { return is_output_[k]; }

  std::span<const KIndex> fanins(KIndex k) const {
    return {fanin_flat_.data() + fanin_offset_[k],
            fanin_flat_.data() + fanin_offset_[k + 1]};
  }
  std::span<const KIndex> fanouts(KIndex k) const {
    return {fanout_flat_.data() + fanout_offset_[k],
            fanout_flat_.data() + fanout_offset_[k + 1]};
  }

  /// Primary inputs in PI order / primary outputs in PO order (kernel idx).
  std::span<const KIndex> inputs() const { return inputs_; }
  std::span<const KIndex> outputs() const { return outputs_; }

  /// Gates with at least one fanin (everything except inputs and constants)
  /// in evaluation order.  Ascending kernel index, hence level-ordered and
  /// fanin-safe by construction.
  std::span<const KIndex> schedule() const { return schedule_; }

  /// Fanin-less non-input gates (Const0/Const1), evaluated once at sim setup.
  std::span<const KIndex> constants() const { return constants_; }

  MicroOp op(KIndex k) const { return ops_[k]; }
  std::uint64_t invert_mask(KIndex k) const { return inv_[k]; }

  /// Raw array access for the innermost loops (kernel-index space).
  const GateType* type_data() const { return types_.data(); }
  const std::uint32_t* fanin_offset_data() const { return fanin_offset_.data(); }
  const KIndex* fanin_data() const { return fanin_flat_.data(); }
  const MicroOp* op_data() const { return ops_.data(); }
  const std::uint64_t* invert_data() const { return inv_.data(); }

 private:
  const Netlist* n_;
  std::vector<GateId> order_;    // kernel idx -> GateId
  std::vector<KIndex> kindex_;   // GateId -> kernel idx
  std::vector<GateType> types_;
  std::vector<std::uint32_t> fanin_offset_;  // size gates+1
  std::vector<KIndex> fanin_flat_;
  std::vector<std::uint32_t> fanout_offset_;  // size gates+1
  std::vector<KIndex> fanout_flat_;
  std::vector<std::uint32_t> levels_;
  std::vector<char> is_output_;
  std::vector<KIndex> inputs_;
  std::vector<KIndex> outputs_;
  std::vector<KIndex> schedule_;
  std::vector<KIndex> constants_;
  std::vector<MicroOp> ops_;
  std::vector<std::uint64_t> inv_;
  unsigned max_level_ = 0;
};

/// Evaluate one gate in the micro-op lowering over 64-bit pattern words.
/// Fanin slot i (indexing the kernel's flat fanin array, [b, e), e > b) is
/// supplied by `in(i)`; inlines to the same code as an open-coded loop.
template <class In>
std::uint64_t eval_reduce(MicroOp op, std::uint64_t inv, std::uint32_t b,
                          std::uint32_t e, In&& in) {
  std::uint64_t v = in(b);
  switch (op) {
    case MicroOp::And:
      for (std::uint32_t i = b + 1; i < e; ++i) v &= in(i);
      break;
    case MicroOp::Or:
      for (std::uint32_t i = b + 1; i < e; ++i) v |= in(i);
      break;
    case MicroOp::Xor:
      for (std::uint32_t i = b + 1; i < e; ++i) v ^= in(i);
      break;
    case MicroOp::Copy: break;
  }
  return v ^ inv;
}

/// Bit-parallel 2-valued simulator running on a SimKernel (the fast path;
/// BitParSim in bitpar_sim.hpp is the seed reference loop kept for
/// differential testing and benchmarking).  64 patterns per evaluation pass.
class KernelSim {
 public:
  /// The kernel must outlive the simulator.
  explicit KernelSim(const SimKernel& k);

  /// Simulate one block; afterwards value(g) holds gate g's word.
  void simulate(const PatternBlock& block);

  /// Value by netlist GateId (translated; use values()/value_at for hot paths).
  std::uint64_t value(GateId g) const { return values_[k_->index_of(g)]; }
  /// Value by kernel index.
  std::uint64_t value_at(KIndex k) const { return values_[k]; }
  /// All values, kernel-index space.
  std::span<const std::uint64_t> values() const { return values_; }

  /// Output words in primary-output order.
  std::vector<std::uint64_t> output_words() const;

  const SimKernel& kernel() const { return *k_; }

 private:
  const SimKernel* k_;
  std::vector<std::uint64_t> values_;
};

}  // namespace bist
