#include "sim/bitpar_sim.hpp"

#include <stdexcept>

namespace bist {

PatternBlock pack_patterns(std::span<const BitVec> patterns, std::size_t width) {
  PatternBlock b;
  b.width = width;
  b.count = std::min<std::size_t>(patterns.size(), 64);
  b.input_words.assign(width, 0);
  for (std::size_t lane = 0; lane < b.count; ++lane) {
    const BitVec& p = patterns[lane];
    if (p.size() != width)
      throw std::invalid_argument("pack_patterns: pattern width mismatch");
    for (std::size_t i = 0; i < width; ++i)
      if (p.get(i)) b.input_words[i] |= std::uint64_t{1} << lane;
  }
  return b;
}

std::vector<PatternBlock> pack_all(std::span<const BitVec> patterns,
                                   std::size_t width) {
  std::vector<PatternBlock> blocks;
  for (std::size_t off = 0; off < patterns.size(); off += 64)
    blocks.push_back(pack_patterns(
        patterns.subspan(off, std::min<std::size_t>(64, patterns.size() - off)),
        width));
  return blocks;
}

std::uint64_t eval_gate_words(GateType t, std::span<const std::uint64_t> ins) {
  switch (t) {
    case GateType::Input: return 0;  // inputs are set externally
    case GateType::Const0: return 0;
    case GateType::Const1: return ~std::uint64_t{0};
    case GateType::Buf: return ins[0];
    case GateType::Not: return ~ins[0];
    case GateType::And:
    case GateType::Nand: {
      std::uint64_t v = ins[0];
      for (std::size_t i = 1; i < ins.size(); ++i) v &= ins[i];
      return t == GateType::Nand ? ~v : v;
    }
    case GateType::Or:
    case GateType::Nor: {
      std::uint64_t v = ins[0];
      for (std::size_t i = 1; i < ins.size(); ++i) v |= ins[i];
      return t == GateType::Nor ? ~v : v;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      std::uint64_t v = ins[0];
      for (std::size_t i = 1; i < ins.size(); ++i) v ^= ins[i];
      return t == GateType::Xnor ? ~v : v;
    }
  }
  return 0;
}

BitParSim::BitParSim(const Netlist& n) : n_(&n), values_(n.gate_count(), 0) {
  if (!n.frozen()) throw std::invalid_argument("BitParSim: netlist not frozen");
}

void BitParSim::simulate(const PatternBlock& block) {
  if (block.width != n_->input_count())
    throw std::invalid_argument("BitParSim: block width mismatch");
  std::uint64_t fis[64];
  for (GateId g = 0; g < n_->gate_count(); ++g) {
    const Gate& gg = n_->gate(g);
    if (gg.type == GateType::Input) {
      values_[g] = block.input_words[n_->input_index(g)];
      continue;
    }
    const std::size_t nin = gg.fanins.size();
    if (nin > 64) throw std::runtime_error("gate fanin > 64 unsupported");
    for (std::size_t i = 0; i < nin; ++i) fis[i] = values_[gg.fanins[i]];
    values_[g] = eval_gate_words(gg.type, {fis, nin});
  }
}

std::vector<std::uint64_t> BitParSim::output_words() const {
  std::vector<std::uint64_t> out;
  out.reserve(n_->output_count());
  for (GateId o : n_->outputs()) out.push_back(values_[o]);
  return out;
}

BitVec simulate_single(const Netlist& n, const BitVec& pattern) {
  BitParSim sim(n);
  sim.simulate(pack_patterns({&pattern, 1}, n.input_count()));
  BitVec out(n.output_count());
  for (std::size_t i = 0; i < n.output_count(); ++i)
    out.set(i, sim.value(n.outputs()[i]) & 1);
  return out;
}

}  // namespace bist
