#include "sim/ternary_sim.hpp"

#include <stdexcept>

namespace bist {

Ternary eval_gate_ternary(GateType t, std::span<const Ternary> ins) {
  using T = Ternary;
  switch (t) {
    case GateType::Input: return T::VX;
    case GateType::Const0: return T::V0;
    case GateType::Const1: return T::V1;
    case GateType::Buf: return ins[0];
    case GateType::Not: return t_not(ins[0]);
    case GateType::And:
    case GateType::Nand: {
      bool any_x = false;
      for (T v : ins) {
        if (v == T::V0) return t == GateType::And ? T::V0 : T::V1;
        if (v == T::VX) any_x = true;
      }
      if (any_x) return T::VX;
      return t == GateType::And ? T::V1 : T::V0;
    }
    case GateType::Or:
    case GateType::Nor: {
      bool any_x = false;
      for (T v : ins) {
        if (v == T::V1) return t == GateType::Or ? T::V1 : T::V0;
        if (v == T::VX) any_x = true;
      }
      if (any_x) return T::VX;
      return t == GateType::Or ? T::V0 : T::V1;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      bool parity = (t == GateType::Xnor);
      for (T v : ins) {
        if (v == T::VX) return T::VX;
        if (v == T::V1) parity = !parity;
      }
      return parity ? T::V1 : T::V0;
    }
  }
  return T::VX;
}

TernarySim::TernarySim(const Netlist& n)
    : n_(&n),
      values_(n.gate_count(), Ternary::VX),
      forced_(n.gate_count(), Ternary::VX),
      has_force_(n.gate_count(), 0),
      level_queues_(n.max_level() + 1),
      queued_(n.gate_count(), 0) {
  if (!n.frozen()) throw std::invalid_argument("TernarySim: netlist not frozen");
  full_eval();
}

void TernarySim::reset() {
  std::fill(values_.begin(), values_.end(), Ternary::VX);
  std::fill(forced_.begin(), forced_.end(), Ternary::VX);
  std::fill(has_force_.begin(), has_force_.end(), 0);
  full_eval();
}

void TernarySim::force(GateId g, Ternary v) {
  forced_[g] = v;
  has_force_[g] = 1;
  propagate_from(g);
}

void TernarySim::unforce(GateId g) {
  has_force_[g] = 0;
  propagate_from(g);
}

Ternary TernarySim::compute(GateId g) const {
  if (has_force_[g]) return forced_[g];
  const Gate& gg = n_->gate(g);
  if (gg.type == GateType::Input) return values_[g];  // kept as assigned
  Ternary fis[64];
  const std::size_t nin = gg.fanins.size();
  for (std::size_t i = 0; i < nin; ++i) fis[i] = values_[gg.fanins[i]];
  return eval_gate_ternary(gg.type, {fis, nin});
}

void TernarySim::set_input(std::size_t input_idx, Ternary v) {
  const GateId g = n_->inputs()[input_idx];
  const Ternary nv = has_force_[g] ? forced_[g] : v;
  if (!has_force_[g]) values_[g] = v;
  if (values_[g] != nv && has_force_[g]) values_[g] = nv;
  propagate_from(g);
}

void TernarySim::propagate_from(GateId root) {
  // Levelized event propagation: start with root's recomputation, then walk
  // strictly increasing levels so every gate is evaluated at most once.
  const Ternary nv = (n_->gate(root).type == GateType::Input && !has_force_[root])
                         ? values_[root]
                         : compute(root);
  const bool root_changed = values_[root] != nv;
  values_[root] = nv;
  if (!root_changed && n_->gate(root).type != GateType::Input) return;

  unsigned lo_level = n_->max_level() + 1;
  for (GateId f : n_->fanouts(root)) {
    if (!queued_[f]) {
      queued_[f] = 1;
      level_queues_[n_->level(f)].push_back(f);
      lo_level = std::min(lo_level, n_->level(f));
    }
  }
  for (unsigned lv = lo_level; lv <= n_->max_level(); ++lv) {
    auto& q = level_queues_[lv];
    for (std::size_t i = 0; i < q.size(); ++i) {
      const GateId g = q[i];
      queued_[g] = 0;
      const Ternary v = compute(g);
      if (v == values_[g]) continue;
      values_[g] = v;
      for (GateId f : n_->fanouts(g)) {
        if (!queued_[f]) {
          queued_[f] = 1;
          level_queues_[n_->level(f)].push_back(f);
        }
      }
    }
    q.clear();
  }
}

void TernarySim::full_eval() {
  for (GateId g = 0; g < n_->gate_count(); ++g) {
    if (has_force_[g]) { values_[g] = forced_[g]; continue; }
    if (n_->gate(g).type == GateType::Input) continue;  // keep assignment
    values_[g] = compute(g);
  }
}

}  // namespace bist
