#include "sim/ternary_sim.hpp"

#include <stdexcept>

namespace bist {

Ternary eval_gate_ternary(GateType t, std::span<const Ternary> ins) {
  using T = Ternary;
  switch (t) {
    case GateType::Input: return T::VX;
    case GateType::Const0: return T::V0;
    case GateType::Const1: return T::V1;
    case GateType::Buf: return ins[0];
    case GateType::Not: return t_not(ins[0]);
    case GateType::And:
    case GateType::Nand: {
      bool any_x = false;
      for (T v : ins) {
        if (v == T::V0) return t == GateType::And ? T::V0 : T::V1;
        if (v == T::VX) any_x = true;
      }
      if (any_x) return T::VX;
      return t == GateType::And ? T::V1 : T::V0;
    }
    case GateType::Or:
    case GateType::Nor: {
      bool any_x = false;
      for (T v : ins) {
        if (v == T::V1) return t == GateType::Or ? T::V1 : T::V0;
        if (v == T::VX) any_x = true;
      }
      if (any_x) return T::VX;
      return t == GateType::Or ? T::V0 : T::V1;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      bool parity = (t == GateType::Xnor);
      for (T v : ins) {
        if (v == T::VX) return T::VX;
        if (v == T::V1) parity = !parity;
      }
      return parity ? T::V1 : T::V0;
    }
  }
  return T::VX;
}

TernarySim::TernarySim(const Netlist& n)
    : owned_kernel_(std::make_unique<SimKernel>(n)), k_(owned_kernel_.get()) {
  init();
}

TernarySim::TernarySim(const SimKernel& k) : k_(&k) { init(); }

void TernarySim::init() {
  // compute() gathers fanins into a fixed Ternary[64] buffer; wider gates
  // are legal in the netlist (and fine in KernelSim) but not representable
  // here.
  const std::uint32_t* off = k_->fanin_offset_data();
  for (KIndex g = 0; g < k_->gate_count(); ++g)
    if (off[g + 1] - off[g] > 64)
      throw std::invalid_argument("TernarySim: gate fanin > 64 unsupported");
  values_.assign(k_->gate_count(), Ternary::VX);
  assigned_.assign(k_->gate_count(), Ternary::VX);
  forced_.assign(k_->gate_count(), Ternary::VX);
  has_force_.assign(k_->gate_count(), 0);
  pin_forced_.assign(off[k_->gate_count()], Ternary::VX);
  has_pin_force_.assign(k_->gate_count(), 0);
  level_queues_.resize(k_->max_level() + 1);
  queued_.assign(k_->gate_count(), 0);
  full_eval();
}

void TernarySim::reset() {
  std::fill(values_.begin(), values_.end(), Ternary::VX);
  std::fill(assigned_.begin(), assigned_.end(), Ternary::VX);
  std::fill(forced_.begin(), forced_.end(), Ternary::VX);
  std::fill(has_force_.begin(), has_force_.end(), 0);
  std::fill(pin_forced_.begin(), pin_forced_.end(), Ternary::VX);
  std::fill(has_pin_force_.begin(), has_pin_force_.end(), 0);
  full_eval();
}

void TernarySim::force_at(KIndex k, Ternary v) {
  forced_[k] = v;
  has_force_[k] = 1;
  propagate_from(k);
}

void TernarySim::unforce_at(KIndex k) {
  has_force_[k] = 0;
  propagate_from(k);
}

void TernarySim::force_pin_at(KIndex k, unsigned pin, Ternary v) {
  const std::uint32_t* off = k_->fanin_offset_data();
  if (off[k] + pin >= off[k + 1])
    throw std::out_of_range("TernarySim::force_pin: pin out of range");
  pin_forced_[off[k] + pin] = v;
  has_pin_force_[k] = 1;
  propagate_from(k);
}

void TernarySim::unforce_pin_at(KIndex k, unsigned pin) {
  const std::uint32_t* off = k_->fanin_offset_data();
  if (off[k] + pin >= off[k + 1])
    throw std::out_of_range("TernarySim::unforce_pin: pin out of range");
  pin_forced_[off[k] + pin] = Ternary::VX;
  has_pin_force_[k] = 0;
  for (std::uint32_t i = off[k]; i < off[k + 1]; ++i)
    if (pin_forced_[i] != Ternary::VX) has_pin_force_[k] = 1;
  propagate_from(k);
}

Ternary TernarySim::compute(KIndex k) const {
  if (has_force_[k]) return forced_[k];
  if (k_->type(k) == GateType::Input) return assigned_[k];
  Ternary fis[64];
  const std::uint32_t* off = k_->fanin_offset_data();
  const KIndex* fi = k_->fanin_data();
  const std::uint32_t b = off[k];
  const std::size_t nin = off[k + 1] - b;
  for (std::size_t i = 0; i < nin; ++i) fis[i] = values_[fi[b + i]];
  if (has_pin_force_[k])
    for (std::size_t i = 0; i < nin; ++i)
      if (pin_forced_[b + i] != Ternary::VX) fis[i] = pin_forced_[b + i];
  return eval_gate_ternary(k_->type(k), {fis, nin});
}

void TernarySim::set_input(std::size_t input_idx, Ternary v) {
  const KIndex g = k_->inputs()[input_idx];
  assigned_[g] = v;
  propagate_from(g);
}

void TernarySim::propagate_from(KIndex root) {
  // Levelized event propagation: start with root's recomputation, then walk
  // strictly increasing levels so every gate is evaluated at most once.
  // compute() resolves forces and PI assignments uniformly, so an unchanged
  // root value means no fanout can change either.
  const Ternary nv = compute(root);
  if (values_[root] == nv) return;
  values_[root] = nv;

  unsigned lo_level = k_->max_level() + 1;
  for (KIndex f : k_->fanouts(root)) {
    if (!queued_[f]) {
      queued_[f] = 1;
      level_queues_[k_->level(f)].push_back(f);
      lo_level = std::min(lo_level, k_->level(f));
    }
  }
  for (unsigned lv = lo_level; lv <= k_->max_level(); ++lv) {
    auto& q = level_queues_[lv];
    for (std::size_t i = 0; i < q.size(); ++i) {
      const KIndex g = q[i];
      queued_[g] = 0;
      const Ternary v = compute(g);
      if (v == values_[g]) continue;
      values_[g] = v;
      for (KIndex f : k_->fanouts(g)) {
        if (!queued_[f]) {
          queued_[f] = 1;
          level_queues_[k_->level(f)].push_back(f);
        }
      }
    }
    q.clear();
  }
}

void TernarySim::full_eval() {
  for (KIndex g = 0; g < k_->gate_count(); ++g) values_[g] = compute(g);
}

}  // namespace bist
