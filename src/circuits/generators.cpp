#include "circuits/generators.hpp"

#include <algorithm>
#include <stdexcept>

namespace bist {

FullAdderOut append_full_adder(Netlist& n, GateId a, GateId b, GateId cin) {
  const GateId axb = n.add_gate(GateType::Xor, {a, b});
  const GateId sum = n.add_gate(GateType::Xor, {axb, cin});
  const GateId ab = n.add_gate(GateType::And, {a, b});
  const GateId axbc = n.add_gate(GateType::And, {axb, cin});
  const GateId carry = n.add_gate(GateType::Or, {ab, axbc});
  return {sum, carry};
}

GateId append_xor_tree(Netlist& n, std::vector<GateId> leaves) {
  if (leaves.empty()) throw std::invalid_argument("append_xor_tree: no leaves");
  while (leaves.size() > 1) {
    std::vector<GateId> next;
    next.reserve((leaves.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < leaves.size(); i += 2)
      next.push_back(n.add_gate(GateType::Xor, {leaves[i], leaves[i + 1]}));
    if (leaves.size() % 2) next.push_back(leaves.back());
    leaves = std::move(next);
  }
  return leaves[0];
}

GateId append_code_detector(Netlist& n, std::span<const GateId> nets,
                            std::uint64_t code) {
  if (nets.empty()) throw std::invalid_argument("code detector: no nets");
  std::vector<GateId> lits;
  lits.reserve(nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const bool want1 = (code >> (i % 64)) & 1;
    lits.push_back(want1 ? nets[i] : n.add_gate(GateType::Not, {nets[i]}));
  }
  // Balanced AND tree.
  while (lits.size() > 1) {
    std::vector<GateId> next;
    next.reserve((lits.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < lits.size(); i += 2)
      next.push_back(n.add_gate(GateType::And, {lits[i], lits[i + 1]}));
    if (lits.size() % 2) next.push_back(lits.back());
    lits = std::move(next);
  }
  return lits[0];
}

std::vector<GateId> append_random_cloud(Netlist& n, Rng& rng,
                                        std::span<const GateId> sources,
                                        const CloudOptions& opt) {
  if (sources.empty()) throw std::invalid_argument("random cloud: no sources");
  // ISCAS-like mix: NAND-heavy with inverters and some parity logic.
  struct Mix { GateType t; unsigned weight; unsigned min_in, max_in; };
  static constexpr Mix kMix[] = {
      {GateType::Nand, 30, 2, 4}, {GateType::Nor, 14, 2, 3},
      {GateType::And, 12, 2, 4},  {GateType::Or, 10, 2, 3},
      {GateType::Xor, 9, 2, 2},   {GateType::Xnor, 4, 2, 2},
      {GateType::Not, 15, 1, 1},  {GateType::Buf, 6, 1, 1},
  };
  unsigned total_w = 0;
  for (const auto& m : kMix) total_w += m.weight;

  std::vector<GateId> pool(sources.begin(), sources.end());
  std::vector<GateId> added;
  added.reserve(opt.gate_budget);
  for (std::size_t k = 0; k < opt.gate_budget; ++k) {
    unsigned pick = rng.next_below(total_w);
    const Mix* m = kMix;
    while (pick >= m->weight) { pick -= m->weight; ++m; }
    const unsigned span_in = m->min_in +
        (m->max_in > m->min_in ? rng.next_below(m->max_in - m->min_in + 1) : 0);
    const unsigned nin = std::min<unsigned>(span_in, opt.max_fanin);

    std::vector<GateId> fis;
    fis.reserve(nin);
    for (unsigned i = 0; i < nin; ++i) {
      GateId f;
      int guard = 0;
      do {
        if (rng.next_double() < opt.locality && pool.size() > opt.window) {
          const std::size_t lo = pool.size() - opt.window;
          f = pool[lo + rng.next_below(static_cast<std::uint32_t>(opt.window))];
        } else {
          f = pool[rng.next_below(static_cast<std::uint32_t>(pool.size()))];
        }
      } while (std::find(fis.begin(), fis.end(), f) != fis.end() && ++guard < 8);
      if (std::find(fis.begin(), fis.end(), f) != fis.end()) continue;
      fis.push_back(f);
    }
    if (fis.empty()) fis.push_back(pool.back());
    GateType t = m->t;
    if (fis.size() == 1 && t != GateType::Not && t != GateType::Buf)
      t = rng.next_bool() ? GateType::Not : GateType::Buf;
    const GateId g = n.add_gate(t, fis);
    pool.push_back(g);
    added.push_back(g);
  }
  return added;
}

std::vector<GateId> append_alu_slices(Netlist& n, std::span<const GateId> a,
                                      std::span<const GateId> b,
                                      std::span<const GateId> fsel) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("alu slices: operand size mismatch");
  if (fsel.size() < 2) throw std::invalid_argument("alu slices: need >=2 fsel");
  std::vector<GateId> outs;
  outs.reserve(a.size());
  GateId carry = fsel[fsel.size() - 1];  // carry-in doubles as a mode bit
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Function unit: AND / OR / XOR / ADD selected by fsel.
    const GateId f_and = n.add_gate(GateType::And, {a[i], b[i]});
    const GateId f_or = n.add_gate(GateType::Or, {a[i], b[i]});
    const GateId f_xor = n.add_gate(GateType::Xor, {a[i], b[i]});
    const auto fa = append_full_adder(n, a[i], b[i], carry);
    carry = fa.carry;
    // 4:1 mux from fsel[0], fsel[1].
    const GateId s0 = fsel[0], s1 = fsel[1];
    const GateId ns0 = n.add_gate(GateType::Not, {s0});
    const GateId ns1 = n.add_gate(GateType::Not, {s1});
    const GateId t0 = n.add_gate(GateType::And, {f_and, ns0});
    const GateId t1 = n.add_gate(GateType::And, {f_or, s0});
    const GateId m0 = n.add_gate(GateType::Or, {t0, t1});
    const GateId t2 = n.add_gate(GateType::And, {f_xor, ns0});
    const GateId t3 = n.add_gate(GateType::And, {fa.sum, s0});
    const GateId m1 = n.add_gate(GateType::Or, {t2, t3});
    const GateId u0 = n.add_gate(GateType::And, {m0, ns1});
    const GateId u1 = n.add_gate(GateType::And, {m1, s1});
    outs.push_back(n.add_gate(GateType::Or, {u0, u1}));
  }
  outs.push_back(carry);
  return outs;
}

Netlist make_ripple_adder(unsigned bits) {
  if (bits == 0) throw std::invalid_argument("adder: bits == 0");
  Netlist n("adder" + std::to_string(bits));
  std::vector<GateId> a, b;
  for (unsigned i = 0; i < bits; ++i) a.push_back(n.add_input("a" + std::to_string(i)));
  for (unsigned i = 0; i < bits; ++i) b.push_back(n.add_input("b" + std::to_string(i)));
  GateId carry = n.add_input("cin");
  for (unsigned i = 0; i < bits; ++i) {
    const auto fa = append_full_adder(n, a[i], b[i], carry);
    n.add_output(fa.sum);
    carry = fa.carry;
  }
  n.add_output(carry);
  n.freeze();
  return n;
}

Netlist make_array_multiplier(unsigned bits) {
  if (bits < 2) throw std::invalid_argument("multiplier: bits < 2");
  Netlist n("mult" + std::to_string(bits));
  std::vector<GateId> a, b;
  for (unsigned i = 0; i < bits; ++i) a.push_back(n.add_input("a" + std::to_string(i)));
  for (unsigned i = 0; i < bits; ++i) b.push_back(n.add_input("b" + std::to_string(i)));

  // Partial products.
  std::vector<std::vector<GateId>> pp(bits, std::vector<GateId>(bits));
  for (unsigned i = 0; i < bits; ++i)
    for (unsigned j = 0; j < bits; ++j)
      pp[i][j] = n.add_gate(GateType::And, {a[i], b[j]});

  // Weight-indexed accumulation: bit_at[w] is the current (single) partial
  // bit of weight w; each row is rippled in with HA/FA cells.
  std::vector<GateId> bit_at(2 * bits, kNoGate);
  for (unsigned j = 0; j < bits; ++j) bit_at[j] = pp[0][j];
  for (unsigned i = 1; i < bits; ++i) {
    GateId carry = kNoGate;
    for (unsigned j = 0; j < bits; ++j) {
      const unsigned w = i + j;
      const GateId x = pp[i][j];
      const GateId y = bit_at[w];
      if (y == kNoGate && carry == kNoGate) {
        bit_at[w] = x;
      } else if (y == kNoGate || carry == kNoGate) {
        const GateId other = (y == kNoGate) ? carry : y;
        bit_at[w] = n.add_gate(GateType::Xor, {x, other});
        carry = n.add_gate(GateType::And, {x, other});
      } else {
        const auto fa = append_full_adder(n, x, y, carry);
        bit_at[w] = fa.sum;
        carry = fa.carry;
      }
    }
    // Propagate the row carry into the higher weights.
    unsigned w = i + bits;
    while (carry != kNoGate && w < 2 * bits) {
      if (bit_at[w] == kNoGate) {
        bit_at[w] = carry;
        carry = kNoGate;
      } else {
        const GateId s = n.add_gate(GateType::Xor, {bit_at[w], carry});
        carry = n.add_gate(GateType::And, {bit_at[w], carry});
        bit_at[w] = s;
        ++w;
      }
    }
  }
  for (unsigned w = 0; w < 2 * bits; ++w) {
    // The top weight can stay empty for tiny widths; tie it to a constant 0
    // so the PO count is always 2*bits.
    if (bit_at[w] == kNoGate)
      bit_at[w] = n.add_gate(GateType::Xor, {pp[0][0], pp[0][0]});
    n.add_output(bit_at[w]);
  }
  n.freeze();
  return n;
}

Netlist make_parity_tree(unsigned width) {
  if (width < 2) throw std::invalid_argument("parity: width < 2");
  Netlist n("parity" + std::to_string(width));
  std::vector<GateId> leaves;
  for (unsigned i = 0; i < width; ++i)
    leaves.push_back(n.add_input("x" + std::to_string(i)));
  n.add_output(append_xor_tree(n, std::move(leaves)));
  n.freeze();
  return n;
}

Netlist make_ecc_circuit(unsigned data_bits, unsigned syndrome_bits) {
  if (data_bits < 4 || syndrome_bits < 2)
    throw std::invalid_argument("ecc: bad sizes");
  Netlist n("ecc" + std::to_string(data_bits));
  std::vector<GateId> d;
  for (unsigned i = 0; i < data_bits; ++i)
    d.push_back(n.add_input("d" + std::to_string(i)));
  std::vector<GateId> c;
  for (unsigned i = 0; i < syndrome_bits; ++i)
    c.push_back(n.add_input("c" + std::to_string(i)));

  // Syndrome bit j = parity of data bits whose index has bit j set, xor c[j].
  std::vector<GateId> syn;
  for (unsigned j = 0; j < syndrome_bits; ++j) {
    std::vector<GateId> leaves{c[j]};
    for (unsigned i = 0; i < data_bits; ++i)
      if ((i >> j) & 1) leaves.push_back(d[i]);
    syn.push_back(append_xor_tree(n, std::move(leaves)));
  }
  // Correction: decode syndrome -> flip the addressed data bit.
  for (unsigned i = 0; i < data_bits; ++i) {
    std::vector<GateId> lits;
    for (unsigned j = 0; j < syndrome_bits; ++j)
      lits.push_back(((i >> j) & 1) ? syn[j] : n.add_gate(GateType::Not, {syn[j]}));
    GateId sel = lits[0];
    for (std::size_t k = 1; k < lits.size(); ++k)
      sel = n.add_gate(GateType::And, {sel, lits[k]});
    n.add_output(n.add_gate(GateType::Xor, {d[i], sel}));
  }
  n.freeze();
  return n;
}

}  // namespace bist
