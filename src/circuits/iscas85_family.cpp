#include "circuits/iscas85_family.hpp"

#include <algorithm>
#include <stdexcept>

#include "circuits/c17.hpp"
#include "circuits/generators.hpp"
#include "util/rng.hpp"

namespace bist {

const std::vector<SurrogateSpec>& iscas85_specs() {
  // PI/PO/gate counts from the ISCAS85 distribution [Brg85].
  static const std::vector<SurrogateSpec> kSpecs = {
      {"c432s", 36, 7, 160, BlockFlavor::RandomLogic, 3, 10, 432},
      {"c499s", 41, 32, 202, BlockFlavor::Ecc, 2, 10, 499},
      {"c880s", 60, 26, 383, BlockFlavor::Alu, 4, 11, 880},
      {"c1355s", 41, 32, 546, BlockFlavor::Ecc, 3, 11, 1355},
      {"c1908s", 33, 25, 880, BlockFlavor::RandomLogic, 5, 12, 1908},
      {"c2670s", 233, 140, 1193, BlockFlavor::RandomLogic, 6, 13, 2670},
      {"c3540s", 50, 22, 1669, BlockFlavor::Alu, 6, 13, 3540},
      {"c5315s", 178, 123, 2307, BlockFlavor::Alu, 7, 13, 5315},
      {"c6288s", 32, 32, 2416, BlockFlavor::Multiplier, 0, 12, 6288},
      {"c7552s", 207, 108, 3512, BlockFlavor::RandomLogic, 8, 13, 7552},
  };
  return kSpecs;
}

std::optional<SurrogateSpec> find_spec(std::string_view name) {
  for (const auto& s : iscas85_specs()) {
    if (s.name == name) return s;
    if (name.size() + 1 == s.name.size() &&
        s.name.compare(0, name.size(), name) == 0)
      return s;  // "c432" matches "c432s"
  }
  return std::nullopt;
}

namespace {

/// Partition `sinks` into `groups` XOR-collected outputs so that every sink
/// is structurally observable and the PO count is exact.
std::vector<GateId> collect_outputs(Netlist& n, std::vector<GateId> sinks,
                                    unsigned groups, Rng& rng) {
  if (sinks.size() < groups) {
    // Too few sinks: replicate observable gates as extra PO drivers via
    // buffers so the PO count still matches the original circuit.
    while (sinks.size() < groups) {
      const GateId src = sinks[rng.next_below(static_cast<std::uint32_t>(sinks.size()))];
      sinks.push_back(n.add_gate(GateType::Not, {src}));
    }
  }
  std::vector<std::vector<GateId>> buckets(groups);
  for (std::size_t i = 0; i < sinks.size(); ++i)
    buckets[i % groups].push_back(sinks[i]);
  std::vector<GateId> pos;
  pos.reserve(groups);
  for (auto& b : buckets)
    pos.push_back(b.size() == 1 ? b[0] : append_xor_tree(n, std::move(b)));
  return pos;
}

/// Current number of logic gates (excludes PIs).
std::size_t logic_gates(const Netlist& n) { return n.logic_gate_count(); }

}  // namespace

Netlist make_surrogate(const SurrogateSpec& spec) {
  if (spec.inputs < 4 || spec.outputs < 1 || spec.target_gates < 8)
    throw std::invalid_argument("surrogate spec too small");
  Rng rng(spec.seed * 0x9e3779b97f4a7c15ull + 1);
  Netlist n(spec.name);

  std::vector<GateId> pis;
  pis.reserve(spec.inputs);
  for (unsigned i = 0; i < spec.inputs; ++i)
    pis.push_back(n.add_input("pi" + std::to_string(i)));

  std::vector<GateId> block_outs;

  // --- structured core -----------------------------------------------------
  switch (spec.flavor) {
    case BlockFlavor::Multiplier: {
      // c6288: 16x16 array multiplier on the real PIs.
      const unsigned half = spec.inputs / 2;
      std::vector<GateId> a(pis.begin(), pis.begin() + half);
      std::vector<GateId> b(pis.begin() + half, pis.begin() + 2 * half);
      // Partial products + reduction, inline (same construction as
      // make_array_multiplier but appended to this netlist).
      std::vector<std::vector<GateId>> pp(half, std::vector<GateId>(half));
      for (unsigned i = 0; i < half; ++i)
        for (unsigned j = 0; j < half; ++j)
          pp[i][j] = n.add_gate(GateType::And, {a[i], b[j]});
      std::vector<GateId> bit_at(2 * half, kNoGate);
      for (unsigned j = 0; j < half; ++j) bit_at[j] = pp[0][j];
      for (unsigned i = 1; i < half; ++i) {
        GateId carry = kNoGate;
        for (unsigned j = 0; j < half; ++j) {
          const unsigned w = i + j;
          const GateId x = pp[i][j];
          const GateId y = bit_at[w];
          if (y == kNoGate && carry == kNoGate) {
            bit_at[w] = x;
          } else if (y == kNoGate || carry == kNoGate) {
            const GateId other = (y == kNoGate) ? carry : y;
            bit_at[w] = n.add_gate(GateType::Xor, {x, other});
            carry = n.add_gate(GateType::And, {x, other});
          } else {
            const auto fa = append_full_adder(n, x, y, carry);
            bit_at[w] = fa.sum;
            carry = fa.carry;
          }
        }
        unsigned w = i + half;
        while (carry != kNoGate && w < 2 * half) {
          if (bit_at[w] == kNoGate) { bit_at[w] = carry; carry = kNoGate; }
          else {
            const GateId s = n.add_gate(GateType::Xor, {bit_at[w], carry});
            carry = n.add_gate(GateType::And, {bit_at[w], carry});
            bit_at[w] = s;
            ++w;
          }
        }
      }
      for (GateId g : bit_at)
        if (g != kNoGate) block_outs.push_back(g);
      break;
    }
    case BlockFlavor::Alu: {
      const unsigned width = std::min<unsigned>(16, (spec.inputs - 3) / 2);
      std::vector<GateId> a(pis.begin(), pis.begin() + width);
      std::vector<GateId> b(pis.begin() + width, pis.begin() + 2 * width);
      std::vector<GateId> fsel(pis.begin() + 2 * width, pis.begin() + 2 * width + 3);
      auto outs = append_alu_slices(n, a, b, fsel);
      block_outs.insert(block_outs.end(), outs.begin(), outs.end());
      break;
    }
    case BlockFlavor::Ecc: {
      // Syndrome XOR trees like C499/C1355.
      const unsigned syn = 5;
      for (unsigned j = 0; j < syn; ++j) {
        std::vector<GateId> leaves;
        for (unsigned i = 0; i < spec.inputs; ++i)
          if ((i >> j) & 1) leaves.push_back(pis[i]);
        if (leaves.size() >= 2)
          block_outs.push_back(append_xor_tree(n, std::move(leaves)));
      }
      break;
    }
    case BlockFlavor::RandomLogic:
      break;
  }

  // --- random-pattern-resistant detectors ---------------------------------
  // Wide code detectors on random PI subsets: their output stuck-at-0 (and
  // the cone feeding them) is detected with probability ~2^-w per random
  // pattern, reproducing the hard-fault tail of Figure 4.
  std::vector<GateId> rpr_outs;
  for (unsigned d = 0; d < spec.rpr_detectors; ++d) {
    std::vector<GateId> nets;
    for (unsigned i = 0; i < spec.rpr_width; ++i)
      nets.push_back(pis[rng.next_below(spec.inputs)]);
    rpr_outs.push_back(append_code_detector(n, nets, rng.next_u64()));
  }

  // --- random cloud to approach the gate budget ----------------------------
  std::vector<GateId> sources = pis;
  sources.insert(sources.end(), block_outs.begin(), block_outs.end());
  sources.insert(sources.end(), rpr_outs.begin(), rpr_outs.end());

  // Reserve an estimate for the XOR observability collectors: the number of
  // eventual sink gates is roughly cloud_gates * sink_ratio; each extra sink
  // beyond the PO count costs one XOR gate.
  const double sink_ratio = 0.22;
  std::size_t structured = logic_gates(n);
  if (structured >= spec.target_gates)
    throw std::runtime_error("structured core exceeds gate budget for " + spec.name);
  std::size_t remaining = spec.target_gates - structured;
  std::size_t cloud_budget = static_cast<std::size_t>(
      static_cast<double>(remaining) / (1.0 + sink_ratio));

  CloudOptions copt;
  copt.gate_budget = cloud_budget;
  append_random_cloud(n, rng, sources, copt);

  // --- output selection + observability collectors ------------------------
  // First make sure every PI is used: an unused PI would make all its faults
  // untestable and distort the redundancy profile.
  {
    std::vector<std::uint32_t> nfan0(n.gate_count(), 0);
    for (GateId g = 0; g < n.gate_count(); ++g)
      for (GateId f : n.gate(g).fanins) ++nfan0[f];
    for (unsigned i = 0; i < pis.size(); ++i)
      if (nfan0[pis[i]] == 0) {
        GateId other = pis[rng.next_below(spec.inputs)];
        if (other == pis[i]) other = pis[(i + 1) % spec.inputs];
        n.add_gate(GateType::Xor, {pis[i], other});
      }
  }

  // Sinks = gates with no fanout yet.  We can't call freeze() yet, so count
  // fanouts manually.
  std::vector<std::uint32_t> nfan(n.gate_count(), 0);
  for (GateId g = 0; g < n.gate_count(); ++g)
    for (GateId f : n.gate(g).fanins) ++nfan[f];
  std::vector<GateId> sinks;
  for (GateId g = 0; g < n.gate_count(); ++g)
    if (nfan[g] == 0 && n.gate(g).type != GateType::Input) sinks.push_back(g);

  // Pad with small gadget chains to hit the exact gate target, accounting
  // for the XOR collectors we are about to add.
  auto projected_total = [&]() {
    const std::size_t extra_sinks =
        sinks.size() > spec.outputs ? sinks.size() - spec.outputs : 0;
    return logic_gates(n) + extra_sinks;  // each extra sink costs ~1 XOR
  };
  while (projected_total() + 2 <= spec.target_gates) {
    // Two-gate observable gadget: NAND of two random nets + inverter.
    const GateId x = static_cast<GateId>(rng.next_below(
        static_cast<std::uint32_t>(n.gate_count())));
    const GateId y = static_cast<GateId>(rng.next_below(
        static_cast<std::uint32_t>(n.gate_count())));
    const GateId g1 = n.add_gate(GateType::Nand, {x, y == x ? pis[0] : y});
    const GateId g2 = n.add_gate(GateType::Not, {g1});
    sinks.push_back(g2);
  }

  for (GateId o : collect_outputs(n, std::move(sinks), spec.outputs, rng))
    n.add_output(o);

  n.freeze();
  return n;
}

Netlist make_iscas85(std::string_view name) {
  if (name == "c17" || name == "c17s") return make_c17();
  const auto spec = find_spec(name);
  if (!spec) throw std::invalid_argument("unknown ISCAS85 name: " + std::string(name));
  return make_surrogate(*spec);
}

std::vector<std::string> iscas85_names() {
  std::vector<std::string> out{"c17"};
  for (const auto& s : iscas85_specs()) out.push_back(s.name);
  return out;
}

}  // namespace bist
