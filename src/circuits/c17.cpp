#include "circuits/c17.hpp"

namespace bist {

const char* c17_bench_text() {
  return R"(# c17 -- ISCAS85
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
}

Netlist make_c17() {
  Netlist n("c17");
  const GateId i1 = n.add_input("1");
  const GateId i2 = n.add_input("2");
  const GateId i3 = n.add_input("3");
  const GateId i6 = n.add_input("6");
  const GateId i7 = n.add_input("7");
  const GateId g10 = n.add_gate(GateType::Nand, {i1, i3}, "10");
  const GateId g11 = n.add_gate(GateType::Nand, {i3, i6}, "11");
  const GateId g16 = n.add_gate(GateType::Nand, {i2, g11}, "16");
  const GateId g19 = n.add_gate(GateType::Nand, {g11, i7}, "19");
  const GateId g22 = n.add_gate(GateType::Nand, {g10, g16}, "22");
  const GateId g23 = n.add_gate(GateType::Nand, {g16, g19}, "23");
  n.add_output(g22);
  n.add_output(g23);
  n.freeze();
  return n;
}

}  // namespace bist
