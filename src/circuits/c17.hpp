#pragma once
// The real ISCAS85 C17 benchmark (6 NAND gates, 5 PIs, 2 POs) — small enough
// to embed exactly.  Used by the Figure-2 reproduction and many unit tests.

#include "netlist/netlist.hpp"

namespace bist {

/// Build the exact C17 netlist [Brg85].
Netlist make_c17();

/// The original .bench text of C17 (for parser round-trip tests).
const char* c17_bench_text();

}  // namespace bist
