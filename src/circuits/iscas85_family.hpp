#pragma once
// Surrogate family for the ISCAS85 benchmarks.
//
// The paper's experiments run on the original ISCAS85 netlists [Brg85].
// This offline reproduction cannot fetch them, so — per the substitution
// rule in DESIGN.md — each circuit (except C17, which is embedded exactly)
// is replaced by a *surrogate* with the same primary-input, primary-output
// and gate counts, assembled from structured blocks that match the original
// circuit's character (ALU slices, ECC/XOR trees, an array multiplier for
// C6288) plus a random logic cloud, XOR observability collectors, and a few
// wide code detectors that provide the random-pattern-resistant fault tail
// the paper's Figures 4/5 depend on.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace bist {

enum class BlockFlavor : std::uint8_t {
  RandomLogic,   ///< pure cloud (c432/c1908-like control logic)
  Alu,           ///< ALU slice array + cloud (c880/c3540)
  Ecc,           ///< XOR syndrome trees + cloud (c499/c1355)
  Multiplier,    ///< array multiplier core (c6288)
};

struct SurrogateSpec {
  std::string name;          ///< "c432s", ...
  unsigned inputs = 0;       ///< primary inputs of the original
  unsigned outputs = 0;      ///< primary outputs of the original
  unsigned target_gates = 0; ///< logic-gate count of the original
  BlockFlavor flavor = BlockFlavor::RandomLogic;
  unsigned rpr_detectors = 4;     ///< wide code detectors (RPR tail)
  unsigned rpr_width = 12;        ///< detector width (detection prob 2^-w)
  std::uint64_t seed = 1;
};

/// Specs matching the published ISCAS85 sizes (gate counts from [Brg85]).
/// Index order matches the paper's Table 1 / Figure 6.
const std::vector<SurrogateSpec>& iscas85_specs();

/// Look up a spec by name ("c432s" or "c432"); nullopt when unknown.
std::optional<SurrogateSpec> find_spec(std::string_view name);

/// Build the surrogate for a spec.  Deterministic for a given spec+seed.
/// Postconditions (asserted by tests): input/output counts exact; gate count
/// within 3% of target_gates; every gate structurally observable.
Netlist make_surrogate(const SurrogateSpec& spec);

/// Convenience: build by name; "c17" returns the exact C17.
Netlist make_iscas85(std::string_view name);

/// Names of the full family in Table-1 order: c17, c432s, ..., c7552s.
std::vector<std::string> iscas85_names();

}  // namespace bist
