#pragma once
// Parameterized structural circuit generators.  These are the building
// blocks from which the ISCAS85 surrogate family is assembled (see
// iscas85_family.hpp) and are also useful stand-alone test articles:
// ripple adders, array multipliers, parity/ECC trees, comparator-style
// random-pattern-resistant blocks, and random logic clouds.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace bist {

/// n-bit ripple-carry adder: PIs a[0..n-1], b[0..n-1], cin; POs sum + cout.
Netlist make_ripple_adder(unsigned bits);

/// n x n array multiplier (AND partial products + FA/HA reduction built from
/// 2-input gates).  PIs a[0..n-1], b[0..n-1]; POs p[0..2n-1].  c6288-like.
Netlist make_array_multiplier(unsigned bits);

/// Parity tree over `width` inputs (XOR reduction); c499-flavoured when
/// combined with the ECC generator below.
Netlist make_parity_tree(unsigned width);

/// 32-bit single-error-correction style circuit: k data bits in, syndrome
/// XOR trees + correction ANDs out.  Shaped after C499/C1355.
Netlist make_ecc_circuit(unsigned data_bits, unsigned syndrome_bits);

/// --- sub-block builders (append into an existing netlist) ---------------
/// Each returns the output gate ids of the block.

/// Full adder on three existing nets; appends 5 gates.
struct FullAdderOut { GateId sum, carry; };
FullAdderOut append_full_adder(Netlist& n, GateId a, GateId b, GateId cin);

/// Balanced XOR tree over `leaves`; returns its root (the leaves vector must
/// not be empty).
GateId append_xor_tree(Netlist& n, std::vector<GateId> leaves);

/// Wide AND-of-literals "code detector": fires only when the selected nets
/// match `code` exactly.  Detection probability under random patterns is
/// 2^-k, which makes its output faults random-pattern resistant.  Appends
/// inverters + a balanced AND tree; returns the detector output.
GateId append_code_detector(Netlist& n, std::span<const GateId> nets,
                            std::uint64_t code);

/// Random logic cloud appended on top of `sources`.  Adds `gate_budget`
/// gates with an ISCAS-like type mix, locality-biased fanin selection and
/// bounded fanin arity.  Returns ids of the appended gates.
struct CloudOptions {
  std::size_t gate_budget = 100;
  unsigned max_fanin = 4;
  double locality = 0.8;       ///< probability a fanin is drawn from the recent window
  std::size_t window = 64;     ///< size of the recent window
};
std::vector<GateId> append_random_cloud(Netlist& n, Rng& rng,
                                        std::span<const GateId> sources,
                                        const CloudOptions& opt);

/// ALU-style slice array (c880/c3540-flavoured): `slices` 1-bit slices, each
/// combining operand bits with a shared 3-bit function select. Appends gates
/// and returns slice outputs.
std::vector<GateId> append_alu_slices(Netlist& n, std::span<const GateId> a,
                                      std::span<const GateId> b,
                                      std::span<const GateId> fsel);

}  // namespace bist
