#pragma once
// Programmatic netlist construction with name-based wiring.
//
// Netlist::add_gate demands topological discipline: every fanin must already
// exist as a GateId.  That is the right invariant for the simulation
// substrate but the wrong interface for anything that *generates* hardware —
// the .bench reader meets signals before their definitions, and a synthesis
// pass (the BIST wrapper generator) naturally wires blocks together by net
// name, in whatever order the blocks are emitted.
//
// NetlistBuilder collects INPUT/OUTPUT declarations and named gate
// definitions in any order, with forward references, then build() resolves
// the names, orders the definitions topologically (iterative DFS, cycle
// detection) and emits them through the existing Netlist pipeline — so every
// invariant freeze() enforces (unique names, arity, acyclicity, fanout CSR,
// levels) holds for generated netlists exactly as for parsed ones.  The
// .bench reader is itself a client: parse lines into the builder, build().

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"

namespace bist {

class NetlistBuilder {
 public:
  explicit NetlistBuilder(std::string circuit_name = "netlist")
      : name_(std::move(circuit_name)) {}

  const std::string& circuit_name() const { return name_; }

  /// Declare a primary input.  Throws on redefinition of the signal name.
  void input(std::string name);

  /// Mark a signal as a primary output (it may be defined before or after
  /// this call; resolution happens in build()).  Repeats are kept — .bench
  /// allows listing the same OUTPUT twice and the Netlist preserves it.
  void output(std::string name);

  /// Define signal `name` as t(fanins...).  Fanins are signal names and may
  /// be forward references.  `where` is an optional provenance tag ("line
  /// 12") prefixed to error messages about this definition.  Throws on
  /// redefinition and on arity violations that are checkable immediately.
  void define(std::string name, GateType t, std::vector<std::string> fanins,
              std::string where = {});

  /// Convenience forms used by generators.
  void constant(std::string name, bool value);
  void buffer(std::string name, std::string fanin) {
    define(std::move(name), GateType::Buf, {std::move(fanin)});
  }

  /// A name of the form "<prefix><n>" that no input() or define() call has
  /// used yet (and that repeated fresh() calls never hand out twice).
  std::string fresh(std::string_view prefix);

  /// Has `name` been declared as an input or defined as a gate so far?
  bool defined(std::string_view name) const;

  std::size_t input_count() const { return inputs_.size(); }
  std::size_t output_count() const { return outputs_.size(); }
  std::size_t definition_count() const { return defs_.size(); }

  /// Resolve names, order definitions topologically, emit through
  /// Netlist::add_input/add_gate/add_output and freeze().  Throws
  /// std::runtime_error (with the definition's `where` tag when present) on
  /// undefined signals, combinational cycles, or missing inputs/outputs.
  /// On success the builder is left empty, ready for a new circuit.  A
  /// throwing build() mutates no builder state: the collected declarations
  /// are retained, so the caller may repair the netlist (e.g. define the
  /// missing signal) and call build() again.
  Netlist build();

 private:
  struct Def {
    std::string name;
    GateType type;
    std::vector<std::string> fanins;
    std::string where;
  };

  void claim_name(const std::string& name, const std::string& where);

  std::string name_;
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
  std::vector<Def> defs_;
  /// Signal name -> index into defs_, or kInput for primary inputs.
  std::unordered_map<std::string, std::size_t> by_name_;
  std::uint64_t fresh_counter_ = 0;

  static constexpr std::size_t kInput = ~std::size_t{0};
};

}  // namespace bist
