#pragma once
// Gate-level combinational netlist.  This is the common substrate for the
// logic/fault simulators, the ATPG, the circuit generators and the area
// model.  The representation is a flat gate array addressed by GateId;
// primary inputs are gates of type Input, primary outputs are references to
// driving gates (ISCAS85 style, where OUTPUT(n) names an existing signal).

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace bist {

using GateId = std::uint32_t;
inline constexpr GateId kNoGate = 0xffffffffu;

enum class GateType : std::uint8_t {
  Input,   ///< primary input (no fanins)
  Buf,     ///< 1-input buffer
  Not,     ///< 1-input inverter
  And,
  Nand,
  Or,
  Nor,
  Xor,     ///< parity of all fanins
  Xnor,    ///< complement of parity
  Const0,  ///< constant 0 (no fanins)
  Const1,  ///< constant 1 (no fanins)
};

/// Human-readable name ("NAND", ...) for diagnostics and .bench output.
std::string_view gate_type_name(GateType t);
/// Parse a .bench keyword ("NAND", "not", ...). Throws on unknown keyword.
GateType gate_type_from_name(std::string_view s);

/// Number of fanins a gate type admits: {min, max} (max = 0 means unbounded).
struct FaninArity { unsigned min, max; };
FaninArity gate_type_arity(GateType t);

/// Controlling value semantics used by fault collapsing, PODEM backtrace and
/// the stuck-open model.  For And/Nand the controlling value is 0; for Or/Nor
/// it is 1; Xor/Xnor/Buf/Not have none (returns -1).
int controlling_value(GateType t);
/// True if the gate inverts the dominant/controlled result (Nand, Nor, Not, Xnor).
bool is_inverting(GateType t);

struct Gate {
  GateType type = GateType::Buf;
  std::vector<GateId> fanins;
  std::string name;  ///< net name of the gate output
};

/// A combinational netlist with named gates, primary inputs and outputs.
///
/// Invariants maintained by the builder API:
///  - fanins reference previously-added gates only (the gate array is in
///    topological order by construction);
///  - names are unique;
///  - arity constraints of the gate type hold.
/// freeze() validates the invariants and computes fanout lists and levels.
class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// --- construction -----------------------------------------------------
  GateId add_input(std::string name);
  GateId add_gate(GateType t, std::span<const GateId> fanins, std::string name = {});
  GateId add_gate(GateType t, std::initializer_list<GateId> fanins, std::string name = {});
  /// Mark an existing gate's output as a primary output.
  void add_output(GateId g);

  /// Validate invariants, compute fanouts + levels.  Must be called before
  /// simulation/ATPG.  Throws std::runtime_error on malformed netlists.
  void freeze();
  bool frozen() const { return frozen_; }

  /// --- structure queries --------------------------------------------------
  std::size_t gate_count() const { return gates_.size(); }
  const Gate& gate(GateId g) const { return gates_[g]; }
  std::span<const GateId> inputs() const { return inputs_; }
  std::span<const GateId> outputs() const { return outputs_; }
  std::size_t input_count() const { return inputs_.size(); }
  std::size_t output_count() const { return outputs_.size(); }

  /// Fanout gate ids of g (valid after freeze()).
  std::span<const GateId> fanouts(GateId g) const;
  /// Logic level: inputs are level 0, a gate is 1 + max(fanin levels).
  unsigned level(GateId g) const { return levels_[g]; }
  unsigned max_level() const { return max_level_; }
  /// Is g one of the primary outputs?
  bool is_output(GateId g) const { return is_output_[g]; }

  /// Index of a PI in the inputs() list, kNoGate-safe; ~0u when not a PI.
  std::uint32_t input_index(GateId g) const;

  /// Lookup by name; returns kNoGate when absent.
  GateId find(std::string_view name) const;

  /// Number of gates excluding primary inputs (used by size statistics).
  std::size_t logic_gate_count() const;

 private:
  std::string name_;
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::unordered_map<std::string, GateId> by_name_;

  // computed by freeze():
  bool frozen_ = false;
  std::vector<GateId> fanout_flat_;
  std::vector<std::uint32_t> fanout_begin_;  // size gates+1
  std::vector<unsigned> levels_;
  std::vector<char> is_output_;
  std::vector<std::uint32_t> input_index_;
  unsigned max_level_ = 0;

  GateId add_gate_impl(GateType t, std::vector<GateId> fanins, std::string name);
};

}  // namespace bist
