#pragma once
// Size/shape statistics for a netlist, used by the reports and by the
// surrogate-circuit calibration tests (a c3540s must look like C3540).

#include <array>
#include <cstddef>
#include <string>

#include "netlist/netlist.hpp"

namespace bist {

struct NetlistStats {
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t gates = 0;          ///< logic gates (excludes primary inputs)
  std::size_t nets = 0;           ///< total signals
  unsigned depth = 0;             ///< max logic level
  double avg_fanin = 0.0;
  std::size_t max_fanin = 0;
  std::size_t max_fanout = 0;
  std::array<std::size_t, 11> by_type{};  ///< indexed by GateType

  std::string to_string() const;
};

NetlistStats compute_stats(const Netlist& n);

}  // namespace bist
