#include "netlist/stats.hpp"

#include <algorithm>
#include <sstream>

namespace bist {

NetlistStats compute_stats(const Netlist& n) {
  NetlistStats s;
  s.inputs = n.input_count();
  s.outputs = n.output_count();
  s.nets = n.gate_count();
  s.depth = n.max_level();
  std::size_t fanin_sum = 0;
  for (GateId g = 0; g < n.gate_count(); ++g) {
    const Gate& gg = n.gate(g);
    s.by_type[static_cast<std::size_t>(gg.type)]++;
    if (gg.type == GateType::Input) continue;
    ++s.gates;
    fanin_sum += gg.fanins.size();
    s.max_fanin = std::max(s.max_fanin, gg.fanins.size());
    s.max_fanout = std::max(s.max_fanout, n.fanouts(g).size());
  }
  s.avg_fanin = s.gates ? static_cast<double>(fanin_sum) / s.gates : 0.0;
  return s;
}

std::string NetlistStats::to_string() const {
  std::ostringstream os;
  os << "inputs=" << inputs << " outputs=" << outputs << " gates=" << gates
     << " depth=" << depth << " avg_fanin=" << avg_fanin
     << " max_fanin=" << max_fanin << " max_fanout=" << max_fanout;
  return os.str();
}

}  // namespace bist
