#pragma once
// Reader/writer for the ISCAS85/89 ".bench" netlist format [Brg85]:
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G17)
//   G10 = NAND(G1, G3)
//
// The reader is two-pass so signals may be referenced before definition
// (the original ISCAS distributions are not topologically sorted).

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace bist {

/// Input-validation caps for read_bench — hard rejection thresholds for
/// hostile or corrupt .bench text, generous enough that every legitimate
/// netlist (ISCAS85/89 and far beyond) parses untouched.  Tests shrink them
/// to exercise the rejection paths cheaply.
struct BenchLimits {
  std::size_t max_name_len = 256;        ///< per signal identifier, bytes
  std::size_t max_fanins = 1024;         ///< per gate fanin list
  std::size_t max_gates = 20'000'000;    ///< definitions + INPUT declarations
};

/// Parse a .bench netlist from text.  Throws std::runtime_error with a
/// line-numbered message (".bench line N: ...") on malformed input —
/// including non-printable/non-ASCII bytes and identifiers, fanin lists or
/// gate counts beyond `limits`.  The returned netlist is frozen.
Netlist read_bench(std::string_view text, std::string circuit_name = "bench",
                   const BenchLimits& limits = {});

/// Parse from a stream (reads to EOF).
Netlist read_bench_stream(std::istream& in, std::string circuit_name = "bench",
                          const BenchLimits& limits = {});

/// Serialize to .bench text.  read_bench(write_bench(n)) reproduces the
/// netlist up to gate ordering.
std::string write_bench(const Netlist& n);

}  // namespace bist
