#pragma once
// Reader/writer for the ISCAS85/89 ".bench" netlist format [Brg85]:
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G17)
//   G10 = NAND(G1, G3)
//
// The reader is two-pass so signals may be referenced before definition
// (the original ISCAS distributions are not topologically sorted).

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace bist {

/// Parse a .bench netlist from text.  Throws std::runtime_error with a
/// line-numbered message on malformed input.  The returned netlist is frozen.
Netlist read_bench(std::string_view text, std::string circuit_name = "bench");

/// Parse from a stream (reads to EOF).
Netlist read_bench_stream(std::istream& in, std::string circuit_name = "bench");

/// Serialize to .bench text.  read_bench(write_bench(n)) reproduces the
/// netlist up to gate ordering.
std::string write_bench(const Netlist& n);

}  // namespace bist
