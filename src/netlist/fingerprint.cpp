#include "netlist/fingerprint.hpp"

#include <algorithm>
#include <vector>

namespace bist {

Digest128 netlist_fingerprint(const Netlist& n) {
  Hasher h;
  h.str("bist-netlist-v1");

  // PI and PO lists in their declared order — the order defines pattern and
  // response bit positions, so it is part of the structure.
  h.u64(n.input_count());
  for (const GateId g : n.inputs()) h.str(n.gate(g).name);
  h.u64(n.output_count());
  for (const GateId g : n.outputs()) h.str(n.gate(g).name);

  // Logic gates sorted by output net name.  Names are unique (netlist
  // invariant) and fanins are referenced by name, so the fold is independent
  // of GateId assignment / topological insertion order.
  std::vector<GateId> logic;
  logic.reserve(n.gate_count());
  for (GateId g = 0; g < n.gate_count(); ++g)
    if (n.gate(g).type != GateType::Input) logic.push_back(g);
  std::sort(logic.begin(), logic.end(), [&](GateId a, GateId b) {
    return n.gate(a).name < n.gate(b).name;
  });

  h.u64(logic.size());
  for (const GateId g : logic) {
    const Gate& gate = n.gate(g);
    h.str(gate.name);
    h.u8(static_cast<std::uint8_t>(gate.type));
    h.u64(gate.fanins.size());
    for (const GateId f : gate.fanins) h.str(n.gate(f).name);
  }
  return h.digest();
}

}  // namespace bist
