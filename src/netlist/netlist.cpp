#include "netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace bist {

std::string_view gate_type_name(GateType t) {
  switch (t) {
    case GateType::Input: return "INPUT";
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Nand: return "NAND";
    case GateType::Or: return "OR";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
    case GateType::Const0: return "CONST0";
    case GateType::Const1: return "CONST1";
  }
  return "?";
}

GateType gate_type_from_name(std::string_view s) {
  const std::string u = to_upper(s);
  if (u == "BUF" || u == "BUFF") return GateType::Buf;
  if (u == "NOT" || u == "INV") return GateType::Not;
  if (u == "AND") return GateType::And;
  if (u == "NAND") return GateType::Nand;
  if (u == "OR") return GateType::Or;
  if (u == "NOR") return GateType::Nor;
  if (u == "XOR") return GateType::Xor;
  if (u == "XNOR") return GateType::Xnor;
  if (u == "CONST0") return GateType::Const0;
  if (u == "CONST1") return GateType::Const1;
  throw std::runtime_error("unknown gate type: " + std::string(s));
}

FaninArity gate_type_arity(GateType t) {
  switch (t) {
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1: return {0, 1};  // max 1 means "none"; min==0
    case GateType::Buf:
    case GateType::Not: return {1, 1};
    default: return {2, 0};  // unbounded n-ary
  }
}

int controlling_value(GateType t) {
  switch (t) {
    case GateType::And:
    case GateType::Nand: return 0;
    case GateType::Or:
    case GateType::Nor: return 1;
    default: return -1;
  }
}

bool is_inverting(GateType t) {
  return t == GateType::Nand || t == GateType::Nor || t == GateType::Not ||
         t == GateType::Xnor;
}

GateId Netlist::add_input(std::string name) {
  return add_gate_impl(GateType::Input, {}, std::move(name));
}

GateId Netlist::add_gate(GateType t, std::span<const GateId> fanins, std::string name) {
  return add_gate_impl(t, std::vector<GateId>(fanins.begin(), fanins.end()),
                       std::move(name));
}

GateId Netlist::add_gate(GateType t, std::initializer_list<GateId> fanins,
                         std::string name) {
  return add_gate_impl(t, std::vector<GateId>(fanins), std::move(name));
}

GateId Netlist::add_gate_impl(GateType t, std::vector<GateId> fanins,
                              std::string name) {
  const auto arity = gate_type_arity(t);
  if (fanins.size() < arity.min)
    throw std::runtime_error("too few fanins for " + std::string(gate_type_name(t)));
  if (t == GateType::Input || t == GateType::Const0 || t == GateType::Const1) {
    if (!fanins.empty())
      throw std::runtime_error("source gate cannot have fanins");
  }
  const GateId id = static_cast<GateId>(gates_.size());
  for (GateId f : fanins)
    if (f >= id) throw std::runtime_error("fanin references later gate (cycle?)");
  if (name.empty()) name = "n" + std::to_string(id);
  auto [it, inserted] = by_name_.emplace(name, id);
  if (!inserted) throw std::runtime_error("duplicate gate name: " + name);
  gates_.push_back(Gate{t, std::move(fanins), std::move(name)});
  if (t == GateType::Input) inputs_.push_back(id);
  frozen_ = false;
  return id;
}

void Netlist::add_output(GateId g) {
  if (g >= gates_.size()) throw std::runtime_error("add_output: bad gate id");
  outputs_.push_back(g);
  frozen_ = false;
}

void Netlist::freeze() {
  const std::size_t n = gates_.size();
  // fanout CSR
  fanout_begin_.assign(n + 1, 0);
  for (const auto& g : gates_)
    for (GateId f : g.fanins) ++fanout_begin_[f + 1];
  for (std::size_t i = 1; i <= n; ++i) fanout_begin_[i] += fanout_begin_[i - 1];
  fanout_flat_.assign(fanout_begin_[n], 0);
  std::vector<std::uint32_t> cursor(fanout_begin_.begin(), fanout_begin_.end() - 1);
  for (GateId id = 0; id < n; ++id)
    for (GateId f : gates_[id].fanins) fanout_flat_[cursor[f]++] = id;

  // levels (gate array is topologically ordered by construction)
  levels_.assign(n, 0);
  max_level_ = 0;
  for (GateId id = 0; id < n; ++id) {
    unsigned lv = 0;
    for (GateId f : gates_[id].fanins) lv = std::max(lv, levels_[f] + 1);
    levels_[id] = lv;
    max_level_ = std::max(max_level_, lv);
  }

  is_output_.assign(n, 0);
  for (GateId o : outputs_) is_output_[o] = 1;

  input_index_.assign(n, ~0u);
  for (std::uint32_t i = 0; i < inputs_.size(); ++i) input_index_[inputs_[i]] = i;

  if (outputs_.empty())
    throw std::runtime_error("netlist '" + name_ + "' has no outputs");
  if (inputs_.empty())
    throw std::runtime_error("netlist '" + name_ + "' has no inputs");
  frozen_ = true;
}

std::span<const GateId> Netlist::fanouts(GateId g) const {
  return {fanout_flat_.data() + fanout_begin_[g],
          fanout_flat_.data() + fanout_begin_[g + 1]};
}

std::uint32_t Netlist::input_index(GateId g) const { return input_index_[g]; }

GateId Netlist::find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kNoGate : it->second;
}

std::size_t Netlist::logic_gate_count() const {
  std::size_t n = 0;
  for (const auto& g : gates_)
    if (g.type != GateType::Input) ++n;
  return n;
}

}  // namespace bist
