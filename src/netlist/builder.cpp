#include "netlist/builder.hpp"

#include <stdexcept>

namespace bist {
namespace {

[[noreturn]] void fail(const std::string& where, const std::string& msg) {
  throw std::runtime_error(where.empty() ? msg : where + ": " + msg);
}

}  // namespace

void NetlistBuilder::claim_name(const std::string& name,
                                const std::string& where) {
  if (name.empty()) fail(where, "empty signal name");
  if (by_name_.count(name)) fail(where, "redefinition of " + name);
}

void NetlistBuilder::input(std::string name) {
  claim_name(name, {});
  by_name_.emplace(name, kInput);
  inputs_.push_back(std::move(name));
}

void NetlistBuilder::output(std::string name) {
  outputs_.push_back(std::move(name));
}

void NetlistBuilder::define(std::string name, GateType t,
                            std::vector<std::string> fanins,
                            std::string where) {
  claim_name(name, where);
  if (t == GateType::Input)
    fail(where, "use input() to declare primary inputs");
  const auto arity = gate_type_arity(t);
  if (fanins.size() < arity.min)
    fail(where, "too few fanins for " + std::string(gate_type_name(t)) +
                    " gate " + name);
  if ((t == GateType::Const0 || t == GateType::Const1) && !fanins.empty())
    fail(where, "constant " + name + " cannot have fanins");
  if (arity.max != 0 && fanins.size() > arity.max)
    fail(where, "too many fanins for " + std::string(gate_type_name(t)) +
                    " gate " + name);
  by_name_.emplace(name, defs_.size());
  defs_.push_back(Def{std::move(name), t, std::move(fanins), std::move(where)});
}

void NetlistBuilder::constant(std::string name, bool value) {
  define(std::move(name), value ? GateType::Const1 : GateType::Const0, {});
}

std::string NetlistBuilder::fresh(std::string_view prefix) {
  for (;;) {
    std::string candidate =
        std::string(prefix) + std::to_string(fresh_counter_++);
    if (!by_name_.count(candidate)) return candidate;
  }
}

bool NetlistBuilder::defined(std::string_view name) const {
  return by_name_.count(std::string(name)) != 0;
}

Netlist NetlistBuilder::build() {
  Netlist n(name_);
  std::unordered_map<std::string, GateId> ids;
  ids.reserve(inputs_.size() + defs_.size());
  for (const std::string& in : inputs_) ids[in] = n.add_input(in);

  // Topological emission (definitions may be in any order).  Iterative DFS
  // to avoid recursion depth issues on deep circuits.  A definition turns
  // gray only when it reaches the top of the stack and expands its fanins —
  // NOT when pushed — so a gray fanin is always a genuine DFS ancestor
  // (everything pushed above a gray node is in its transitive fanin cone)
  // and sibling forward references, e.g. top = AND(o1, o2) with
  // o2 = NOT(o1), are never misreported as cycles.  White nodes may be
  // pushed more than once; later duplicates pop as already-done.
  std::vector<int> state(defs_.size(), 0);  // 0 white, 1 gray, 2 done
  std::vector<std::size_t> stack;
  auto emit = [&](std::size_t root) {
    stack.push_back(root);
    while (!stack.empty()) {
      const std::size_t d = stack.back();
      const Def& def = defs_[d];
      if (state[d] == 2) {
        stack.pop_back();
        continue;
      }
      state[d] = 1;
      bool ready = true;
      for (const std::string& fn : def.fanins) {
        if (ids.count(fn)) continue;
        auto it = by_name_.find(fn);
        if (it == by_name_.end() || it->second == kInput)
          fail(def.where, "undefined signal: " + fn);
        if (state[it->second] == 1)
          fail(def.where, "combinational cycle through " + fn);
        stack.push_back(it->second);
        ready = false;
      }
      if (!ready) continue;
      std::vector<GateId> fis;
      fis.reserve(def.fanins.size());
      for (const std::string& fn : def.fanins) fis.push_back(ids.at(fn));
      ids[def.name] = n.add_gate(def.type, fis, def.name);
      state[d] = 2;
      stack.pop_back();
    }
  };
  for (std::size_t d = 0; d < defs_.size(); ++d)
    if (state[d] == 0) emit(d);

  for (const std::string& on : outputs_) {
    auto it = ids.find(on);
    if (it == ids.end()) fail({}, "OUTPUT of undefined signal " + on);
    n.add_output(it->second);
  }
  n.freeze();

  inputs_.clear();
  outputs_.clear();
  defs_.clear();
  by_name_.clear();
  fresh_counter_ = 0;
  return n;
}

}  // namespace bist
