#include "netlist/levelize.hpp"

#include <algorithm>

namespace bist {
namespace {

std::vector<GateId> cone(const Netlist& n, GateId root, bool forward) {
  std::vector<char> seen(n.gate_count(), 0);
  std::vector<GateId> work{root};
  seen[root] = 1;
  while (!work.empty()) {
    const GateId g = work.back();
    work.pop_back();
    if (forward) {
      for (GateId f : n.fanouts(g))
        if (!seen[f]) { seen[f] = 1; work.push_back(f); }
    } else {
      for (GateId f : n.gate(g).fanins)
        if (!seen[f]) { seen[f] = 1; work.push_back(f); }
    }
  }
  std::vector<GateId> out;
  for (GateId g = 0; g < n.gate_count(); ++g)
    if (seen[g]) out.push_back(g);
  return out;
}

}  // namespace

std::vector<GateId> fanout_cone(const Netlist& n, GateId root) {
  return cone(n, root, /*forward=*/true);
}

std::vector<GateId> fanin_cone(const Netlist& n, GateId root) {
  return cone(n, root, /*forward=*/false);
}

std::vector<GateId> cone_inputs(const Netlist& n, GateId root) {
  std::vector<GateId> out;
  for (GateId g : fanin_cone(n, root))
    if (n.gate(g).type == GateType::Input) out.push_back(g);
  return out;
}

std::vector<std::vector<GateId>> gates_by_level(const Netlist& n) {
  std::vector<std::vector<GateId>> buckets(n.max_level() + 1);
  for (GateId g = 0; g < n.gate_count(); ++g) buckets[n.level(g)].push_back(g);
  return buckets;
}

bool reaches_output(const Netlist& n, GateId root) {
  if (n.is_output(root)) return true;
  for (GateId g : fanout_cone(n, root))
    if (n.is_output(g)) return true;
  return false;
}

}  // namespace bist
