#pragma once
// Canonical structural fingerprint of a netlist, used to key the result
// store.  The fingerprint is a pure function of the circuit *structure* —
// named nets, gate types, pin-ordered fanin connections, and PI/PO lists —
// and is deliberately insensitive to the order gates were inserted in: two
// construction orders that freeze to the same structure fingerprint
// identically, and read_bench(write_bench(n)) round-trips to the same
// digest.  The circuit's display name is excluded (renaming a file must not
// invalidate its cache entries); PI/PO order is included because it is
// semantically meaningful (it defines the pattern/response bit order).

#include "netlist/netlist.hpp"
#include "util/hash.hpp"

namespace bist {

Digest128 netlist_fingerprint(const Netlist& n);

}  // namespace bist
