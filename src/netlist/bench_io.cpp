#include "netlist/bench_io.hpp"

#include <istream>
#include <sstream>
#include <stdexcept>

#include "netlist/builder.hpp"
#include "util/strings.hpp"

namespace bist {
namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error(".bench line " + std::to_string(line) + ": " + msg);
}

// .bench is plain ASCII; anything else (control bytes, UTF-8, embedded NUL
// from a truncated/corrupt file) is rejected up front so garbage can never
// become a silently-mangled signal name.  Tab is the one control byte the
// historical distributions use.
void check_printable(int line, std::string_view s) {
  for (const unsigned char c : s)
    if ((c < 0x20 && c != '\t') || c >= 0x7F)
      fail(line, "non-printable byte 0x" +
                     [&] {
                       constexpr char hex[] = "0123456789abcdef";
                       return std::string{hex[c >> 4], hex[c & 0xF]};
                     }());
}

void check_name(int line, std::string_view name, const BenchLimits& lim) {
  if (name.size() > lim.max_name_len)
    fail(line, "identifier of " + std::to_string(name.size()) +
                   " bytes exceeds the " + std::to_string(lim.max_name_len) +
                   "-byte limit");
}

}  // namespace

Netlist read_bench(std::string_view text, std::string circuit_name,
                   const BenchLimits& limits) {
  // The parser is a thin line-splitter in front of NetlistBuilder: INPUT/
  // OUTPUT/assignment lines go straight into the builder (in file order,
  // forward references and all) and build() does the topological emission,
  // cycle detection and freeze.  Each definition carries its line number as
  // the builder `where` tag, so name-resolution errors still point at the
  // offending source line.
  NetlistBuilder b(std::move(circuit_name));

  int line_no = 0;
  std::size_t defined = 0;  // INPUT declarations + gate definitions
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++line_no;
    if (line.empty() || line.front() == '#') {
      if (pos > text.size()) break;
      continue;
    }
    check_printable(line_no, line);

    const std::size_t eq = line.find('=');
    try {
      if (eq == std::string_view::npos) {
        // INPUT(x) or OUTPUT(x)
        const std::size_t lp = line.find('('), rp = line.rfind(')');
        if (lp == std::string_view::npos || rp == std::string_view::npos ||
            rp < lp)
          fail(line_no, "expected INPUT(...), OUTPUT(...) or assignment");
        const std::string_view kw = trim(line.substr(0, lp));
        const std::string name{trim(line.substr(lp + 1, rp - lp - 1))};
        if (name.empty()) fail(line_no, "empty signal name");
        check_name(line_no, name, limits);
        if (iequals(kw, "INPUT")) {
          if (++defined > limits.max_gates)
            fail(line_no, "gate count exceeds the limit of " +
                              std::to_string(limits.max_gates));
          b.input(name);
        } else if (iequals(kw, "OUTPUT")) {
          b.output(name);
        } else {
          fail(line_no, "unknown directive: " + std::string(kw));
        }
      } else {
        const std::string lhs{trim(line.substr(0, eq))};
        std::string_view rhs = trim(line.substr(eq + 1));
        const std::size_t lp = rhs.find('(');
        const std::size_t rp = rhs.rfind(')');
        if (lhs.empty()) fail(line_no, "empty lhs");
        check_name(line_no, lhs, limits);
        if (++defined > limits.max_gates)
          fail(line_no, "gate count exceeds the limit of " +
                            std::to_string(limits.max_gates));
        if (lp == std::string_view::npos || rp == std::string_view::npos ||
            rp < lp)
          fail(line_no, "expected GATE(a, b, ...)");
        GateType t = gate_type_from_name(trim(rhs.substr(0, lp)));
        std::vector<std::string> fanins;
        for (auto tok : split(rhs.substr(lp + 1, rp - lp - 1), ",")) {
          const std::string fn{trim(tok)};
          if (fn.empty()) fail(line_no, "empty fanin name");
          check_name(line_no, fn, limits);
          if (fanins.size() >= limits.max_fanins)
            fail(line_no, "fanin list exceeds the limit of " +
                              std::to_string(limits.max_fanins));
          fanins.push_back(fn);
        }
        // .bench allows 1-input AND/OR etc.; normalize to Buf.
        if (fanins.size() == 1 && (t == GateType::And || t == GateType::Or))
          t = GateType::Buf;
        if (fanins.size() == 1 && (t == GateType::Nand || t == GateType::Nor))
          t = GateType::Not;
        b.define(lhs, t, std::move(fanins),
                 ".bench line " + std::to_string(line_no));
      }
    } catch (const std::runtime_error& e) {
      // Builder errors about this line (redefinition, arity) and the local
      // fail() calls both surface here; prefix the line number when the
      // message does not already carry one.
      const std::string msg = e.what();
      if (msg.rfind(".bench line", 0) == 0) throw;
      fail(line_no, msg);
    }
    if (pos > text.size()) break;
  }

  return b.build();
}

Netlist read_bench_stream(std::istream& in, std::string circuit_name,
                          const BenchLimits& limits) {
  std::ostringstream ss;
  ss << in.rdbuf();
  return read_bench(ss.str(), std::move(circuit_name), limits);
}

std::string write_bench(const Netlist& n) {
  std::ostringstream os;
  os << "# " << n.name() << "\n";
  os << "# " << n.input_count() << " inputs, " << n.output_count()
     << " outputs, " << n.logic_gate_count() << " gates\n";
  for (GateId g : n.inputs()) os << "INPUT(" << n.gate(g).name << ")\n";
  for (GateId g : n.outputs()) os << "OUTPUT(" << n.gate(g).name << ")\n";
  for (GateId id = 0; id < n.gate_count(); ++id) {
    const Gate& g = n.gate(id);
    if (g.type == GateType::Input) continue;
    os << g.name << " = " << gate_type_name(g.type) << "(";
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      if (i) os << ", ";
      os << n.gate(g.fanins[i]).name;
    }
    os << ")\n";
  }
  return os.str();
}

}  // namespace bist
