#include "netlist/bench_io.hpp"

#include <istream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace bist {
namespace {

struct PendingGate {
  GateType type;
  std::vector<std::string> fanin_names;
  int line;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error(".bench line " + std::to_string(line) + ": " + msg);
}

}  // namespace

Netlist read_bench(std::string_view text, std::string circuit_name) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  // Definition order preserved for deterministic ids.
  std::vector<std::pair<std::string, PendingGate>> defs;
  std::map<std::string, std::size_t> def_index;

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++line_no;
    if (line.empty() || line.front() == '#') {
      if (pos > text.size()) break;
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      // INPUT(x) or OUTPUT(x)
      const std::size_t lp = line.find('('), rp = line.rfind(')');
      if (lp == std::string_view::npos || rp == std::string_view::npos || rp < lp)
        fail(line_no, "expected INPUT(...), OUTPUT(...) or assignment");
      const std::string_view kw = trim(line.substr(0, lp));
      const std::string name{trim(line.substr(lp + 1, rp - lp - 1))};
      if (name.empty()) fail(line_no, "empty signal name");
      if (iequals(kw, "INPUT")) input_names.push_back(name);
      else if (iequals(kw, "OUTPUT")) output_names.push_back(name);
      else fail(line_no, "unknown directive: " + std::string(kw));
    } else {
      const std::string lhs{trim(line.substr(0, eq))};
      std::string_view rhs = trim(line.substr(eq + 1));
      const std::size_t lp = rhs.find('(');
      const std::size_t rp = rhs.rfind(')');
      if (lhs.empty()) fail(line_no, "empty lhs");
      if (lp == std::string_view::npos || rp == std::string_view::npos || rp < lp)
        fail(line_no, "expected GATE(a, b, ...)");
      GateType t;
      try {
        t = gate_type_from_name(trim(rhs.substr(0, lp)));
      } catch (const std::exception& e) {
        fail(line_no, e.what());
      }
      PendingGate pg;
      pg.type = t;
      pg.line = line_no;
      for (auto tok : split(rhs.substr(lp + 1, rp - lp - 1), ",")) {
        const std::string fn{trim(tok)};
        if (fn.empty()) fail(line_no, "empty fanin name");
        pg.fanin_names.push_back(fn);
      }
      if (def_index.count(lhs)) fail(line_no, "redefinition of " + lhs);
      def_index[lhs] = defs.size();
      defs.emplace_back(lhs, std::move(pg));
    }
    if (pos > text.size()) break;
  }

  Netlist n(std::move(circuit_name));
  std::map<std::string, GateId> ids;
  for (const auto& in : input_names) {
    if (ids.count(in)) throw std::runtime_error("duplicate INPUT " + in);
    ids[in] = n.add_input(in);
  }

  // Topological emission of definitions (the file may be unordered).
  std::vector<int> state(defs.size(), 0);  // 0 unvisited, 1 on stack, 2 done
  // Iterative DFS to avoid recursion depth issues on big circuits.
  std::vector<std::size_t> stack;
  auto emit = [&](std::size_t root) {
    stack.push_back(root);
    while (!stack.empty()) {
      const std::size_t d = stack.back();
      auto& [name, pg] = defs[d];
      if (state[d] == 2) { stack.pop_back(); continue; }
      bool ready = true;
      for (const auto& fn : pg.fanin_names) {
        if (ids.count(fn)) continue;
        auto it = def_index.find(fn);
        if (it == def_index.end())
          fail(pg.line, "undefined signal: " + fn);
        if (state[it->second] == 1)
          fail(pg.line, "combinational cycle through " + fn);
        if (state[it->second] == 0) {
          state[it->second] = 1;
          stack.push_back(it->second);
          ready = false;
        }
      }
      if (!ready) continue;
      std::vector<GateId> fis;
      fis.reserve(pg.fanin_names.size());
      for (const auto& fn : pg.fanin_names) fis.push_back(ids.at(fn));
      // .bench allows 1-input AND/OR etc.; normalize to Buf.
      GateType t = pg.type;
      if (fis.size() == 1 &&
          (t == GateType::And || t == GateType::Or)) t = GateType::Buf;
      if (fis.size() == 1 && (t == GateType::Nand || t == GateType::Nor))
        t = GateType::Not;
      ids[name] = n.add_gate(t, fis, name);
      state[d] = 2;
      stack.pop_back();
    }
  };
  for (std::size_t d = 0; d < defs.size(); ++d)
    if (state[d] == 0) { state[d] = 1; emit(d); }

  for (const auto& on : output_names) {
    auto it = ids.find(on);
    if (it == ids.end()) throw std::runtime_error("OUTPUT of undefined signal " + on);
    n.add_output(it->second);
  }
  n.freeze();
  return n;
}

Netlist read_bench_stream(std::istream& in, std::string circuit_name) {
  std::ostringstream ss;
  ss << in.rdbuf();
  return read_bench(ss.str(), std::move(circuit_name));
}

std::string write_bench(const Netlist& n) {
  std::ostringstream os;
  os << "# " << n.name() << "\n";
  os << "# " << n.input_count() << " inputs, " << n.output_count()
     << " outputs, " << n.logic_gate_count() << " gates\n";
  for (GateId g : n.inputs()) os << "INPUT(" << n.gate(g).name << ")\n";
  for (GateId g : n.outputs()) os << "OUTPUT(" << n.gate(g).name << ")\n";
  for (GateId id = 0; id < n.gate_count(); ++id) {
    const Gate& g = n.gate(id);
    if (g.type == GateType::Input) continue;
    os << g.name << " = " << gate_type_name(g.type) << "(";
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      if (i) os << ", ";
      os << n.gate(g.fanins[i]).name;
    }
    os << ")\n";
  }
  return os.str();
}

}  // namespace bist
