#pragma once
// Structural traversal helpers over a frozen netlist: transitive fanin/fanout
// cones and level-ordered gate lists.  Used by the fault simulator (event
// scheduling region) and PODEM (X-path check).

#include <vector>

#include "netlist/netlist.hpp"

namespace bist {

/// Gate ids in the transitive fanout cone of `root` (including root),
/// in topological (id) order.
std::vector<GateId> fanout_cone(const Netlist& n, GateId root);

/// Gate ids in the transitive fanin cone of `root` (including root),
/// in topological (id) order.
std::vector<GateId> fanin_cone(const Netlist& n, GateId root);

/// Primary inputs in the fanin cone of `root`.
std::vector<GateId> cone_inputs(const Netlist& n, GateId root);

/// All gate ids grouped by level; bucket[l] holds the gates at level l.
std::vector<std::vector<GateId>> gates_by_level(const Netlist& n);

/// True if any primary output is reachable from `root`.
bool reaches_output(const Netlist& n, GateId root);

}  // namespace bist
